"""Figure 13: Efficient-IQ scalability with the number of variables."""

import numpy as np

from repro.bench.figures import fig13_dimensionality


def test_fig13_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig13_dimensionality(config), rounds=1, iterations=1
    )
    save_table("fig13_dimensionality", table)
    times = np.asarray(table.column("time (ms)"))
    dims = np.asarray(table.column("variables"), dtype=float)
    assert np.all(times > 0)
    # Paper shape: growth flattens as dimensionality rises.  The d=1
    # point is degenerate (the 1-D arrangement is trivial), so anchor
    # the growth check at the second point, with generous noise slack —
    # each point averages only a handful of IQs at bench scale.
    growth = times[-1] / max(times[1], 1e-9)
    assert growth < (dims[-1] / dims[1]) * 4
