"""Figure 5: indexing cost vs |Q| — Efficient-IQ index vs plain R-tree."""

from repro.bench.figures import fig5_indexing_queries
from repro.data.workloads import generate_queries
from repro.index.rtree import RTree


def test_fig5_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig5_indexing_queries(config), rounds=1, iterations=1
    )
    save_table("fig05_indexing_queries", table)
    # Paper shape: Efficient-IQ strictly more expensive than a bare
    # R-tree in both time and space (the subdomain grouping is the
    # extra work), on every sweep point.
    assert all(o > 0 for o in table.column("time overhead (%)"))
    assert all(o > 0 for o in table.column("size overhead (%)"))


def test_fig5_rtree_bulk_load(benchmark, config):
    queries = generate_queries(
        "UN", config.num_queries, config.dimensions, seed=config.seed + 1, k_range=config.k_range
    )
    items = [(w, int(j)) for j, w in enumerate(queries.weights)]
    benchmark(RTree.bulk_load, queries.dim, items, max_entries=16)
