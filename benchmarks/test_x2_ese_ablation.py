"""Ablation X2: ESE vs naive re-evaluation of every query (§4.1 claim)."""

import numpy as np

from repro.bench.figures import x2_ese_ablation


def test_x2_ese_speedup(benchmark, config, save_table):
    table = benchmark.pedantic(lambda: x2_ese_ablation(config), rounds=1, iterations=1)
    save_table("x2_ese_ablation", table)
    speedups = np.asarray(table.column("speedup (x)"))
    # ESE must deliver a real speedup at every workload size.
    assert np.all(speedups > 2)
