"""Figure 6: indexing cost on the (simulated) VEHICLE and HOUSE datasets."""

from repro.bench.figures import fig6_indexing_real


def test_fig6_real_datasets(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig6_indexing_real(config), rounds=1, iterations=1
    )
    save_table("fig06_indexing_real", table)
    assert table.column("dataset") == ["VEHICLE", "HOUSE"]
    assert all(t > 0 for t in table.column("EfficientIQ time (s)"))
