"""Figure 8: IQ processing time and quality vs |D| on CO data."""

import numpy as np

from repro.bench.figures import fig7_to_9_query_processing_objects


def test_fig8_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig7_to_9_query_processing_objects("CO", config), rounds=1, iterations=1
    )
    save_table("fig08_query_co", table)
    eff = np.asarray(table.column("Efficient-IQ time (ms)"))
    rta = np.asarray(table.column("RTA-IQ time (ms)"))
    assert np.all(eff < rta)
