"""Figure 12: IQ processing on the (simulated) VEHICLE and HOUSE datasets."""

import numpy as np

from repro.bench.figures import fig12_query_processing_real


def test_fig12_real(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig12_query_processing_real(config), rounds=1, iterations=1
    )
    save_table("fig12_query_real", table)
    assert table.column("dataset") == ["VEHICLE", "HOUSE"]
    eff = np.asarray(table.column("Efficient-IQ time (ms)"))
    rta = np.asarray(table.column("RTA-IQ time (ms)"))
    assert np.all(eff < rta)
