"""Ablation X3: incremental index maintenance vs full rebuild (§4.3)."""

from repro.bench.figures import x3_updates_ablation


def test_x3_updates(benchmark, config, save_table):
    table = benchmark.pedantic(lambda: x3_updates_ablation(config), rounds=1, iterations=1)
    save_table("x3_updates_ablation", table)
    rows = {row[0]: row for row in table.rows}
    assert set(rows) == {"add query", "remove query", "add object", "remove object"}
    # All maintenance operations must complete; query-side operations
    # should not cost more than a handful of rebuilds even at worst.
    for name, row in rows.items():
        assert row[1] > 0, name
