"""Ablation X1: exact search blows up; the heuristic stays near-optimal.

Backs the paper's §6.3.2 remark that exhaustive search "takes more than
4 hours to process a query in average" at experiment scale — here shown
as exponential growth on instances still small enough to solve.
"""

import numpy as np

from repro.bench.figures import x1_exhaustive_gap


def test_x1_exact_vs_heuristic(benchmark, config, save_table):
    table = benchmark.pedantic(lambda: x1_exhaustive_gap(config), rounds=1, iterations=1)
    save_table("x1_exhaustive_gap", table)
    exact = np.asarray(table.column("exact time (ms)"))
    heuristic = np.asarray(table.column("heuristic time (ms)"))
    ratios = np.asarray(table.column("cost ratio (heur/exact)"))
    # Exact must be far slower than the heuristic at the largest m.
    assert exact[-1] > heuristic[-1] * 3
    # The heuristic can never beat the true optimum.
    assert np.all(ratios >= 1 - 1e-6)
    # ...and it should stay reasonably close on these instances.
    assert np.all(ratios < 2.0)
