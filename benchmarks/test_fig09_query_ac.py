"""Figure 9: IQ processing time and quality vs |D| on AC data."""

import numpy as np

from repro.bench.figures import fig7_to_9_query_processing_objects


def test_fig9_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig7_to_9_query_processing_objects("AC", config), rounds=1, iterations=1
    )
    save_table("fig09_query_ac", table)
    eff = np.asarray(table.column("Efficient-IQ time (ms)"))
    rta = np.asarray(table.column("RTA-IQ time (ms)"))
    assert np.all(eff < rta)
