"""Shared helpers for the figure benchmarks.

Every benchmark regenerates one paper artefact (figure/table) via
:mod:`repro.bench.figures`, saves the rendered table under
``benchmarks/results/`` (EXPERIMENTS.md is assembled from those files),
and additionally benchmarks the artefact's *default-point* operation
with pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` yields
comparable timing statistics.

Scale selection: ``REPRO_BENCH_SCALE`` = ``tiny`` | ``bench`` (default)
| ``paper``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.config import load_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config():
    return load_config()


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, table) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table.render() + "\n")
        # Also echo to the terminal (visible with -s or on failure).
        print()
        print(table.render())

    return _save
