"""Figure 7: IQ processing time and quality vs |D| on IN data."""

import numpy as np

from repro.bench.figures import fig7_to_9_query_processing_objects


def test_fig7_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig7_to_9_query_processing_objects("IN", config), rounds=1, iterations=1
    )
    save_table("fig07_query_in", table)
    eff = np.asarray(table.column("Efficient-IQ time (ms)"))
    rta = np.asarray(table.column("RTA-IQ time (ms)"))
    # The paper's headline: Efficient-IQ beats RTA-IQ significantly in
    # processing time at every sweep point...
    assert np.all(eff < rta)
    # ...while the strategies found are the same (same searcher).
    eff_quality = np.asarray(table.column("Efficient-IQ cost/hit"))
    rta_quality = np.asarray(table.column("RTA-IQ cost/hit"))
    assert np.allclose(eff_quality, rta_quality, rtol=1e-6)
