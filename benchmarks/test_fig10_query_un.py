"""Figure 10: IQ processing time and quality vs |Q| on the UN workload."""

import numpy as np

from repro.bench.figures import fig10_to_11_query_processing_queries


def test_fig10_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig10_to_11_query_processing_queries("UN", config), rounds=1, iterations=1
    )
    save_table("fig10_query_un", table)
    eff = np.asarray(table.column("Efficient-IQ time (ms)"))
    rta = np.asarray(table.column("RTA-IQ time (ms)"))
    assert np.all(eff < rta)
