"""Figure 4: indexing cost vs |D| — Efficient-IQ index vs DominantGraph."""

from repro.bench.figures import fig4_indexing_objects
from repro.core.objects import Dataset
from repro.core.subdomain import SubdomainIndex
from repro.data.synthetic import generate
from repro.data.workloads import generate_queries
from repro.index.dominant_graph import DominantGraph


def test_fig4_sweep(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: fig4_indexing_objects(config), rounds=1, iterations=1
    )
    save_table("fig04_indexing_objects", table)
    ours = table.column("EfficientIQ time (s)")
    assert all(t > 0 for t in ours)
    # Paper shape: both index sizes stay a modest fraction of the data
    # at scale; here we just require the columns to be populated and
    # positive (absolute ratios depend on the bench scale).
    assert all(s > 0 for s in table.column("DominantGraph size (%)"))


def test_fig4_efficient_iq_index_build(benchmark, config):
    dataset = Dataset(generate("IN", config.num_objects, config.dimensions, seed=config.seed))
    queries = generate_queries(
        "UN", config.num_queries, config.dimensions, seed=config.seed + 1, k_range=config.k_range
    )
    benchmark(SubdomainIndex, dataset, queries, mode=config.index_mode)


def test_fig4_dominant_graph_build(benchmark, config):
    dataset = Dataset(generate("IN", config.num_objects, config.dimensions, seed=config.seed))
    benchmark(DominantGraph, dataset.matrix)
