"""Assemble EXPERIMENTS.md from the benchmark result tables.

Usage:  python benchmarks/make_experiments_md.py
(after ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``).
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parents[1] / "EXPERIMENTS.md"

#: Per-artefact commentary: (result file stem, paper's reported shape,
#: what we observe / deviations worth recording).
SECTIONS = [
    (
        "fig04_indexing_objects",
        "Figure 4 — indexing cost vs |D|",
        "Paper: Efficient-IQ's indexing *time* is similar to DominantGraph's "
        "across 50k-200k objects; Efficient-IQ's index is slightly larger "
        "(both a modest percentage of the data size at their scale).",
        "Measured: both build times grow with |D| and stay within the same "
        "order of magnitude; our Efficient-IQ build is faster than "
        "DominantGraph at these sizes because the signature pass is fully "
        "vectorized while layer-peeling dominates DG. Size percentages are "
        "far larger than the paper's <30% because (a) the datasets are "
        "thousands of times smaller so fixed per-structure overheads "
        "dominate, and (b) we retain one full side-vector per populated "
        "cell to support §4.3 maintenance (the paper keeps only boundary "
        "lists). The ordering — Efficient-IQ's index larger than "
        "DominantGraph's at equal |D| — matches the paper.",
    ),
    (
        "fig05_indexing_queries",
        "Figure 5 — indexing cost vs |Q|",
        "Paper: Efficient-IQ needs ~20-25% more indexing time than building "
        "only the query R-tree, and ends up ~10% larger — the extra cost of "
        "grouping query points by subdomain.",
        "Measured: Efficient-IQ is strictly more expensive than the bare "
        "R-tree at every |Q| (the subdomain grouping), with overheads larger "
        "than the paper's 20-25%/10% because our R-tree baseline is a very "
        "cheap vectorized bulk load while the signature pass is the dominant "
        "cost at Python scale. The direction and monotone growth match.",
    ),
    (
        "fig06_indexing_real",
        "Figure 6 — indexing cost on real-world data (VEHICLE, HOUSE)",
        "Paper: results on the two real datasets are consistent with the "
        "synthetic ones.",
        "Measured: same conclusion on the distribution-matched simulated "
        "VEHICLE/HOUSE substitutes (see DESIGN.md §5 for the substitution).",
    ),
    (
        "fig07_query_in",
        "Figure 7 — IQ processing on IN objects (sweep |D|)",
        "Paper: Random fastest but worst quality; Efficient-IQ several times "
        "faster than RTA-IQ with identical strategy quality; Greedy between.",
        "Measured: identical ordering. Efficient-IQ runs 2-3 orders of "
        "magnitude faster than RTA-IQ here (the gap is wider than the "
        "paper's because RTA's per-query loop pays Python overheads that "
        "ESE's vectorized evaluation avoids); Efficient-IQ and RTA-IQ "
        "report byte-identical cost/hit, exactly as the paper notes "
        "(same searcher, different evaluator).",
    ),
    (
        "fig08_query_co",
        "Figure 8 — IQ processing on CO objects (sweep |D|)",
        "Paper: same ordering as Figure 7 on correlated data.",
        "Measured: same ordering; correlated data is the easiest for every "
        "scheme (few contenders dominate all queries).",
    ),
    (
        "fig09_query_ac",
        "Figure 9 — IQ processing on AC objects (sweep |D|)",
        "Paper: same ordering as Figure 7 on anti-correlated data.",
        "Measured: same ordering; anti-correlated data is the most expensive "
        "for every scheme (large skylines -> many distinct contenders), "
        "which matches the paper's slightly higher AC timings.",
    ),
    (
        "fig10_query_un",
        "Figure 10 — IQ processing, UN query workload (sweep |Q|)",
        "Paper: processing time grows with |Q|; ordering unchanged.",
        "Measured: same ordering at every workload size.",
    ),
    (
        "fig11_query_cl",
        "Figure 11 — IQ processing, CL query workload (sweep |Q|)",
        "Paper: clustered workloads behave like uniform ones.",
        "Measured: same; clustering concentrates query points into fewer "
        "subdomains, which slightly *helps* ESE (more sharing per cell).",
    ),
    (
        "fig12_query_real",
        "Figure 12 — IQ processing on real-world data",
        "Paper: consistent with the synthetic results on VEHICLE and HOUSE.",
        "Measured: consistent, on the simulated substitutes.",
    ),
    (
        "fig13_dimensionality",
        "Figure 13 — Efficient-IQ vs number of variables (1-5)",
        "Paper: processing time increases with dimensionality but "
        "sub-linearly — it becomes less sensitive as d grows.",
        "Measured: time rises from d=2 onward far more slowly than d does "
        "(the d=1 point is degenerate — the 1-D arrangement is trivial). "
        "Per-point noise is visible because each point averages only a few "
        "IQs at bench scale.",
    ),
    (
        "x1_exhaustive_gap",
        "X1 (ablation) — exact vs heuristic Min-Cost (§6.3.2 claim)",
        "Paper: 'even for the smallest dataset, exhaustive search takes more "
        "than 4 hours to process a query in average'; the heuristic is used "
        "everywhere else.",
        "Measured: the exact branch-and-bound's time explodes with the "
        "workload size while the heuristic stays flat; on instances small "
        "enough to solve exactly, the heuristic's cost is within a few tens "
        "of percent of optimal (ratio >= 1 always, typically < 1.4).",
    ),
    (
        "x2_ese_ablation",
        "X2 (ablation) — ESE vs naive re-evaluation (§4.1 claim)",
        "Paper: ESE evaluates at most one query per subdomain and re-uses "
        "results, which is what makes the greedy search interactive.",
        "Measured: ESE evaluates a candidate strategy orders of magnitude "
        "faster than re-running every top-k query.",
    ),
    (
        "x4_index_mode",
        "X4 (ablation) — exact vs 'relevant' hyperplane budget (DESIGN.md §3)",
        "Paper: the index uses the pairwise function intersections; the "
        "formulation is quadratic in |D|.",
        "Measured: restricting the arrangement to intersections among "
        "objects reachable by the indexed top-k results cuts the hyperplane "
        "count by orders of magnitude with byte-identical answers — the "
        "engineering choice that lets the reproduction run the paper's "
        "workload shapes in pure Python.",
    ),
    (
        "x3_updates_ablation",
        "X3 (ablation) — incremental maintenance vs rebuild (§4.3)",
        "Paper: queries/objects can be added and removed without rebuilding "
        "(kNN candidate subdomains; bloom-filter boundary checks and cell "
        "merging).",
        "Measured (steady state, boundary registration warmed): every "
        "maintenance operation beats a rebuild — query insertion and object "
        "removal by an order of magnitude (kNN candidate subdomains and the "
        "bloom-filter boundary pre-check doing exactly what §4.3 claims), "
        "query removal and object insertion by ~2.5x.",
    ),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Every table/figure of the paper's evaluation (§6.3) regenerated by
`pytest benchmarks/ --benchmark-only` (tables land in
`benchmarks/results/`). Scale: `REPRO_BENCH_SCALE={scale}` — see
`repro/bench/config.py` for the exact Table 2 mapping. Absolute numbers
are not comparable to the paper's (pure Python vs their C++/C# engine on
a 2.93 GHz Xeon server, and scaled-down workloads); what is compared is
the *shape*: who wins, by roughly what factor, and which way the trends
point. The experiment-id-to-module map lives in DESIGN.md §4.

Summary of reproduction status:

| Artefact | Shape reproduced? | Note |
|---|---|---|
| Fig. 4 | yes (with caveat) | build-time ordering flipped in our favour; size ordering matches |
| Fig. 5 | yes (with caveat) | overhead direction/monotonicity match; magnitudes exceed 20-25%/10% |
| Fig. 6 | yes | on simulated VEHICLE/HOUSE substitutes |
| Fig. 7-12 | yes | full scheme ordering in both time and quality |
| Fig. 13 | yes | sub-linear growth from d>=2; d=1 degenerate |
| §6.3.2 exhaustive claim (X1) | yes | exponential blow-up reproduced |
| §4.1 ESE claim (X2) | yes | order-of-magnitude evaluation speedup |
| §4.3 updates claim (X3) | yes | incremental ops vs rebuild |
| index-mode design choice (X4) | yes | relevant mode: ~100-200x fewer hyperplanes, identical answers |

"""


def main() -> int:
    if not RESULTS.exists():
        print("run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    scale = "bench"
    parts = []
    for stem, title, paper, measured in SECTIONS:
        path = RESULTS / f"{stem}.txt"
        body = path.read_text().rstrip() if path.exists() else "(missing - rerun benchmarks)"
        if "[paper scale]" in body:
            scale = "paper"
        elif "[tiny scale]" in body:
            scale = "tiny"
        parts.append(
            f"## {title}\n\n"
            f"**Paper reports.** {paper}\n\n"
            f"**We measure.** {measured}\n\n"
            f"```\n{body}\n```\n"
        )
    OUTPUT.write_text(HEADER.format(scale=scale) + "\n".join(parts))
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
