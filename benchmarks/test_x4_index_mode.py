"""Ablation X4: exact vs 'relevant' hyperplane budget for the index."""

from repro.bench.figures import x4_index_mode_ablation


def test_x4_index_mode(benchmark, config, save_table):
    table = benchmark.pedantic(
        lambda: x4_index_mode_ablation(config), rounds=1, iterations=1
    )
    save_table("x4_index_mode", table)
    assert all(flag == "yes" for flag in table.column("answers agree"))
    exact = table.column("exact hyperplanes")
    relevant = table.column("relevant hyperplanes")
    assert all(r <= e for r, e in zip(relevant, exact))
    # At the largest size the restriction must be a real saving.
    assert relevant[-1] < exact[-1]
