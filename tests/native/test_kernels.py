"""Hot-path kernels: canonical behavior and float-exact backend parity.

The parity classes compare ``get_kernel(name, "python")`` against
``get_kernel(name, "native")`` with ``np.array_equal`` — bit-for-bit,
never ``allclose``.  Where numba is absent the native fetch falls back
to the canonical function and the comparison is trivially true; under
the CI optional-deps job the same tests become a real differential
against the jitted twins.
"""

import numpy as np
import pytest

from repro.constants import EPS_TIE as _TIE_TOL
from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.native import get_kernel, native_available


def pair(name):
    return get_kernel(name, "python"), get_kernel(name, "native")


@pytest.fixture
def market(small_market):
    objects, queries, ks = small_market
    return Dataset(objects), QuerySet(queries, ks)


class TestBeatsBatch:
    def test_infinite_threshold_always_hits(self):
        python, __ = pair("beats_batch")
        scores = np.array([[5.0, -5.0], [0.5, 0.4]])
        theta = np.array([np.inf, 0.3])
        kth = np.array([7, 1], dtype=np.intp)
        out = python(scores, theta, 3, kth, _TIE_TOL)
        assert out.dtype == np.bool_
        assert out[0].all()  # fewer than k others: every position hits
        assert not out[1].any()  # above a finite threshold: no hit

    def test_strict_beat_below_band(self):
        python, __ = pair("beats_batch")
        theta = np.array([1.0])
        band = _TIE_TOL * 1.0
        scores = np.array([[1.0 - 2 * band, 1.0 + 2 * band]])
        out = python(scores, theta, 0, np.array([9], dtype=np.intp), _TIE_TOL)
        assert out.tolist() == [[True, False]]

    def test_tie_band_uses_id_tie_break(self):
        python, __ = pair("beats_batch")
        theta = np.array([1.0, 1.0])
        scores = np.full((2, 1), 1.0)  # exactly on the threshold
        kth = np.array([5, 5], dtype=np.intp)
        wins = python(scores, theta, 2, kth, _TIE_TOL)  # target 2 < kth 5
        loses = python(scores, theta, 8, kth, _TIE_TOL)  # target 8 > kth 5
        assert wins.all()
        assert not loses.any()

    def test_band_scales_relative_to_threshold(self):
        # |theta| > 1 widens the band: a score off by theta*tol/2 still ties.
        python, __ = pair("beats_batch")
        theta = np.array([100.0])
        near = 100.0 + 100.0 * _TIE_TOL / 2
        out = python(
            np.array([[near]]), theta, 0, np.array([9], dtype=np.intp), _TIE_TOL
        )
        assert out.all()

    def test_empty_block(self):
        python, native = pair("beats_batch")
        scores = np.empty((0, 4))
        theta = np.empty(0)
        kth = np.empty(0, dtype=np.intp)
        assert python(scores, theta, 0, kth, _TIE_TOL).shape == (0, 4)
        assert native(scores, theta, 0, kth, _TIE_TOL).shape == (0, 4)


class TestSignatureMatrix:
    def test_side_convention(self):
        python, __ = pair("signature_matrix")
        values = np.array([[-1.0, 0.0, 1e-12, 1.0]])
        out = python(values, 1e-9)
        assert out.dtype == np.int8
        assert out.tolist() == [[1, 1, 1, -1]]  # <= tol is side 1

    def test_exactly_on_tolerance_is_side_one(self):
        python, __ = pair("signature_matrix")
        assert python(np.array([[1e-9]]), 1e-9).tolist() == [[1]]


class TestSlabCrossings:
    def test_region_change_detected_both_directions(self):
        python, __ = pair("slab_crossings")
        theta = np.array([1.0, 1.0, 1.0])
        band = _TIE_TOL * 1.0
        old = np.array([2 * band, 2 * band, -2 * band])
        new = np.array([-2 * band, 2 * band, 0.0])
        out = python(old, new, theta, _TIE_TOL)
        assert out.dtype == np.bool_
        # sign flip and band entry are crossings; unchanged region is not
        assert out.tolist() == [True, False, True]

    def test_entering_the_band_counts_without_sign_flip(self):
        # The tie-band region (-1/0/+1) is what matters: moving from
        # above the band to inside it flips membership through the id
        # tie-break even though the raw sign never changes.
        python, __ = pair("slab_crossings")
        theta = np.array([1.0])
        band = _TIE_TOL * 1.0
        out = python(
            np.array([2 * band]), np.array([band / 2]), theta, _TIE_TOL
        )
        assert out.tolist() == [True]

    def test_empty(self):
        python, native = pair("slab_crossings")
        empty = np.empty(0)
        assert python(empty, empty, empty, _TIE_TOL).shape == (0,)
        assert native(empty, empty, empty, _TIE_TOL).shape == (0,)


class TestBackendParity:
    """Bit-for-bit equality between the backends on adversarial inputs."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_beats_batch_parity(self, rng, dtype):
        python, native = pair("beats_batch")
        scores = rng.normal(size=(40, 16)).astype(dtype)
        theta = rng.normal(size=40).astype(dtype)
        theta[::7] = np.inf  # sprinkle the fewer-than-k sentinel
        kth = rng.integers(0, 20, size=40).astype(np.intp)
        # plant exact ties and band-edge values where it hurts most
        # (row 1: theta[0] is the planted infinity)
        band = _TIE_TOL * np.maximum(1.0, np.abs(theta[1]))
        scores[1, 0] = theta[1]
        scores[1, 1] = theta[1] - band
        scores[1, 2] = theta[1] + band
        for target in (0, 10, 25):
            ours = python(scores, theta, target, kth, _TIE_TOL)
            theirs = native(scores, theta, target, kth, _TIE_TOL)
            assert np.array_equal(ours, theirs)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_signature_matrix_parity(self, rng, dtype):
        python, native = pair("signature_matrix")
        values = rng.normal(size=(30, 12)).astype(dtype)
        values[0, :3] = [0.0, 1e-9, -1e-9]  # exact band edges
        ours = python(values, 1e-9)
        theirs = native(values, 1e-9)
        assert ours.dtype == theirs.dtype == np.int8
        assert np.array_equal(ours, theirs)

    def test_slab_crossings_parity(self, rng):
        python, native = pair("slab_crossings")
        theta = rng.normal(size=64)
        band = _TIE_TOL * np.maximum(1.0, np.abs(theta))
        old = rng.normal(size=64)
        new = rng.normal(size=64)
        # saturate the region boundaries with exact hits
        old[:4] = [band[0], -band[1], 0.0, 2 * band[3]]
        new[:4] = [-band[0], band[1], 2 * band[2], band[3]]
        assert np.array_equal(
            python(old, new, theta, _TIE_TOL), native(old, new, theta, _TIE_TOL)
        )


class TestEngineKernelThreading:
    def test_explain_reports_requested_and_resolved(self, market):
        dataset, queries = market
        engine = ImprovementQueryEngine(dataset, queries, kernel="native")
        plan = engine.explain(0, tau=5)
        assert plan.kernel == "native"
        assert plan.kernel_backend == (
            "native" if native_available() else "python"
        )
        as_dict = plan.to_dict()
        assert as_dict["kernel"] == plan.kernel
        assert as_dict["kernel_backend"] == plan.kernel_backend

    def test_python_and_native_engines_agree_exactly(self, market):
        dataset, queries = market
        reference = ImprovementQueryEngine(dataset, queries, kernel="python")
        candidate = ImprovementQueryEngine(dataset, queries, kernel="native")
        for target in range(0, dataset.n, 5):
            assert reference.hits(target) == candidate.hits(target)
            ours = reference.min_cost(target, tau=5)
            theirs = candidate.min_cost(target, tau=5)
            assert ours.hits_after == theirs.hits_after
            assert ours.total_cost == theirs.total_cost
            assert np.array_equal(ours.strategy.vector, theirs.strategy.vector)

    def test_from_index_accepts_kernel(self, market, tmp_path):
        dataset, queries = market
        built = ImprovementQueryEngine(dataset, queries)
        built.index.save(tmp_path / "idx", format="mmap")
        from repro.core.subdomain import SubdomainIndex

        engine = ImprovementQueryEngine.from_index(
            SubdomainIndex.load(tmp_path / "idx", dataset, queries),
            kernel="python",
        )
        assert engine.kernel_requested == "python"
        assert engine.kernel_backend == "python"
        assert engine.hits(0) == built.hits(0)
