"""The kernel registry: resolution order, pinning, twin discipline."""

import pytest

from repro.errors import ValidationError
from repro.native import (
    KERNEL_BACKENDS,
    active_backend,
    get_kernel,
    kernel,
    native_available,
    native_kernel_names,
    python_kernel_names,
    register_kernel,
    register_native,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.native import registry as _registry


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = active_backend()
    yield
    set_backend(previous)


class TestResolution:
    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "native")
        assert resolve_backend("python") == ("python", "python")

    def test_environment_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert resolve_backend() == ("python", "python")

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        requested, resolved = resolve_backend()
        assert requested == "auto"
        assert resolved == ("native" if native_available() else "python")

    def test_native_degrades_visibly_not_silently(self):
        requested, resolved = resolve_backend("native")
        assert requested == "native"  # the request is preserved for EXPLAIN
        assert resolved == ("native" if native_available() else "python")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="fortran"):
            resolve_backend("fortran")

    def test_case_insensitive(self):
        assert resolve_backend("PYTHON") == ("python", "python")


class TestPinning:
    def test_set_backend_rejects_auto(self):
        # auto must be resolved first so requested-vs-resolved stays
        # explicit; the active backend is always a concrete value.
        with pytest.raises(ValidationError, match="auto"):
            set_backend("auto")

    def test_use_backend_restores_on_exit(self):
        before = active_backend()
        with use_backend("python"):
            assert active_backend() == "python"
        assert active_backend() == before

    def test_use_backend_restores_on_exception(self):
        before = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("python"):
                raise RuntimeError("boom")
        assert active_backend() == before

    def test_kernel_dispatch_follows_the_pin(self):
        with use_backend("python"):
            assert kernel("beats_batch") is get_kernel("beats_batch", "python")


class TestRegistryContract:
    def test_canonical_kernels_are_registered(self):
        names = python_kernel_names()
        for expected in ("beats_batch", "signature_matrix", "slab_crossings"):
            assert expected in names

    def test_native_names_subset_of_python_names(self):
        assert set(native_kernel_names()) <= set(python_kernel_names())

    def test_backends_tuple_is_the_cli_contract(self):
        assert KERNEL_BACKENDS == ("python", "native", "auto")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError, match="unknown kernel"):
            get_kernel("made_up")
        with pytest.raises(ValidationError, match="unknown kernel"):
            kernel("made_up")

    def test_native_twin_requires_python_kernel_first(self):
        with pytest.raises(ValidationError, match="pure-python twin"):
            register_native("orphan_twin")(lambda: None)

    def test_duplicate_registrations_rejected(self):
        name = "throwaway_kernel_for_tests"
        try:
            register_kernel(name)(lambda: "python")
            with pytest.raises(ValidationError, match="duplicate"):
                register_kernel(name)(lambda: "again")
            register_native(name)(lambda: "native")
            with pytest.raises(ValidationError, match="duplicate"):
                register_native(name)(lambda: "again")
        finally:
            _registry._PYTHON.pop(name, None)
            _registry._NATIVE.pop(name, None)
            _registry._ACTIVE.pop(name, None)

    def test_get_kernel_native_falls_back_per_kernel(self):
        name = "python_only_kernel_for_tests"
        try:
            marker = register_kernel(name)(lambda: "python")
            assert get_kernel(name, "native") is marker  # no twin: canonical
        finally:
            _registry._PYTHON.pop(name, None)
            _registry._ACTIVE.pop(name, None)
