"""Every bundled example must run to completion as a script."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate what they do"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # deliverable (b): at least three examples
