"""Executable checks of the paper's stated facts and worked examples."""

import numpy as np
import pytest

from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.geometry.hyperplane import Hyperplane
from repro.topk.evaluate import top_k


class TestFigure2WorkedExample:
    """f1(q) = 4 q1 + 3 q2, f2(q) = q1 - 2 q2, s = (1, 0) applied to p1.

    The paper's table: queries above both the old and new intersection
    keep [f1, f2]; queries that move across switch to [f2, f1]; queries
    below both keep [f2, f1].  (Here 'above' means f1 ranks no worse.)
    """

    P1 = np.array([4.0, 3.0])
    P2 = np.array([1.0, -2.0])
    S = np.array([1.0, 0.0])

    def ranking(self, p1, q):
        objects = np.vstack([p1, self.P2])
        return top_k(objects, q, 2)

    def test_old_and_new_intersections(self):
        old = Hyperplane.between(self.P1, self.P2)
        new = old.tilt(self.S)
        assert np.allclose(old.normal, [3.0, 5.0])
        assert np.allclose(new.normal, [4.0, 5.0])

    def test_affected_queries_switch_rank(self):
        # Query domain here is unnormalized (the paper's figure uses
        # negative coordinates); test the fact directly on rankings.
        old = Hyperplane.between(self.P1, self.P2)
        new = old.tilt(self.S)
        rng = np.random.default_rng(2)
        moved = kept = 0
        for __ in range(300):
            q = rng.uniform(-1, 1, size=2)
            before = self.ranking(self.P1, q)
            after = self.ranking(self.P1 + self.S, q)
            crossed = old.side(q) != new.side(q)
            if crossed:
                moved += 1
                assert before != after, "Fact 2: crossing queries switch ranks"
            else:
                kept += 1
                assert before == after, "Fact 1: non-crossing queries are unaffected"
        assert moved > 0 and kept > 0  # the sample saw both cases


class TestFact1General:
    """Fact 1 at scale: H changes only via queries in affected subspaces."""

    def test_unmoved_queries_keep_membership(self, rng):
        dataset = Dataset(rng.random((12, 3)))
        queries = QuerySet(rng.random((30, 3)), ks=3)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        target = 4
        old = dataset.matrix[target]
        for __ in range(10):
            s = rng.normal(scale=0.3, size=3)
            affected = set(evaluator.affected_queries(target, old, old + s).tolist())
            before = evaluator.hits_mask(target, old)
            after = evaluator.hits_mask(target, old + s)
            for j in range(30):
                if j not in affected:
                    assert before[j] == after[j]


class TestSubdomainCardinality:
    """§5.2 footnote: for linear functions the number of populated
    subdomains is bounded by the arrangement cell bound O(n^d)."""

    def test_cells_bounded(self, rng):
        from repro.geometry.arrangement import max_cells_bound

        dataset = Dataset(rng.random((8, 2)))
        queries = QuerySet(rng.random((100, 2)), ks=2)
        index = SubdomainIndex(dataset, queries)
        assert index.num_subdomains <= max_cells_bound(index.num_hyperplanes, 2)
        assert index.num_subdomains <= queries.m  # never more cells than points


class TestNPHardnessReductionShape:
    """§4.2.1: the set-cover reduction instance behaves as described."""

    def test_reduction_instance_mechanics(self):
        # U = {u1, u2, u3}, S1 = {u1, u2}, S2 = {u2, u3}.
        weights = np.array(
            [
                [1.0, 0.0],  # u1: covered by S1 only
                [1.0, 1.0],  # u2: covered by both
                [0.0, 1.0],  # u3: covered by S2 only
            ]
        )
        p0 = np.ones(2)  # the target: scores high (bad) everywhere
        p1 = np.full(2, 1.0 / 3)  # the paper's 1/(m+1) competitor
        dataset = Dataset(np.vstack([p0, p1]))
        queries = QuerySet(weights, ks=1)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        assert evaluator.hits(0) == 0  # H(p0) = 0 as constructed
        assert evaluator.hits(1) == 3  # H(p1) = n as constructed
        # Setting attribute j to 0 "selects subset Sj": selecting both
        # subsets hits all three queries.
        assert evaluator.evaluate(0, np.array([-1.0, -1.0])) == 3
        # Reproduction note: selecting only S1 hits u1 (score 0 beats
        # 1/3) but NOT u2 — u2's score drops to deg-1 = 1, still above
        # the competitor's 2/3.  The paper's reduction text glosses over
        # elements covered by several subsets; the instance as literally
        # constructed requires zeroing *every* weighted attribute of a
        # query to hit it, which still makes optimal improvement encode
        # a covering-style choice but with AND semantics per element.
        assert evaluator.evaluate(0, np.array([-1.0, 0.0])) == 1
