"""Cross-module integration: full pipelines exercised the way the
benchmarks and the paper's tool use them."""

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.data.realworld import simulate_vehicle
from repro.data.synthetic import generate
from repro.data.workloads import generate_queries, polynomial_workload
from repro.dbms import Database
from repro.topk.evaluate import top_k


class TestSyntheticPipelines:
    @pytest.mark.parametrize("kind", ["IN", "CO", "AC"])
    def test_object_kinds_full_pipeline(self, kind):
        dataset = Dataset(generate(kind, 80, 3, seed=11))
        queries = generate_queries("UN", 50, 3, seed=12, k_range=(1, 5))
        engine = ImprovementQueryEngine(dataset, queries, mode="relevant")
        target = min(range(80), key=engine.hits)
        result = engine.min_cost(target, tau=10)
        assert result.satisfied
        # Independent verification against brute force.
        improved = dataset.improved(target, result.strategy.vector)
        hits = sum(
            1
            for j in range(50)
            if target in top_k(improved.matrix, *queries.query(j))
        )
        assert hits == result.hits_after

    @pytest.mark.parametrize("kind", ["UN", "CL"])
    def test_query_kinds_full_pipeline(self, kind):
        dataset = Dataset(generate("IN", 60, 3, seed=13))
        queries = generate_queries(kind, 40, 3, seed=14, k_range=(1, 4))
        engine = ImprovementQueryEngine(dataset, queries, mode="relevant")
        result = engine.max_hit(0, budget=0.8)
        assert result.total_cost <= 0.8 + 1e-9
        assert result.hits_after >= result.hits_before


class TestRelevantVsExactMode:
    def test_same_results_both_modes(self):
        """The 'relevant' hyperplane restriction must not change any
        answer — it is a pure indexing optimization."""
        dataset = Dataset(generate("IN", 50, 3, seed=15))
        queries = generate_queries("UN", 30, 3, seed=16, k_range=(1, 4))
        exact = ImprovementQueryEngine(dataset, queries, mode="exact")
        relevant = ImprovementQueryEngine(dataset, queries, mode="relevant")
        for target in (0, 10, 25):
            assert exact.hits(target) == relevant.hits(target)
            a = exact.min_cost(target, tau=8)
            b = relevant.min_cost(target, tau=8)
            assert a.total_cost == pytest.approx(b.total_cost)
            assert a.hits_after == b.hits_after


class TestNonlinearPipeline:
    def test_polynomial_workload_end_to_end(self):
        """Fig. 13 path: polynomial utilities -> linearize -> improve."""
        family, queries = polynomial_workload("UN", 25, 3, seed=17, k_range=(1, 3))
        points = np.random.default_rng(18).random((30, 3))
        dataset = Dataset(family.augment(points))
        engine = ImprovementQueryEngine(dataset, queries)
        target = min(range(30), key=engine.hits)
        result = engine.min_cost(target, tau=6)
        assert result.satisfied
        # Verify in the nonlinear world: apply the augmented strategy and
        # recount with direct polynomial scoring.
        augmented = family.augment(points)
        augmented[target] += result.strategy.vector
        hits = 0
        for j in range(25):
            weights, k = queries.query(j)
            hits += target in top_k(augmented, weights, k)
        assert hits == result.hits_after


class TestSimulatedRealData:
    def test_vehicle_improvement_story(self):
        """Figure 12's path on the simulated VEHICLE data."""
        dataset = simulate_vehicle(n=60, seed=19)
        queries = generate_queries("UN", 30, 5, seed=20, k_range=(1, 4))
        engine = ImprovementQueryEngine(dataset, queries, mode="relevant")
        target = min(range(60), key=engine.hits)
        result = engine.max_hit(target, budget=0.5)
        assert result.hits_after >= result.hits_before
        assert result.total_cost <= 0.5 + 1e-9


class TestDbmsRoundTrip:
    def test_generated_data_through_sql(self):
        """Generator -> SQL inserts -> IMPROVE -> verify via engine API."""
        rng = np.random.default_rng(21)
        objects = rng.random((20, 2)).round(4)
        weights = rng.random((12, 2)).round(4)
        db = Database()
        db.execute("CREATE TABLE o (a FLOAT, b FLOAT)")
        for row in objects:
            db.execute(f"INSERT INTO o VALUES ({row[0]}, {row[1]})")
        db.execute("CREATE TABLE q (wa FLOAT, wb FLOAT, k INT)")
        for row in weights:
            db.execute(f"INSERT INTO q VALUES ({row[0]}, {row[1]}, 2)")
        db.execute(
            "CREATE IMPROVEMENT INDEX ix ON o (a, b) USING QUERIES q (wa, wb, k)"
        )
        sql_result = db.execute("IMPROVE o TARGET WHERE rowid = 5 USING ix REACH 4")

        from repro.core.queries import QuerySet

        engine = ImprovementQueryEngine(
            Dataset(objects), QuerySet(weights, 2)
        )
        api_result = engine.min_cost(5, tau=4)
        assert sql_result.column("cost")[0] == pytest.approx(api_result.total_cost)
        assert sql_result.column("hits_after")[0] == api_result.hits_after


class TestDynamicWorkloadScenario:
    def test_churning_market(self):
        """Objects and queries come and go; answers stay exact."""
        rng = np.random.default_rng(22)
        dataset = Dataset(rng.random((25, 2)))
        queries_arr = rng.random((20, 2))
        from repro.core.queries import QuerySet

        engine = ImprovementQueryEngine(dataset, QuerySet(queries_arr, 2))
        for step in range(6):
            if step % 3 == 0:
                engine.add_query(rng.random(2), int(rng.integers(1, 4)))
            elif step % 3 == 1:
                engine.add_object(rng.random(2))
            else:
                engine.remove_object(int(rng.integers(0, engine.dataset.n)))
            engine.index.validate()
            # Every state must agree with a from-scratch engine.
            fresh = ImprovementQueryEngine(engine.dataset, engine.queries)
            for target in (0, engine.dataset.n - 1):
                assert engine.hits(target) == fresh.hits(target)
