import numpy as np
import pytest

from repro.core.cost import L1Cost, euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError


@pytest.fixture
def world(rng):
    dataset = Dataset(rng.random((20, 3)))
    queries = QuerySet(rng.random((40, 3)), ks=rng.integers(1, 5, 40))
    index = SubdomainIndex(dataset, queries)
    return dataset, queries, StrategyEvaluator(index)


class TestGoalAttainment:
    def test_reaches_tau(self, world):
        dataset, __, evaluator = world
        cost = euclidean_cost(3)
        for tau in (5, 15, 30):
            result = min_cost_iq(evaluator, target=0, tau=tau, cost=cost)
            assert result.satisfied
            assert result.hits_after >= tau
            # Reported hits must equal a fresh evaluation of the strategy.
            assert result.hits_after == evaluator.evaluate(0, result.strategy.vector)

    def test_already_satisfied_returns_zero(self, world, rng):
        __, __, evaluator = world
        # Find a target with at least one hit.
        target = max(range(20), key=evaluator.hits)
        baseline = evaluator.hits(target)
        assert baseline > 0
        result = min_cost_iq(evaluator, target, tau=baseline, cost=euclidean_cost(3))
        assert result.strategy.is_zero()
        assert result.total_cost == 0.0
        assert result.satisfied

    def test_total_cost_is_sum_of_iterations(self, world):
        __, __, evaluator = world
        result = min_cost_iq(evaluator, target=1, tau=20, cost=euclidean_cost(3))
        assert result.total_cost == pytest.approx(sum(r.cost for r in result.iterations))

    def test_hits_monotone_in_tau_cost(self, world):
        __, __, evaluator = world
        cost = euclidean_cost(3)
        costs = [
            min_cost_iq(evaluator, target=2, tau=tau, cost=cost).total_cost
            for tau in (5, 10, 20, 35)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:])), costs

    def test_cost_positive_when_improvement_needed(self, world):
        __, __, evaluator = world
        target = min(range(20), key=evaluator.hits)
        if evaluator.hits(target) < 10:
            result = min_cost_iq(evaluator, target, tau=10, cost=euclidean_cost(3))
            assert result.total_cost > 0


class TestConstrainedSearch:
    def test_frozen_attribute_never_moves(self, world):
        __, __, evaluator = world
        space = StrategySpace.unconstrained(3).freeze([1])
        result = min_cost_iq(evaluator, target=0, tau=10, cost=euclidean_cost(3), space=space)
        assert abs(result.strategy.vector[1]) < 1e-9

    def test_tight_bounds_may_fail_gracefully(self, world):
        __, __, evaluator = world
        tiny = StrategySpace(3, lower=np.full(3, -1e-4), upper=np.full(3, 1e-4))
        result = min_cost_iq(evaluator, target=0, tau=35, cost=euclidean_cost(3), space=tiny)
        assert not result.satisfied
        assert result.hits_after < 35
        # The partial strategy still respects the bounds.
        assert tiny.contains(result.strategy.vector)

    def test_l1_cost_supported(self, world):
        __, __, evaluator = world
        result = min_cost_iq(evaluator, target=3, tau=10, cost=L1Cost(3))
        assert result.satisfied
        assert result.total_cost > 0


class TestValidation:
    def test_bad_tau(self, world):
        __, __, evaluator = world
        with pytest.raises(ValidationError):
            min_cost_iq(evaluator, 0, tau=0, cost=euclidean_cost(3))
        with pytest.raises(ValidationError):
            min_cost_iq(evaluator, 0, tau=41, cost=euclidean_cost(3))

    def test_bad_cost_dim(self, world):
        __, __, evaluator = world
        with pytest.raises(ValidationError):
            min_cost_iq(evaluator, 0, tau=5, cost=euclidean_cost(7))


class TestQualityAgainstBaselines:
    def test_not_worse_than_simple_greedy(self, world):
        from repro.baselines.greedy import greedy_min_cost_iq

        __, __, evaluator = world
        cost = euclidean_cost(3)
        for target in (0, 5, 9):
            ours = min_cost_iq(evaluator, target, tau=15, cost=cost)
            simple = greedy_min_cost_iq(evaluator, target, tau=15, cost=cost)
            if ours.satisfied and simple.satisfied:
                # The paper's claim: ratio-greedy beats cost-greedy.
                # Allow small slack: both are heuristics.
                assert ours.total_cost <= simple.total_cost * 1.2 + 1e-9
