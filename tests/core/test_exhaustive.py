import numpy as np
import pytest

from repro.core.cost import L1Cost, euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.exhaustive import exhaustive_max_hit, exhaustive_min_cost
from repro.core.maxhit import max_hit_iq
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError


def world(rng, n=10, m=8, d=2, k=2):
    dataset = Dataset(rng.random((n, d)))
    queries = QuerySet(rng.random((m, d)), ks=k)
    return StrategyEvaluator(SubdomainIndex(dataset, queries))


class TestMinCostExact:
    def test_optimal_never_worse_than_heuristic(self, rng):
        for trial in range(5):
            evaluator = world(rng)
            cost = euclidean_cost(2)
            for tau in (2, 4):
                exact = exhaustive_min_cost(evaluator, 0, tau, cost)
                heuristic = min_cost_iq(evaluator, 0, tau, cost)
                assert exact.satisfied
                assert exact.hits_after >= tau
                if heuristic.satisfied:
                    assert exact.total_cost <= heuristic.total_cost + 1e-6, f"trial {trial}"

    def test_verifies_with_true_hits(self, rng):
        evaluator = world(rng)
        exact = exhaustive_min_cost(evaluator, 1, 3, euclidean_cost(2))
        assert exact.hits_after == evaluator.evaluate(1, exact.strategy.vector)

    def test_l1_cost_exact_lp(self, rng):
        evaluator = world(rng)
        exact = exhaustive_min_cost(evaluator, 0, 3, L1Cost(2))
        heuristic = min_cost_iq(evaluator, 0, 3, L1Cost(2))
        assert exact.satisfied
        if heuristic.satisfied:
            assert exact.total_cost <= heuristic.total_cost + 1e-6

    def test_infeasible_goal_unsatisfied(self, rng):
        evaluator = world(rng)
        tiny = StrategySpace(2, lower=np.full(2, -1e-6), upper=np.full(2, 1e-6))
        result = exhaustive_min_cost(evaluator, 0, 8, euclidean_cost(2), space=tiny)
        # Either the target trivially hits everything already or the box
        # makes the goal unreachable.
        if evaluator.hits(0) < 8:
            assert not result.satisfied

    def test_size_cap_enforced(self, rng):
        dataset = Dataset(rng.random((5, 2)))
        queries = QuerySet(rng.random((30, 2)), ks=2)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        with pytest.raises(ValidationError):
            exhaustive_min_cost(evaluator, 0, 5, euclidean_cost(2))


class TestMaxHitExact:
    def test_optimal_never_worse_than_heuristic(self, rng):
        for __ in range(5):
            evaluator = world(rng)
            cost = euclidean_cost(2)
            for budget in (0.2, 0.6):
                exact = exhaustive_max_hit(evaluator, 0, budget, cost)
                heuristic = max_hit_iq(evaluator, 0, budget, cost)
                assert exact.total_cost <= budget + 1e-9
                assert exact.hits_after >= heuristic.hits_after

    def test_zero_budget(self, rng):
        evaluator = world(rng)
        result = exhaustive_max_hit(evaluator, 0, 0.0, euclidean_cost(2))
        assert result.hits_after == result.hits_before
        assert result.total_cost == 0.0

    def test_negative_budget_raises(self, rng):
        evaluator = world(rng)
        with pytest.raises(ValidationError):
            exhaustive_max_hit(evaluator, 0, -0.5, euclidean_cost(2))


class TestSetCoverStructure:
    def test_np_hardness_instance(self):
        """The reduction instance of §4.2.1: hitting a query = covering an
        element; the optimum picks the fewest 'subsets'."""
        # Universe u1..u3, subsets S1={u1,u2}, S2={u2,u3}, S3={u3}.
        # Queries weight the subset-attributes; target starts at 0.
        weights = np.array(
            [
                [1.0, 0.0, 0.0],  # u1 covered by S1
                [1.0, 1.0, 0.0],  # u2 covered by S1, S2
                [0.0, 1.0, 1.0],  # u3 covered by S2, S3
            ]
        )
        competitor = np.full(3, 1.0 / 4)  # scores 1/4 .. strictly positive
        objects = np.vstack([np.ones(3), competitor])  # target=0 scores high
        dataset = Dataset(objects)
        queries = QuerySet(weights, ks=1)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        assert evaluator.hits(0) == 0
        # Hitting all three top-1 queries needs the target's score below
        # the competitor's on each: x1 < 0.25, x1+x2 < 0.5, x2+x3 < 0.5.
        # The cheapest L1 move is s = (-0.75, -0.75, -0.75), cost 2.25.
        result = exhaustive_min_cost(evaluator, 0, 3, L1Cost(3))
        assert result.satisfied
        assert result.total_cost == pytest.approx(2.25, rel=1e-3)
