import numpy as np
import pytest

from repro.core.objects import Dataset
from repro.errors import ValidationError


class TestConstruction:
    def test_basic(self, rng):
        data = Dataset(rng.random((10, 3)), names=["a", "b", "c"])
        assert data.n == 10 and data.dim == 3 and len(data) == 10
        assert data.names == ["a", "b", "c"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            Dataset(np.ones(3))
        with pytest.raises(ValidationError):
            Dataset(np.array([[np.nan]]))
        with pytest.raises(ValidationError):
            Dataset(np.ones((2, 2)), names=["only-one"])
        with pytest.raises(ValidationError):
            Dataset(np.ones((2, 2)), sense="upside-down")

    def test_views_read_only(self, rng):
        data = Dataset(rng.random((5, 2)))
        with pytest.raises(ValueError):
            data.points[0, 0] = 9.0
        with pytest.raises(ValueError):
            data.matrix[0, 0] = 9.0


class TestSense:
    def test_min_sense_matrix_equals_points(self, rng):
        raw = rng.random((5, 2))
        data = Dataset(raw)
        assert np.array_equal(data.matrix, raw)

    def test_max_sense_negates(self, rng):
        raw = rng.random((5, 2))
        data = Dataset(raw, sense="max")
        assert np.array_equal(data.matrix, -raw)
        assert np.array_equal(data.points, raw)

    def test_strategy_conversion_roundtrip(self, rng):
        data = Dataset(rng.random((3, 4)), sense="max")
        s = rng.normal(size=4)
        assert np.allclose(data.to_external_strategy(data.to_internal_strategy(s)), s)

    def test_max_sense_ranking(self):
        # Higher utility must rank first under sense=max.
        data = Dataset(np.array([[1.0], [5.0]]), sense="max")
        scores = data.evaluate(np.array([1.0]))
        assert scores[1] < scores[0]  # object 1 wins in min-convention


class TestMutation:
    def test_with_object(self, rng):
        data = Dataset(rng.random((4, 2)))
        bigger, new_id = data.with_object(np.array([0.5, 0.5]))
        assert new_id == 4 and bigger.n == 5
        assert data.n == 4  # original untouched
        assert np.allclose(bigger.point(4), [0.5, 0.5])

    def test_without_object_shifts_ids(self, rng):
        raw = rng.random((4, 2))
        data = Dataset(raw)
        smaller = data.without_object(1)
        assert smaller.n == 3
        assert np.allclose(smaller.point(1), raw[2])

    def test_improved_applies_strategy(self):
        data = Dataset(np.array([[10.0, 2.0, 250.0]]))
        improved = data.improved(0, np.array([5.0, 2.0, -50.0]))
        assert improved.point(0).tolist() == [15.0, 4.0, 200.0]

    def test_bad_ids(self, rng):
        data = Dataset(rng.random((3, 2)))
        with pytest.raises(ValidationError):
            data.point(7)
        with pytest.raises(ValidationError):
            data.without_object(-1)
        with pytest.raises(ValidationError):
            data.with_object(np.ones(5))
