import numpy as np
import pytest

from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError
from repro.topk.evaluate import top_k


def brute_force_hits(matrix, queries, target, position=None):
    """Ground truth H: replace the target row and count top-k memberships."""
    matrix = matrix.copy()
    if position is not None:
        matrix[target] = position
    hits = 0
    for j in range(queries.m):
        weights, k = queries.query(j)
        if target in top_k(matrix, weights, k):
            hits += 1
    return hits


@pytest.fixture
def setup(rng):
    dataset = Dataset(rng.random((15, 3)))
    queries = QuerySet(rng.random((30, 3)), ks=rng.integers(1, 5, 30))
    index = SubdomainIndex(dataset, queries)
    return dataset, queries, index, StrategyEvaluator(index)


class TestHitCounting:
    def test_baseline_hits_match_brute_force(self, setup):
        dataset, queries, __, evaluator = setup
        for target in range(dataset.n):
            assert evaluator.hits(target) == brute_force_hits(
                dataset.matrix, queries, target
            )

    def test_evaluate_strategy_matches_brute_force(self, setup, rng):
        dataset, queries, __, evaluator = setup
        target = 4
        for __ in range(20):
            s = rng.normal(scale=0.3, size=3)
            expected = brute_force_hits(
                dataset.matrix, queries, target, dataset.matrix[target] + s
            )
            assert evaluator.evaluate(target, s) == expected

    def test_evaluate_many_matches_single(self, setup, rng):
        dataset, __, __, evaluator = setup
        target = 7
        positions = dataset.matrix[target] + rng.normal(scale=0.3, size=(12, 3))
        batch = evaluator.evaluate_many(target, positions)
        singles = [evaluator.hits(target, p) for p in positions]
        assert batch.tolist() == singles

    def test_threshold_cache_reused(self, setup):
        __, __, index, evaluator = setup
        evaluator.hits(3)
        evals = index.representative_evaluations
        evaluator.hits(3)
        evaluator.evaluate(3, np.zeros(3))
        assert index.representative_evaluations == evals  # no re-evaluation

    def test_invalidate_clears_cache(self, setup):
        __, __, __, evaluator = setup
        evaluator.hits(3)
        assert 3 in evaluator._target_cache
        evaluator.invalidate(3)
        assert 3 not in evaluator._target_cache
        evaluator.hits(3)
        evaluator.invalidate()
        assert not evaluator._target_cache

    def test_zero_strategy_is_identity(self, setup):
        __, __, __, evaluator = setup
        assert evaluator.evaluate(2, np.zeros(3)) == evaluator.hits(2)

    def test_position_shape_checked(self, setup):
        __, __, __, evaluator = setup
        with pytest.raises(ValidationError):
            evaluator.hits(0, np.zeros(5))
        with pytest.raises(ValidationError):
            evaluator.evaluate_many(0, np.zeros((2, 5)))


class TestAffectedSubspace:
    """The literal Algorithm 2 path must agree with the vectorized one."""

    def test_affected_evaluation_matches_direct(self, setup, rng):
        dataset, __, __, evaluator = setup
        target = 2
        old = dataset.matrix[target]
        base_mask = evaluator.hits_mask(target)
        for __ in range(10):
            new = old + rng.normal(scale=0.4, size=3)
            hits, mask = evaluator.evaluate_affected(target, old, new, base_mask)
            assert hits == evaluator.hits(target, new)
            assert np.array_equal(mask, evaluator.hits_mask(target, new))

    def test_no_move_affects_nothing(self, setup):
        dataset, __, __, evaluator = setup
        target = 5
        old = dataset.matrix[target]
        affected = evaluator.affected_queries(target, old, old)
        assert affected.size == 0

    def test_affected_set_is_sound(self, setup, rng):
        # Fact 1: any query whose membership changed must be affected.
        dataset, __, __, evaluator = setup
        target = 9
        old = dataset.matrix[target]
        for __ in range(5):
            new = old + rng.normal(scale=0.5, size=3)
            affected = set(evaluator.affected_queries(target, old, new).tolist())
            before = evaluator.hits_mask(target, old)
            after = evaluator.hits_mask(target, new)
            changed = set(np.flatnonzero(before != after).tolist())
            assert changed <= affected

    def test_counters_advance(self, setup, rng):
        dataset, __, __, evaluator = setup
        target = 1
        old = dataset.matrix[target]
        evaluator.evaluate_affected(target, old, old + rng.normal(scale=0.3, size=3))
        assert evaluator.incremental_evaluations == 1
