import numpy as np
import pytest

from repro.core.cost import (
    AsymmetricLinearCost,
    CallableCost,
    L1Cost,
    L2Cost,
    LInfCost,
    euclidean_cost,
)
from repro.errors import ValidationError


class TestL2Cost:
    def test_paper_eq_30(self):
        cost = euclidean_cost(3)
        assert cost(np.array([3.0, 4.0, 0.0])) == pytest.approx(5.0)

    def test_zero_is_free(self):
        assert L2Cost(4)(np.zeros(4)) == 0.0

    def test_weights_scale(self):
        cost = L2Cost(2, weights=[4.0, 1.0])
        assert cost(np.array([1.0, 0.0])) == pytest.approx(2.0)

    def test_invalid_weights(self):
        with pytest.raises(ValidationError):
            L2Cost(2, weights=[1.0, 0.0])
        with pytest.raises(ValidationError):
            L2Cost(2, weights=[1.0])

    def test_shape_check(self):
        with pytest.raises(ValidationError):
            L2Cost(2)(np.zeros(3))


class TestL1Cost:
    def test_absolute_sum(self):
        assert L1Cost(3)(np.array([1.0, -2.0, 3.0])) == pytest.approx(6.0)

    def test_weighted(self):
        cost = L1Cost(2, weights=[10.0, 1.0])
        assert cost(np.array([0.5, -0.5])) == pytest.approx(5.5)


class TestLInfCost:
    def test_max_component(self):
        assert LInfCost(3)(np.array([1.0, -5.0, 2.0])) == pytest.approx(5.0)


class TestAsymmetricCost:
    def test_direction_pricing(self):
        cost = AsymmetricLinearCost(2, up=[10.0, 1.0], down=[1.0, 10.0])
        assert cost(np.array([1.0, 0.0])) == pytest.approx(10.0)  # raising dim 0
        assert cost(np.array([-1.0, 0.0])) == pytest.approx(1.0)  # lowering dim 0
        assert cost(np.array([0.0, -1.0])) == pytest.approx(10.0)

    def test_mixed_strategy(self):
        cost = AsymmetricLinearCost(2, up=[2.0, 3.0], down=[5.0, 7.0])
        assert cost(np.array([1.0, -1.0])) == pytest.approx(2.0 + 7.0)


class TestCallableCost:
    def test_wraps_function(self):
        cost = CallableCost(2, lambda s: float(np.sum(s**4)))
        assert cost(np.array([1.0, 2.0])) == pytest.approx(17.0)

    def test_requires_zero_at_origin(self):
        with pytest.raises(ValidationError):
            CallableCost(2, lambda s: 1.0 + float(np.sum(np.abs(s))))

    def test_rejects_invalid_values(self):
        cost = CallableCost(1, lambda s: float(s[0]))  # negative for s<0
        with pytest.raises(ValidationError):
            cost(np.array([-5.0]))

    def test_rejects_non_callable(self):
        with pytest.raises(ValidationError):
            CallableCost(2, "not callable")


class TestConvexityProperties:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: L2Cost(3),
            lambda: L1Cost(3),
            lambda: LInfCost(3),
            lambda: AsymmetricLinearCost(3, up=[1.0, 2.0, 3.0], down=[3.0, 2.0, 1.0]),
        ],
    )
    def test_midpoint_convexity_and_nonnegativity(self, make, rng):
        cost = make()
        for __ in range(25):
            a = rng.normal(size=3)
            b = rng.normal(size=3)
            mid = 0.5 * (a + b)
            assert cost(mid) <= 0.5 * cost(a) + 0.5 * cost(b) + 1e-9
            assert cost(a) >= 0
