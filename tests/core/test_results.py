import numpy as np
import pytest

from repro.core.results import IQResult, IterationRecord
from repro.core.strategy import Strategy


def make_result(**overrides):
    defaults = dict(
        target=3,
        strategy=Strategy(np.array([1.0, -2.0]), cost=2.5),
        hits_before=4,
        hits_after=10,
        total_cost=2.5,
        satisfied=True,
    )
    defaults.update(overrides)
    return IQResult(**defaults)


class TestIQResult:
    def test_hits_gained(self):
        assert make_result().hits_gained == 6

    def test_cost_per_hit(self):
        assert make_result().cost_per_hit == pytest.approx(0.25)

    def test_cost_per_hit_zero_hits(self):
        result = make_result(hits_after=0, total_cost=1.0)
        assert result.cost_per_hit == float("inf")

    def test_cost_per_hit_free_noop(self):
        result = make_result(hits_after=0, total_cost=0.0)
        assert result.cost_per_hit == 0.0

    def test_improved_point(self):
        result = make_result()
        assert result.improved_point(np.array([10.0, 20.0])).tolist() == [11.0, 18.0]

    def test_iteration_records(self):
        record = IterationRecord(query_id=5, cost=0.7, hits_after=8, candidates=12)
        result = make_result(iterations=[record])
        assert result.iterations[0].query_id == 5
        assert result.iterations[0].candidates == 12
