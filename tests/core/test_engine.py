import numpy as np
import pytest

from repro.core.cost import AsymmetricLinearCost, euclidean_cost
from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.errors import ValidationError
from repro.topk.evaluate import top_k


@pytest.fixture
def engine(rng):
    dataset = Dataset(rng.random((18, 3)))
    queries = QuerySet(rng.random((30, 3)), ks=rng.integers(1, 5, 30))
    return ImprovementQueryEngine(dataset, queries)


class TestReadSide:
    def test_hits_and_reverse_topk_consistent(self, engine):
        for target in range(0, 18, 3):
            hit_ids = engine.reverse_top_k(target)
            assert engine.hits(target) == hit_ids.shape[0]
            for j in hit_ids:
                weights, k = engine.queries.query(int(j))
                assert target in top_k(engine.dataset.matrix, weights, k)


class TestMethodDispatch:
    def test_all_methods_reach_goal(self, engine):
        for method in ("efficient", "rta", "greedy"):
            result = engine.min_cost(0, tau=10, method=method)
            assert result.satisfied, method
            assert result.hits_after >= 10

    def test_efficient_and_rta_same_quality(self, engine):
        """§6.3.2: RTA-IQ shares the search, so strategies coincide."""
        eff = engine.min_cost(2, tau=12, method="efficient")
        rta = engine.min_cost(2, tau=12, method="rta")
        assert eff.total_cost == pytest.approx(rta.total_cost)
        assert np.allclose(eff.strategy.vector, rta.strategy.vector)

    def test_quality_ordering(self, engine):
        """Efficient <= Greedy <= Random in cost-per-hit (paper Fig. 7-12)."""
        eff = engine.min_cost(1, tau=15)
        greedy = engine.min_cost(1, tau=15, method="greedy")
        rand = engine.min_cost(1, tau=15, method="random")
        assert eff.cost_per_hit <= greedy.cost_per_hit + 1e-9
        assert greedy.cost_per_hit <= rand.cost_per_hit * 1.05 + 1e-9

    def test_unknown_method(self, engine):
        with pytest.raises(ValidationError):
            engine.min_cost(0, tau=5, method="quantum")
        with pytest.raises(ValidationError):
            engine.max_hit(0, budget=1.0, method="quantum")

    def test_max_hit_methods(self, engine):
        for method in ("efficient", "rta", "greedy", "random"):
            result = engine.max_hit(3, budget=0.5, method=method)
            assert result.total_cost <= 0.5 + 1e-9


class TestMaxSense:
    """The camera example convention: higher utility is better."""

    @pytest.fixture
    def max_engine(self, rng):
        dataset = Dataset(rng.random((15, 3)), sense="max")
        queries = QuerySet(rng.random((25, 3)), ks=rng.integers(1, 4, 25))
        return ImprovementQueryEngine(dataset, queries)

    def test_strategy_increases_utility(self, max_engine):
        target = min(range(15), key=max_engine.hits)
        result = max_engine.min_cost(target, tau=8)
        if result.satisfied and not result.strategy.is_zero():
            # In max-sense, improving means *raising* weighted attribute
            # values: the strategy must increase the target's score on
            # the queries it newly hits.
            new_point = result.improved_point(max_engine.dataset.point(target))
            gained = 0
            for j in range(25):
                weights, __ = max_engine.queries.query(j)
                gained += float(weights @ new_point) > float(
                    weights @ max_engine.dataset.point(target)
                )
            assert gained > 0

    def test_hits_after_verified_externally(self, max_engine):
        target = 4
        result = max_engine.min_cost(target, tau=10)
        improved = max_engine.dataset.improved(target, result.strategy.vector)
        hits = 0
        for j in range(25):
            weights, k = max_engine.queries.query(j)
            if target in top_k(improved.matrix, weights, k):
                hits += 1
        assert hits == result.hits_after

    def test_asymmetric_cost_flipped_correctly(self, rng):
        # In max-sense, "raising attribute 0 is expensive" must stay
        # expensive after internal conversion.
        dataset = Dataset(rng.random((10, 2)), sense="max")
        queries = QuerySet(rng.random((10, 2)), ks=2)
        engine = ImprovementQueryEngine(dataset, queries)
        pricey_up = AsymmetricLinearCost(2, up=[100.0, 100.0], down=[0.01, 0.01])
        cheap_up = AsymmetricLinearCost(2, up=[0.01, 0.01], down=[100.0, 100.0])
        target = min(range(10), key=engine.hits)
        expensive = engine.min_cost(target, tau=5, cost=pricey_up)
        cheap = engine.min_cost(target, tau=5, cost=cheap_up)
        if expensive.satisfied and cheap.satisfied:
            # Improving in max-sense means increasing values, which the
            # first pricing makes costly and the second nearly free.
            assert cheap.total_cost < expensive.total_cost


class TestMaintenance:
    def test_add_remove_query_keeps_consistency(self, engine, rng):
        before = engine.hits(0)
        qid = engine.add_query(rng.random(3), 2)
        engine.index.validate()
        after = engine.hits(0)
        assert after in (before, before + 1)
        engine.remove_query(qid)
        engine.index.validate()
        assert engine.hits(0) == before

    def test_add_remove_object_keeps_consistency(self, engine, rng):
        before = engine.hits(0)
        oid = engine.add_object(rng.random(3))
        engine.index.validate()
        engine.remove_object(oid)
        engine.index.validate()
        assert engine.hits(0) == before

    def test_updates_invalidate_caches(self, engine, rng):
        engine.hits(0)
        assert engine.evaluator._target_cache
        engine.add_query(rng.random(3), 1)
        # Epoch-based invalidation is lazy: the mutation advances the
        # index epoch, and the next read drops the stale cache.
        assert engine.evaluator._epoch != engine.index.epoch
        engine.hits(0)
        assert engine.evaluator._epoch == engine.index.epoch


class TestMultiTargetFacade:
    def test_min_cost_multi(self, engine):
        result = engine.min_cost_multi([0, 9], tau=12)
        assert result.satisfied
        assert result.hits_after >= 12

    def test_max_hit_multi(self, engine):
        result = engine.max_hit_multi([0, 9], budget=0.6)
        assert result.total_cost <= 0.6 + 1e-9

    def test_multi_respects_spaces(self, engine):
        space = StrategySpace(3, lower=np.full(3, -0.01), upper=np.full(3, 0.01))
        result = engine.max_hit_multi([0, 9], budget=2.0, spaces={0: space, 9: space})
        assert space.contains(result.strategies[0].vector)
        assert space.contains(result.strategies[9].vector)

    def test_default_cost_is_euclidean(self, engine):
        result = engine.min_cost(0, tau=5)
        manual = engine.min_cost(0, tau=5, cost=euclidean_cost(3))
        assert result.total_cost == pytest.approx(manual.total_cost)
