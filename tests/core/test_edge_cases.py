"""Edge cases and failure injection across the core modules."""

import numpy as np
import pytest

import repro.core.ese as ese_module
from repro.core.cost import euclidean_cost
from repro.core.engine import ImprovementQueryEngine
from repro.core.ese import StrategyEvaluator
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex, relevant_pairs
from repro.errors import IndexCorruptionError, ValidationError


class TestChunkedEvaluation:
    def test_tiny_chunk_budget_same_results(self, rng, monkeypatch):
        """Chunking the candidate batch must not change any count."""
        dataset = Dataset(rng.random((12, 3)))
        queries = QuerySet(rng.random((25, 3)), ks=2)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        positions = dataset.matrix[0] + rng.normal(scale=0.2, size=(9, 3))
        expected = evaluator.evaluate_many(0, positions).tolist()
        monkeypatch.setattr(ese_module, "_CHUNK_BUDGET", 10)  # force many chunks
        fresh = StrategyEvaluator(SubdomainIndex(dataset, queries))
        assert fresh.evaluate_many(0, positions).tolist() == expected


class TestRelevantPairs:
    def test_margin_zero_minimal_set(self, rng):
        dataset = Dataset(rng.random((30, 2)))
        queries = QuerySet(rng.random((10, 2)), ks=1)
        tight = relevant_pairs(dataset, queries, margin=0)
        loose = relevant_pairs(dataset, queries, margin=5)
        assert set(tight) <= set(loose)

    def test_negative_margin_rejected(self, rng):
        dataset = Dataset(rng.random((5, 2)))
        queries = QuerySet(rng.random((3, 2)), ks=1)
        with pytest.raises(ValidationError):
            relevant_pairs(dataset, queries, margin=-1)


class TestDegenerateWorkloads:
    def test_single_object(self, rng):
        """One object hits every query trivially (k >= 1)."""
        dataset = Dataset(rng.random((1, 2)))
        queries = QuerySet(rng.random((5, 2)), ks=1)
        index = SubdomainIndex(dataset, queries)
        assert index.num_hyperplanes == 0
        assert index.hits(0) == 5

    def test_single_query(self, rng):
        dataset = Dataset(rng.random((10, 2)))
        queries = QuerySet(rng.random((1, 2)), ks=3)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        result = min_cost_iq(evaluator, 0, 1, euclidean_cost(2))
        assert result.satisfied

    def test_all_identical_objects(self, rng):
        """Every object ties everywhere: ranks resolve by id."""
        dataset = Dataset(np.tile(rng.random(2), (6, 1)))
        queries = QuerySet(rng.random((8, 2)), ks=2)
        index = SubdomainIndex(dataset, queries)
        assert index.num_hyperplanes == 0
        assert index.hits(0) == 8 and index.hits(1) == 8
        assert index.hits(2) == 0  # ids 0 and 1 take the two slots

    def test_zero_weight_query(self, rng):
        """An all-zero query scores everything 0; ids break the tie and
        no strategy can change its result."""
        dataset = Dataset(rng.random((5, 2)))
        queries = QuerySet(np.zeros((1, 2)), ks=1)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        assert evaluator.hits(0) == 1  # id 0 wins the tie
        assert evaluator.hits(3) == 0
        result = min_cost_iq(evaluator, 3, 1, euclidean_cost(2))
        assert not result.satisfied  # provably unreachable

    def test_k_larger_than_n(self, rng):
        dataset = Dataset(rng.random((3, 2)))
        queries = QuerySet(rng.random((4, 2)), ks=10)
        index = SubdomainIndex(dataset, queries)
        for t in range(3):
            assert index.hits(t) == 4


class TestFailureInjection:
    def test_rtree_corruption_detected(self, rng):
        index = SubdomainIndex(
            Dataset(rng.random((5, 2))), QuerySet(rng.random((10, 2)), ks=1)
        )
        # Sabotage: drop an R-tree entry behind the index's back.
        rect, payload = index.rtree.items()[0]
        index.rtree.delete(rect, payload)
        with pytest.raises(ValidationError):
            index.validate()

    def test_partition_corruption_detected(self, rng):
        index = SubdomainIndex(
            Dataset(rng.random((5, 2))), QuerySet(rng.random((10, 2)), ks=1)
        )
        # Sabotage: drop one query from a membership list so the cells
        # no longer partition the workload.
        victim = index.subdomains[0]
        victim.query_ids = victim.query_ids[:-1]
        with pytest.raises(ValidationError):
            index.validate()

    def test_parent_pointer_corruption_detected(self, rng):
        from repro.index.rtree import RTree

        tree = RTree(dim=2, max_entries=4)
        for i, p in enumerate(rng.random((50, 2))):
            tree.insert_point(p, i)
        # Break a parent pointer in the first internal child.
        root = tree._root
        if not root.leaf:
            root.entries[0][1].parent = None
            with pytest.raises(IndexCorruptionError):
                tree.validate()


class TestEngineExhaustiveDispatch:
    def test_exhaustive_method_through_engine(self, rng):
        dataset = Dataset(rng.random((8, 2)))
        queries = QuerySet(rng.random((6, 2)), ks=2)
        engine = ImprovementQueryEngine(dataset, queries)
        exact = engine.min_cost(0, tau=3, method="exhaustive")
        heuristic = engine.min_cost(0, tau=3)
        assert exact.satisfied
        assert exact.total_cost <= heuristic.total_cost + 1e-6
        exact_mh = engine.max_hit(0, budget=0.4, method="exhaustive")
        assert exact_mh.total_cost <= 0.4 + 1e-9
