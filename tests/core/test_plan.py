"""Planner, solver registry, and epoch-invalidation tests."""

import numpy as np
import pytest

from repro.core import updates
from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.plan import PLAN_FIELDS, ExecutionPlan
from repro.core.queries import QuerySet
from repro.core.solvers import (
    _REGISTRY,
    SolverBase,
    get_solver,
    register_solver,
    registered_solvers,
    solver_function_names,
)
from repro.errors import ValidationError


@pytest.fixture
def engine(small_market):
    objects, queries, ks = small_market
    return ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))


class TestExplain:
    def test_returns_plan_without_executing(self, engine):
        before = engine.evaluator.full_evaluations
        plan = engine.explain(0, tau=5)
        assert isinstance(plan, ExecutionPlan)
        assert engine.evaluator.full_evaluations == before

    def test_plan_fields(self, engine):
        plan = engine.explain(3, tau=7, method="rta")
        payload = plan.to_dict()
        assert tuple(payload) == PLAN_FIELDS
        assert payload["kind"] == "min_cost"
        assert payload["solver"] == "rta"
        assert payload["evaluator"] == "rta"
        assert payload["target"] == 3
        assert payload["goal"] == 7
        assert payload["sense"] == "min"
        assert payload["index_mode"] == "exact"
        assert payload["num_subdomains"] == engine.index.num_subdomains
        assert payload["epoch"] == engine.index.epoch
        assert payload["cost"] == "L2Cost(dim=3)"
        assert payload["space"] == "unconstrained"

    def test_budget_selects_max_hit(self, engine):
        plan = engine.explain(0, budget=0.5)
        assert plan.kind == "max_hit"
        assert plan.goal == 0.5

    def test_exactly_one_goal_required(self, engine):
        with pytest.raises(ValidationError, match="exactly one"):
            engine.explain(0)
        with pytest.raises(ValidationError, match="exactly one"):
            engine.explain(0, tau=5, budget=0.5)

    def test_matches_executed_call(self, engine):
        # An executed call runs exactly the plan explain reports: same
        # args produce the same plan fields before and after execution.
        # index_memory is a live snapshot and may grow as execution
        # evaluates ranking prefixes lazily; everything else is stable.
        plan_before = engine.explain(0, tau=5, method="greedy")
        engine.min_cost(0, tau=5, method="greedy")
        plan_after = engine.explain(0, tau=5, method="greedy")
        before, after = plan_before.to_dict(), plan_after.to_dict()
        assert after.pop("index_memory") >= before.pop("index_memory")
        assert before == after

    def test_replanning_after_mutation_moves_epoch(self, engine, rng):
        old = engine.explain(0, tau=5)
        engine.add_query(rng.random(3), 2)
        new = engine.explain(0, tau=5)
        assert new.epoch > old.epoch

    def test_plan_is_frozen(self, engine):
        plan = engine.explain(0, tau=5)
        with pytest.raises(AttributeError):
            plan.kind = "max_hit"

    def test_render_lists_every_field(self, engine):
        text = engine.explain(0, tau=5).render()
        for name in PLAN_FIELDS:
            assert name in text

    def test_unknown_target_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.explain(10_000, tau=5)


class TestSolverRegistry:
    def test_paper_schemes_registered(self):
        assert set(registered_solvers()) >= {
            "efficient", "rta", "greedy", "random", "exhaustive"
        }

    def test_unknown_method_lists_registered_names(self, engine):
        with pytest.raises(ValidationError) as excinfo:
            engine.min_cost(0, tau=5, method="quantum")
        message = str(excinfo.value)
        for name in registered_solvers():
            assert name in message

    def test_every_scheme_resolves_and_runs(self, engine):
        for name in ("efficient", "rta", "greedy", "random"):
            result = engine.min_cost(0, tau=5, method=name)
            assert result.hits_after >= 5, name
            assert engine.explain(0, tau=5, method=name).solver_name == name

    def test_solver_function_names_cover_wrapped_schemes(self):
        names = solver_function_names()
        assert {"min_cost_iq", "max_hit_iq", "greedy_min_cost_iq",
                "random_max_hit_iq", "exhaustive_min_cost"} <= names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            @register_solver
            class Duplicate(SolverBase):
                name = "efficient"

    def test_incomplete_solver_rejected(self):
        with pytest.raises(ValidationError, match="non-empty name"):
            @register_solver
            class Nameless(SolverBase):
                pass

    def test_third_party_solver_plugs_in(self, engine):
        @register_solver
        class LazySolver(SolverBase):
            name = "lazy"
            candidate_method = "delegation"
            notes = ("delegates to efficient",)

            def min_cost(self, evaluator, target, tau, cost, space=None, **kwargs):
                return get_solver("efficient").min_cost(
                    evaluator, target, tau, cost, space, **kwargs
                )

        try:
            assert "lazy" in registered_solvers()
            result = engine.min_cost(0, tau=5, method="lazy")
            assert result.hits_after >= 5
            plan = engine.explain(0, tau=5, method="lazy")
            assert plan.solver_name == "lazy"
            assert plan.candidate_method == "delegation"
            assert "delegates to efficient" in plan.notes
        finally:
            del _REGISTRY["lazy"]

    def test_run_rejects_unknown_kind(self, engine):
        with pytest.raises(ValidationError, match="kind"):
            get_solver("efficient").run(
                "median", engine.evaluator, 0, 5.0, None
            )


class TestEpochBus:
    """Direct index mutation (bypassing the engine) must never serve
    stale results — the acceptance scenario of the epoch bus."""

    def test_direct_add_query_reflected_in_hits(self, engine, rng):
        engine.hits(0)  # populate the threshold cache
        weights = rng.random(3)
        updates.add_query(engine.index, weights, 1)
        fresh = ImprovementQueryEngine(engine.dataset, engine.queries)
        assert engine.hits(0) == fresh.hits(0)

    def test_direct_add_query_reflected_in_rta_min_cost(self, engine, rng):
        warm = engine.min_cost(0, tau=5, method="rta")  # build the RTA snapshot
        assert warm.satisfied
        updates.add_query(engine.index, rng.random(3), 2)
        stale = engine.min_cost(0, tau=engine.queries.m, method="rta")
        fresh = ImprovementQueryEngine(engine.dataset, engine.queries).min_cost(
            0, tau=engine.queries.m, method="rta"
        )
        assert stale.hits_after == fresh.hits_after
        assert stale.total_cost == pytest.approx(fresh.total_cost)

    def test_direct_remove_object_reflected(self, engine):
        engine.hits(1)
        updates.remove_object(engine.index, 0)
        fresh = ImprovementQueryEngine(engine.dataset, engine.queries)
        assert engine.hits(1) == fresh.hits(1)

    def test_every_mutation_bumps_epoch(self, engine, rng):
        epochs = [engine.index.epoch]
        updates.add_query(engine.index, rng.random(3), 2)
        epochs.append(engine.index.epoch)
        updates.remove_query(engine.index, engine.queries.m - 1)
        epochs.append(engine.index.epoch)
        updates.add_object(engine.index, rng.random(3))
        epochs.append(engine.index.epoch)
        updates.remove_object(engine.index, engine.dataset.n - 1)
        epochs.append(engine.index.epoch)
        assert epochs == sorted(set(epochs)), "epoch must strictly increase"

    def test_engine_has_no_push_invalidation(self, engine):
        # The refactor removed the engine's manual cache invalidation;
        # correctness rests on the epoch comparison alone.
        assert not hasattr(engine, "_invalidate")
