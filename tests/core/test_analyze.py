"""EXPLAIN ANALYZE at the engine level: parity, stats, feedback planning."""

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.plan import ANALYZE_FIELDS, PLAN_FIELDS, ExecutedPlan, ExecutionPlan
from repro.core.queries import QuerySet
from repro.errors import ValidationError
from repro.observe import configure_store, default_store, workload_fingerprint


@pytest.fixture(autouse=True)
def _fresh_store():
    """Each test starts from a cold, memory-only process store."""
    configure_store(None)
    yield
    configure_store(None)


@pytest.fixture
def engine(rng):
    dataset = Dataset(rng.random((18, 3)))
    queries = QuerySet(rng.random((30, 3)), ks=rng.integers(1, 5, 30))
    return ImprovementQueryEngine(dataset, queries)


def assert_same_result(plain, analyzed):
    for attr in ("target", "hits_before", "hits_after", "total_cost", "satisfied"):
        assert getattr(plain, attr) == getattr(analyzed, attr), attr
    assert np.array_equal(plain.strategy.vector, analyzed.strategy.vector)


class TestParity:
    def test_min_cost_byte_identical(self, engine):
        plain = engine.min_cost(0, tau=10)
        analyzed, executed = engine.analyze(0, tau=10)
        assert_same_result(plain, analyzed)
        assert isinstance(executed, ExecutedPlan)

    def test_max_hit_byte_identical(self, engine):
        plain = engine.max_hit(3, budget=0.4)
        analyzed, executed = engine.analyze(3, budget=0.4)
        assert_same_result(plain, analyzed)
        assert executed.kind == "max_hit"

    def test_every_registered_method_parity(self, engine):
        for method in ("efficient", "rta", "greedy"):
            plain = engine.min_cost(2, tau=8, method=method)
            analyzed, executed = engine.analyze(2, tau=8, method=method)
            assert_same_result(plain, analyzed)
            assert executed.solver_name == method

    def test_multi_target_byte_identical(self, engine):
        targets = [0, 5, 9]
        plain = engine.min_cost_multi(targets, tau=8)
        analyzed, plans = engine.analyze_multi(targets, tau=8)
        for attr in ("hits_before", "hits_after", "total_cost", "satisfied"):
            assert getattr(plain, attr) == getattr(analyzed, attr), attr
        for target in targets:
            assert np.array_equal(
                plain.strategies[target].vector, analyzed.strategies[target].vector
            )
        assert [plan.target for plan in plans] == targets

    def test_needs_exactly_one_goal(self, engine):
        with pytest.raises(ValidationError):
            engine.analyze(0)
        with pytest.raises(ValidationError):
            engine.analyze(0, tau=5, budget=0.5)
        with pytest.raises(ValidationError):
            engine.analyze_multi([0, 1])


class TestExecutedPlan:
    def test_observations_filled(self, engine):
        _, executed = engine.analyze(0, tau=10)
        assert executed.total_seconds > 0.0
        assert executed.solve_seconds > 0.0
        assert executed.plan_seconds > 0.0
        assert executed.evaluations > 0
        assert executed.fingerprint == workload_fingerprint(engine.index, "min_cost")

    def test_extends_the_plain_plan(self, engine):
        plan = engine.explain(0, tau=10)
        _, executed = engine.analyze(0, tau=10)
        for name in ("kind", "target", "goal", "sense", "epoch", "kernel_backend"):
            assert getattr(executed, name) == getattr(plan, name), name

    def test_to_dict_appends_analyze_fields_in_order(self, engine):
        _, executed = engine.analyze(0, tau=10)
        assert tuple(executed.to_dict()) == PLAN_FIELDS + ANALYZE_FIELDS

    def test_render_includes_timings(self, engine):
        _, executed = engine.analyze(0, tau=10)
        text = executed.render()
        assert "total_seconds" in text
        assert "candidates_generated" in text

    def test_multi_plans_share_one_runs_observations(self, engine):
        _, plans = engine.analyze_multi([0, 5], tau=8)
        assert plans[0].total_seconds == plans[1].total_seconds
        assert plans[0].evaluations == plans[1].evaluations

    def test_analyzed_runs_are_recorded(self, engine):
        _, executed = engine.analyze(0, tau=10)
        samples = default_store().samples(executed.fingerprint)
        assert executed.solver_name in samples
        assert len(samples[executed.solver_name]) == 1


class TestFeedbackPlanning:
    def test_cold_auto_behaves_like_static_default_and_says_so(self, engine):
        plan = engine.explain(0, tau=10, method="auto")
        assert plan.solver_name == "efficient"
        assert any("no recorded runs" in note for note in plan.notes)

    def test_auto_choice_cites_recorded_stat(self, engine):
        engine.analyze(0, tau=10, method="rta")
        plan = engine.explain(0, tau=10, method="auto")
        assert plan.solver_name == "rta"
        cited = [note for note in plan.notes if note.startswith("auto method=rta")]
        assert cited and "median" in cited[0]
        assert workload_fingerprint(engine.index, "min_cost") in cited[0]

    def test_auto_executes_the_cited_method(self, engine):
        engine.analyze(0, tau=10, method="greedy")
        result = engine.min_cost(0, tau=10, method="auto")
        reference = engine.min_cost(0, tau=10, method="greedy")
        assert_same_result(reference, result)

    def test_fingerprints_keep_kinds_apart(self, engine):
        engine.analyze(0, tau=10, method="rta")  # min_cost evidence only
        plan = engine.explain(0, budget=0.4, method="auto")
        assert plan.solver_name == "efficient"
        assert any("no recorded runs" in note for note in plan.notes)


class TestMultiTargetValidation:
    def test_invalid_id_fails_before_any_work(self, engine):
        with pytest.raises(ValidationError, match="out of range"):
            engine.min_cost_multi([0, 99], tau=8)
        with pytest.raises(ValidationError, match="out of range"):
            engine.max_hit_multi([-1, 2], budget=0.5)

    def test_empty_targets_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.min_cost_multi([], tau=8)

    def test_explain_multi_validates_identically(self, engine):
        with pytest.raises(ValidationError, match="out of range"):
            engine.explain_multi([0, 99], tau=8)

    def test_explain_multi_plans_match_execution(self, engine):
        targets = [0, 5]
        plans = engine.explain_multi(targets, tau=8)
        assert all(isinstance(plan, ExecutionPlan) for plan in plans)
        assert [plan.target for plan in plans] == targets
        assert {plan.kind for plan in plans} == {"min_cost"}
        assert any("joint greedy loop" in note for plan in plans for note in plan.notes)


class TestGoalRendering:
    def test_min_cost_integral_tau_renders_as_int(self, engine):
        plan = engine.explain(0, tau=8)
        assert dict(plan.rows())["goal"] == "8"

    def test_max_hit_integral_budget_keeps_float(self, engine):
        plan = engine.explain(0, budget=2.0)
        assert dict(plan.rows())["goal"] == "2.0"

    def test_max_hit_fractional_budget(self, engine):
        plan = engine.explain(0, budget=0.4)
        assert dict(plan.rows())["goal"] == "0.4"

    def test_to_dict_goal_untouched(self, engine):
        plan = engine.explain(0, budget=2.0)
        assert plan.to_dict()["goal"] == 2.0
        assert isinstance(plan.to_dict()["goal"], float)
