import numpy as np
import pytest

from repro.core.queries import QuerySet
from repro.errors import ValidationError


class TestConstruction:
    def test_scalar_k_broadcasts(self, rng):
        qs = QuerySet(rng.random((5, 3)), ks=7)
        assert qs.ks.tolist() == [7] * 5
        assert qs.max_k == 7

    def test_per_query_k(self, rng):
        qs = QuerySet(rng.random((3, 2)), ks=[1, 5, 2])
        assert qs.max_k == 5
        weights, k = qs.query(1)
        assert k == 5 and weights.shape == (2,)

    def test_normalization_check(self):
        with pytest.raises(ValidationError):
            QuerySet(np.array([[1.5, 0.2]]), ks=1)
        # Explicitly unnormalized workloads are allowed.
        qs = QuerySet(np.array([[-3.0, 2.0]]), ks=1, normalized=False)
        assert qs.m == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            QuerySet(np.ones(3), ks=1)
        with pytest.raises(ValidationError):
            QuerySet(np.array([[np.inf, 0.0]]), ks=1, normalized=False)
        with pytest.raises(ValidationError):
            QuerySet(np.ones((2, 2)) * 0.5, ks=0)

    def test_read_only_views(self, rng):
        qs = QuerySet(rng.random((4, 2)), ks=2)
        with pytest.raises(ValueError):
            qs.weights[0, 0] = 0.1
        with pytest.raises(ValueError):
            qs.ks[0] = 3


class TestMutation:
    def test_with_query(self, rng):
        qs = QuerySet(rng.random((3, 2)), ks=2)
        bigger, qid = qs.with_query(np.array([0.1, 0.9]), 4)
        assert qid == 3 and bigger.m == 4 and qs.m == 3
        weights, k = bigger.query(3)
        assert k == 4 and np.allclose(weights, [0.1, 0.9])

    def test_without_query_shifts(self, rng):
        raw = rng.random((4, 2))
        qs = QuerySet(raw, ks=[1, 2, 3, 4])
        smaller = qs.without_query(1)
        assert smaller.m == 3
        __, k = smaller.query(1)
        assert k == 3  # old query 2 shifted down

    def test_subset(self, rng):
        qs = QuerySet(rng.random((5, 2)), ks=[1, 2, 3, 4, 5])
        sub = qs.subset([4, 0])
        assert sub.ks.tolist() == [5, 1]

    def test_bad_ids(self, rng):
        qs = QuerySet(rng.random((2, 2)), ks=1)
        with pytest.raises(ValidationError):
            qs.query(5)
        with pytest.raises(ValidationError):
            qs.without_query(-1)
