import numpy as np
import pytest

from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError


class TestStrategy:
    def test_apply_matches_paper_definition(self):
        # Figure 1: s = (5, 2, -50) turns p1 = (10, 2, 250) into (15, 4, 200).
        s = Strategy(np.array([5.0, 2.0, -50.0]))
        assert s.apply_to(np.array([10.0, 2.0, 250.0])).tolist() == [15.0, 4.0, 200.0]

    def test_zero_strategy(self):
        s = Strategy.zero(3)
        assert s.is_zero()
        assert s.cost == 0.0

    def test_immutability(self):
        s = Strategy(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            s.vector[0] = 99.0

    def test_compose_adds_vectors_and_costs(self):
        a = Strategy(np.array([1.0, 0.0]), cost=2.0)
        b = Strategy(np.array([0.0, 3.0]), cost=1.5)
        c = a.compose(b)
        assert c.vector.tolist() == [1.0, 3.0]
        assert c.cost == pytest.approx(3.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Strategy(np.array([[1.0]]))
        with pytest.raises(ValidationError):
            Strategy(np.array([np.inf]))
        with pytest.raises(ValidationError):
            Strategy(np.array([1.0])).apply_to(np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            Strategy(np.array([1.0])).compose(Strategy(np.array([1.0, 2.0])))


class TestStrategySpace:
    def test_unconstrained_contains_anything(self, rng):
        space = StrategySpace.unconstrained(4)
        for __ in range(5):
            assert space.contains(rng.normal(size=4) * 1e6)

    def test_bounds_enforced(self):
        space = StrategySpace(2, lower=np.array([-1.0, 0.0]), upper=np.array([1.0, 2.0]))
        assert space.contains(np.array([0.5, 1.0]))
        assert not space.contains(np.array([2.0, 1.0]))
        assert not space.contains(np.array([0.0, -0.5]))

    def test_zero_must_be_valid(self):
        with pytest.raises(ValidationError):
            StrategySpace(1, lower=np.array([1.0]), upper=np.array([2.0]))
        with pytest.raises(ValidationError):
            StrategySpace(1, lower=np.array([-2.0]), upper=np.array([-1.0]))

    def test_from_value_range(self):
        # Camera resolution in [8, 20], currently 10: s_res in [-2, 10].
        space = StrategySpace.from_value_range(
            np.array([10.0]), np.array([8.0]), np.array([20.0])
        )
        assert space.lower.tolist() == [-2.0]
        assert space.upper.tolist() == [10.0]

    def test_from_value_range_rejects_out_of_range_object(self):
        with pytest.raises(ValidationError):
            StrategySpace.from_value_range(np.array([30.0]), np.array([0.0]), np.array([20.0]))

    def test_freeze(self):
        space = StrategySpace.unconstrained(3).freeze([1])
        assert space.contains(np.array([5.0, 0.0, -3.0]))
        assert not space.contains(np.array([5.0, 0.1, -3.0]))

    def test_freeze_invalid_index(self):
        with pytest.raises(ValidationError):
            StrategySpace.unconstrained(2).freeze([5])

    def test_clip(self):
        space = StrategySpace(2, lower=np.array([-1.0, -1.0]), upper=np.array([1.0, 1.0]))
        assert space.clip(np.array([5.0, -5.0])).tolist() == [1.0, -1.0]

    def test_shifted_shrinks_room(self):
        space = StrategySpace(1, lower=np.array([-2.0]), upper=np.array([4.0]))
        rest = space.shifted(np.array([3.0]))
        assert rest.upper.tolist() == [1.0]
        assert rest.lower.tolist() == [-5.0]
        # Zero remains valid even if the whole budget was consumed.
        consumed = space.shifted(np.array([4.0]))
        assert consumed.contains(np.zeros(1))
