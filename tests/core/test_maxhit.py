import numpy as np
import pytest

from repro.core.cost import euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.maxhit import max_hit_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError


@pytest.fixture
def world(rng):
    dataset = Dataset(rng.random((20, 3)))
    queries = QuerySet(rng.random((40, 3)), ks=rng.integers(1, 5, 40))
    index = SubdomainIndex(dataset, queries)
    return dataset, queries, StrategyEvaluator(index)


class TestBudgetRespected:
    def test_total_cost_within_budget(self, world):
        __, __, evaluator = world
        for budget in (0.1, 0.5, 2.0):
            result = max_hit_iq(evaluator, target=0, budget=budget, cost=euclidean_cost(3))
            assert result.total_cost <= budget + 1e-9
            assert result.satisfied

    def test_zero_budget_zero_strategy(self, world):
        __, __, evaluator = world
        result = max_hit_iq(evaluator, target=0, budget=0.0, cost=euclidean_cost(3))
        assert result.strategy.is_zero()
        assert result.hits_after == result.hits_before

    def test_reported_hits_match_reevaluation(self, world):
        __, __, evaluator = world
        result = max_hit_iq(evaluator, target=4, budget=1.0, cost=euclidean_cost(3))
        assert result.hits_after == evaluator.evaluate(4, result.strategy.vector)

    def test_hits_monotone_in_budget(self, world):
        __, __, evaluator = world
        cost = euclidean_cost(3)
        hits = [
            max_hit_iq(evaluator, target=1, budget=b, cost=cost).hits_after
            for b in (0.05, 0.2, 0.8, 3.0)
        ]
        assert all(a <= b for a, b in zip(hits, hits[1:])), hits

    def test_big_budget_hits_everything(self, world):
        __, queries, evaluator = world
        result = max_hit_iq(evaluator, target=2, budget=1e6, cost=euclidean_cost(3))
        assert result.hits_after == queries.m

    def test_hits_never_decrease(self, world):
        __, __, evaluator = world
        for target in range(0, 20, 4):
            result = max_hit_iq(evaluator, target=target, budget=0.7, cost=euclidean_cost(3))
            assert result.hits_after >= result.hits_before


class TestFillPass:
    def test_budget_boundary_uses_fill(self, world):
        """A budget slightly below the next candidate's cost should still
        squeeze in any cheaper candidates (paper lines 13-17)."""
        __, __, evaluator = world
        cost = euclidean_cost(3)
        # Budget small enough that the best-ratio candidate often does
        # not fit, exercising the fill branch.
        result = max_hit_iq(evaluator, target=6, budget=0.02, cost=cost)
        assert result.total_cost <= 0.02 + 1e-9


class TestConstraints:
    def test_space_respected(self, world):
        __, __, evaluator = world
        space = StrategySpace(3, lower=np.full(3, -0.1), upper=np.full(3, 0.1))
        result = max_hit_iq(evaluator, target=0, budget=5.0, cost=euclidean_cost(3), space=space)
        assert space.contains(result.strategy.vector)

    def test_negative_budget_raises(self, world):
        __, __, evaluator = world
        with pytest.raises(ValidationError):
            max_hit_iq(evaluator, target=0, budget=-1.0, cost=euclidean_cost(3))

    def test_bad_cost_dim(self, world):
        __, __, evaluator = world
        with pytest.raises(ValidationError):
            max_hit_iq(evaluator, target=0, budget=1.0, cost=euclidean_cost(2))


class TestDualityWithMinCost:
    def test_binary_search_reduction(self, world):
        """The paper's reduction (§4.2.2): binary searching the budget of
        Max-Hit brackets the Min-Cost optimum for the same tau."""
        from repro.core.mincost import min_cost_iq

        __, __, evaluator = world
        cost = euclidean_cost(3)
        tau = 15
        mc = min_cost_iq(evaluator, target=3, tau=tau, cost=cost)
        assert mc.satisfied
        # Max-hit with that budget must reach at least tau hits.
        mh = max_hit_iq(evaluator, target=3, budget=mc.total_cost + 1e-6, cost=cost)
        assert mh.hits_after >= tau
