import numpy as np
import pytest

from repro.core import updates
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError


def build(rng, n=10, m=20, d=2):
    dataset = Dataset(rng.random((n, d)))
    queries = QuerySet(rng.random((m, d)), ks=rng.integers(1, 4, m))
    return SubdomainIndex(dataset, queries)


def rebuilt(index):
    """A from-scratch index over the same data, the ground truth."""
    return SubdomainIndex(index.dataset, index.queries, mode=index.mode, margin=index.margin)


def assert_equivalent(index, reference):
    """Same partition (as sets of query-id groups) and same hit counts."""
    ours = sorted(tuple(sorted(s.query_ids.tolist())) for s in index.subdomains)
    theirs = sorted(tuple(sorted(s.query_ids.tolist())) for s in reference.subdomains)
    assert ours == theirs
    for target in range(index.dataset.n):
        assert index.hits(target) == reference.hits(target)


class TestAddQuery:
    def test_add_matches_rebuild(self, rng):
        index = build(rng)
        for __ in range(5):
            qid = updates.add_query(index, rng.random(2), int(rng.integers(1, 4)))
            assert qid == index.queries.m - 1
        index.validate()
        assert_equivalent(index, rebuilt(index))

    def test_add_into_existing_subdomain_via_knn(self, rng):
        index = build(rng)
        # Insert a point nearly identical to an existing one: it must
        # land in the same subdomain.
        existing, __ = index.queries.query(3)
        before = index.num_subdomains
        updates.add_query(index, existing + 1e-9, 2)
        assert index.num_subdomains == before
        assert index.subdomain_of[-1] == index.subdomain_of[3]

    def test_add_creates_new_subdomain_when_needed(self, rng):
        dataset = Dataset(rng.random((6, 2)))
        queries = QuerySet(np.full((2, 2), 0.5), ks=1)  # one tight cluster
        index = SubdomainIndex(dataset, queries)
        before = index.num_subdomains
        # Far-away corner point very likely lands in a new cell.
        updates.add_query(index, np.array([0.999, 0.001]), 1)
        index.validate()
        assert index.num_subdomains >= before


class TestRemoveQuery:
    def test_remove_matches_rebuild(self, rng):
        index = build(rng)
        for qid in (15, 7, 0):
            updates.remove_query(index, qid)
            index.validate()
        assert_equivalent(index, rebuilt(index))

    def test_remove_last_member_drops_subdomain(self, rng):
        index = build(rng, m=5)
        # Remove queries until one subdomain disappears.
        while index.queries.m > 0:
            sizes_before = index.num_subdomains
            updates.remove_query(index, 0)
            index.validate()
            assert index.num_subdomains <= sizes_before
        assert index.num_subdomains == 0

    def test_roundtrip_add_remove(self, rng):
        index = build(rng)
        reference = rebuilt(index)
        qid = updates.add_query(index, rng.random(2), 2)
        updates.remove_query(index, qid)
        index.validate()
        assert_equivalent(index, reference)


class TestAddObject:
    def test_add_matches_rebuild(self, rng):
        index = build(rng)
        updates.add_object(index, rng.random(2))
        index.validate()
        assert index.dataset.n == 11
        assert_equivalent(index, rebuilt(index))

    def test_dominating_object_changes_hits(self, rng):
        index = build(rng)
        old_hits = [index.hits(t) for t in range(index.dataset.n)]
        # An object at the origin scores 0 everywhere: it enters every
        # top-k and can only push others out.
        oid = updates.add_object(index, np.zeros(2))
        assert index.hits(oid) == index.queries.m
        new_hits = [index.hits(t) for t in range(index.dataset.n - 1)]
        assert all(n <= o for n, o in zip(new_hits, old_hits))


class TestRemoveObject:
    def test_remove_matches_rebuild(self, rng):
        index = build(rng)
        updates.remove_object(index, 4)
        index.validate()
        assert index.dataset.n == 9
        assert_equivalent(index, rebuilt(index))

    def test_remove_merges_subdomains(self, rng):
        # Removing an object drops its hyperplanes; cells separated only
        # by them must merge (num_subdomains can only shrink or stay).
        index = build(rng, n=6, m=30)
        before = index.num_subdomains
        updates.remove_object(index, 2)
        index.validate()
        assert index.num_subdomains <= before

    def test_remove_invalid_id(self, rng):
        index = build(rng)
        with pytest.raises(ValidationError):
            updates.remove_object(index, 99)

    def test_object_roundtrip(self, rng):
        index = build(rng)
        reference = rebuilt(index)
        oid = updates.add_object(index, rng.random(2))
        updates.remove_object(index, oid)
        index.validate()
        assert_equivalent(index, reference)


class TestEvaluatorInvalidation:
    """Every mutation must invalidate subscribed evaluator caches."""

    def _spied_evaluator(self, index):
        from repro.core.ese import StrategyEvaluator

        evaluator = StrategyEvaluator(index)
        calls = []
        original = evaluator.invalidate

        def spy(target=None):
            calls.append(target)
            original(target)

        evaluator.invalidate = spy
        index.subscribe_mutations(evaluator.invalidate)
        return evaluator, calls

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda idx, rng: updates.add_query(idx, rng.random(2), 2),
            lambda idx, rng: updates.remove_query(idx, 0),
            lambda idx, rng: updates.add_object(idx, rng.random(2)),
            lambda idx, rng: updates.remove_object(idx, 0),
        ],
        ids=["add_query", "remove_query", "add_object", "remove_object"],
    )
    def test_every_mutation_invalidates(self, rng, mutate):
        index = build(rng)
        evaluator, calls = self._spied_evaluator(index)
        evaluator.thresholds(1)  # populate the cache
        mutate(index, rng)
        assert calls, "mutation did not notify the evaluator"
        assert not evaluator._target_cache

    def test_stale_cache_would_be_wrong(self, rng):
        # The behavioral reason for the hook: after adding an object the
        # cached thresholds are wrong, so hits computed from a pinned
        # stale cache must be allowed to differ from a fresh evaluator.
        from repro.core.ese import StrategyEvaluator

        index = build(rng, n=8, m=25)
        evaluator = StrategyEvaluator(index)
        before = {t: evaluator.hits(t) for t in range(4)}
        updates.add_object(index, np.zeros(2))  # dominates: enters every top-k
        fresh = StrategyEvaluator(rebuilt(index))
        after = {t: evaluator.hits(t) for t in range(4)}
        assert after == {t: fresh.hits(t) for t in range(4)}
        assert before != after  # the dominating object displaced someone

    def test_dead_subscriber_is_dropped(self, rng):
        from repro.core.ese import StrategyEvaluator

        index = build(rng)
        evaluator = StrategyEvaluator(index)
        index.subscribe_mutations(evaluator.invalidate)
        hooks_with_evaluator = len(index._mutation_hooks)
        del evaluator
        updates.add_query(index, rng.random(2), 2)  # must not crash
        assert len(index._mutation_hooks) < hooks_with_evaluator


class TestInterleaved:
    def test_mixed_update_sequence(self, rng):
        index = build(rng)
        updates.add_query(index, rng.random(2), 3)
        updates.add_object(index, rng.random(2))
        updates.remove_query(index, 5)
        updates.remove_object(index, 1)
        updates.add_query(index, rng.random(2), 1)
        index.validate()
        assert_equivalent(index, rebuilt(index))
