import numpy as np
import pytest

from repro.core.combinatorial import combinatorial_max_hit, combinatorial_min_cost
from repro.core.cost import L1Cost, euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError
from repro.topk.evaluate import top_k


@pytest.fixture
def world(rng):
    dataset = Dataset(rng.random((15, 3)))
    queries = QuerySet(rng.random((25, 3)), ks=rng.integers(1, 4, 25))
    index = SubdomainIndex(dataset, queries)
    return dataset, queries, index


def joint_hits(matrix, queries, targets, strategies=None):
    """Ground-truth union hit count after applying the strategies."""
    matrix = matrix.copy()
    if strategies:
        for t, s in strategies.items():
            matrix[t] = matrix[t] + s.vector
    count = 0
    for j in range(queries.m):
        weights, k = queries.query(j)
        result = set(top_k(matrix, weights, k))
        if result & set(targets):
            count += 1
    return count


class TestMinCostMulti:
    def test_reaches_tau_with_exact_accounting(self, world):
        dataset, queries, index = world
        targets = [0, 7]
        result = combinatorial_min_cost(index, targets, tau=12, costs=euclidean_cost(3))
        assert result.satisfied
        assert result.hits_after >= 12
        # Reported joint hits must match brute force on the improved data.
        assert result.hits_after == joint_hits(
            dataset.matrix, queries, targets, result.strategies
        )

    def test_union_counts_each_query_once(self, world):
        dataset, queries, index = world
        targets = [0, 1]
        result = combinatorial_min_cost(index, targets, tau=5, costs=euclidean_cost(3))
        assert result.hits_after <= queries.m

    def test_single_target_reduces_to_basic(self, world):
        """One target: the combinatorial variant solves the same problem."""
        dataset, queries, index = world
        evaluator = StrategyEvaluator(index)
        result = combinatorial_min_cost(index, [4], tau=8, costs=euclidean_cost(3))
        assert result.satisfied
        assert result.hits_after == evaluator.evaluate(4, result.strategies[4].vector)

    def test_per_target_costs(self, world):
        __, __, index = world
        costs = {0: euclidean_cost(3), 7: L1Cost(3)}
        result = combinatorial_min_cost(index, [0, 7], tau=8, costs=costs)
        assert result.satisfied

    def test_missing_cost_raises(self, world):
        __, __, index = world
        with pytest.raises(ValidationError):
            combinatorial_min_cost(index, [0, 7], tau=5, costs={0: euclidean_cost(3)})

    def test_duplicate_targets_raise(self, world):
        __, __, index = world
        with pytest.raises(ValidationError):
            combinatorial_min_cost(index, [0, 0], tau=5, costs=euclidean_cost(3))

    def test_bad_tau(self, world):
        __, __, index = world
        with pytest.raises(ValidationError):
            combinatorial_min_cost(index, [0], tau=0, costs=euclidean_cost(3))
        with pytest.raises(ValidationError):
            combinatorial_min_cost(index, [0], tau=26, costs=euclidean_cost(3))

    def test_cheaper_than_single_target(self, world):
        """Splitting the work across two targets can only help: the
        single-target solution is feasible for the pair."""
        dataset, queries, index = world
        single = combinatorial_min_cost(index, [2], tau=10, costs=euclidean_cost(3))
        pair = combinatorial_min_cost(index, [2, 11], tau=10, costs=euclidean_cost(3))
        if single.satisfied and pair.satisfied:
            assert pair.total_cost <= single.total_cost * 1.25 + 1e-9


class TestMaxHitMulti:
    def test_budget_respected(self, world):
        dataset, queries, index = world
        targets = [0, 5]
        for budget in (0.1, 0.5, 1.5):
            result = combinatorial_max_hit(index, targets, budget, costs=euclidean_cost(3))
            assert result.total_cost <= budget + 1e-9
            assert result.satisfied
            assert result.hits_after == joint_hits(
                dataset.matrix, queries, targets, result.strategies
            )

    def test_hits_monotone_in_budget(self, world):
        __, __, index = world
        hits = [
            combinatorial_max_hit(index, [3, 9], b, costs=euclidean_cost(3)).hits_after
            for b in (0.05, 0.3, 1.0)
        ]
        assert all(a <= b for a, b in zip(hits, hits[1:]))

    def test_spaces_respected(self, world):
        __, __, index = world
        spaces = {
            1: StrategySpace(3, lower=np.full(3, -0.05), upper=np.full(3, 0.05)),
            8: StrategySpace.unconstrained(3),
        }
        result = combinatorial_max_hit(
            index, [1, 8], budget=2.0, costs=euclidean_cost(3), spaces=spaces
        )
        assert spaces[1].contains(result.strategies[1].vector)

    def test_negative_budget_raises(self, world):
        __, __, index = world
        with pytest.raises(ValidationError):
            combinatorial_max_hit(index, [0], -1.0, costs=euclidean_cost(3))
