import numpy as np
import pytest

from repro.core.linearize import (
    GenericSpace,
    UtilityFamily,
    distance_family,
    function_term,
    monomial,
    polynomial_family,
)
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError
from repro.topk.evaluate import top_k


class TestMonomial:
    def test_evaluation(self, rng):
        term = monomial({0: 3.0})
        points = rng.random((5, 2))
        assert np.allclose(term.evaluate(points), points[:, 0] ** 3)

    def test_product_term(self, rng):
        term = monomial({1: 1.0, 2: 1.0})
        points = rng.random((5, 4))
        assert np.allclose(term.evaluate(points), points[:, 1] * points[:, 2])

    def test_auto_name(self):
        assert monomial({0: 3.0}).name == "x0^3"
        assert monomial({1: 1.0}).name == "x1"

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            monomial({})


class TestPolynomialFamily:
    """Paper Eq. 20-21: the cubic/product/square example."""

    @pytest.fixture
    def family(self):
        return polynomial_family([{0: 3.0}, {1: 1.0, 2: 1.0}, {3: 2.0}])

    def test_linearization_preserves_scores(self, family, rng):
        points = rng.random((10, 4))
        params = rng.random(3)

        def direct(p):
            return params[0] * p[0] ** 3 + params[1] * (p[1] * p[2]) + params[2] * p[3] ** 2

        linear = family.score(points, params)
        expected = [direct(p) for p in points]
        assert np.allclose(linear, expected)

    def test_linearized_topk_matches_direct(self, family, rng):
        """The whole point of §5.2: index the augmented space, get the
        same rankings as the non-linear utility."""
        points = rng.random((20, 4))
        augmented = family.augment(points)
        for __ in range(10):
            params = rng.random(3)
            weights = family.map_weights(params)
            direct_scores = family.score(points, params)
            direct_rank = np.argsort(direct_scores, kind="stable")[:5].tolist()
            assert top_k(augmented, weights, 5) == direct_rank

    def test_subdomain_index_over_augmented_space(self, family, rng):
        points = rng.random((10, 4))
        dataset = Dataset(family.augment(points))
        queries = QuerySet(
            np.vstack([family.map_weights(rng.random(3)) for __ in range(12)]),
            ks=2,
            normalized=False,
        )
        index = SubdomainIndex(dataset, queries)
        index.validate()
        assert index.hits(0) >= 0  # full pipeline runs on augmented data

    def test_invertibility_detection(self, family):
        assert not family.is_invertible()  # x1*x2 is bivariate
        univariate = polynomial_family([{0: 3.0}, {1: 2.0}])
        assert univariate.is_invertible()

    def test_invert_move_roundtrip(self, rng):
        family = polynomial_family([{0: 3.0}, {1: 2.0}])
        point = rng.random(2) + 0.5
        delta = rng.normal(scale=0.1, size=2)
        move = family.invert_move(point, delta)
        new_augmented = family.augment((point + move)[None, :])[0]
        old_augmented = family.augment(point[None, :])[0]
        assert np.allclose(new_augmented - old_augmented, delta, atol=1e-9)

    def test_invert_move_rejected_for_products(self, family, rng):
        with pytest.raises(ValidationError):
            family.invert_move(rng.random(4), rng.random(3))


class TestSqrtWeightTrick:
    """Paper Eq. 19: sqrt(w1 * price) = sqrt(w1) * sqrt(price)."""

    def test_car_utility(self, rng):
        # u(c) = sqrt(w1 * price) + w2 * capacity / mpg
        sqrt_price = function_term(
            "sqrt(price)", lambda p: np.sqrt(p[:, 0]), weight_map=np.sqrt
        )
        cap_over_mpg = monomial({2: 1.0, 1: -1.0}, name="capacity/mpg")
        family = UtilityFamily([sqrt_price, cap_over_mpg], name="car-u")
        cars = np.array(
            [[15000.0, 30.0, 4.0], [20000.0, 28.0, 6.0], [8000.0, 35.0, 2.0]]
        )
        for __ in range(5):
            w1, w2 = rng.random(2)
            direct = np.sqrt(w1 * cars[:, 0]) + w2 * cars[:, 2] / cars[:, 1]
            assert np.allclose(family.score(cars, [w1, w2]), direct)


class TestDistanceFamily:
    def test_ranking_matches_euclidean_distance(self, rng):
        """Eq. 22-25: the squared-distance linearization ranks like the
        true distance (the query-only constant cancels)."""
        family = distance_family(2)
        points = rng.random((15, 2))
        augmented = family.augment(points)
        for __ in range(10):
            location = rng.random(2)
            weights = family.map_weights(np.append(location, 0.0))
            distances = np.linalg.norm(points - location, axis=1)
            expected = np.argsort(distances, kind="stable")[:4].tolist()
            # Linear scores differ from squared distances by the constant
            # ||location||^2, which cannot change the order.
            assert top_k(augmented, weights, 4) == expected


class TestGenericSpace:
    """§5.3: heterogeneous utilities unified into one function space."""

    @pytest.fixture
    def generic(self):
        family_u = polynomial_family([{0: 1.0}, {1: 2.0}], name="u")
        family_v = polynomial_family([{1: 1.0}, {2: 1.0}], name="v")
        return GenericSpace([family_u, family_v])

    def test_total_terms_and_offsets(self, generic):
        assert generic.total_terms == 4
        assert generic.offsets == [0, 2]

    def test_query_weights_zero_other_family(self, generic):
        weights = generic.query_weights(1, [0.3, 0.7])
        assert weights.tolist() == [0.0, 0.0, 0.3, 0.7]

    def test_scores_match_per_family(self, generic, rng):
        points = rng.random((8, 3))
        augmented = generic.augment(points)
        params = rng.random(2)
        via_generic = augmented @ generic.query_weights(0, params)
        direct = generic.families[0].score(points, params)
        assert np.allclose(via_generic, direct)

    def test_query_set_builder(self, generic, rng):
        qs = generic.query_set(
            [(0, rng.random(2), 3), (1, rng.random(2), 1), (0, rng.random(2), 2)]
        )
        assert qs.m == 3 and qs.dim == 4
        assert qs.ks.tolist() == [3, 1, 2]

    def test_full_pipeline_heterogeneous(self, generic, rng):
        """End-to-end: heterogeneous workload -> index -> hits."""
        points = rng.random((12, 3))
        dataset = generic.augmented_dataset(points)
        qs = generic.query_set(
            [(i % 2, rng.random(2), int(rng.integers(1, 4))) for i in range(10)]
        )
        index = SubdomainIndex(dataset, qs)
        index.validate()
        total = sum(index.hits(t) for t in range(12))
        expected_total = sum(int(qs.ks[j]) for j in range(10))
        assert total == expected_total  # every query hits exactly k objects

    def test_bad_family_index(self, generic):
        with pytest.raises(ValidationError):
            generic.query_weights(5, [0.1, 0.2])

    def test_empty_families_raise(self):
        with pytest.raises(ValidationError):
            GenericSpace([])
        with pytest.raises(ValidationError):
            UtilityFamily([])
