import numpy as np
import pytest

from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex, find_subdomains, relevant_pairs
from repro.errors import ValidationError
from repro.topk.evaluate import kth_score, top_k


def build(rng, n=15, m=25, d=3, k_max=4, mode="exact"):
    dataset = Dataset(rng.random((n, d)))
    queries = QuerySet(rng.random((m, d)), ks=rng.integers(1, k_max + 1, m))
    return dataset, queries, SubdomainIndex(dataset, queries, mode=mode)


class TestConstruction:
    def test_partition_covers_all_queries(self, rng):
        __, queries, index = build(rng)
        index.validate()
        total = sum(sub.size for sub in index.subdomains)
        assert total == queries.m

    def test_exact_mode_hyperplane_count(self, rng):
        dataset, __, index = build(rng, n=8)
        assert index.num_hyperplanes == 8 * 7 // 2

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(ValidationError):
            SubdomainIndex(Dataset(rng.random((3, 2))), QuerySet(rng.random((3, 3)), ks=1))

    def test_invalid_mode(self, rng):
        with pytest.raises(ValidationError):
            SubdomainIndex(Dataset(rng.random((3, 2))), QuerySet(rng.random((3, 2)), ks=1), mode="bogus")

    def test_duplicate_objects_skip_degenerate_hyperplanes(self, rng):
        raw = rng.random((5, 2))
        raw[3] = raw[1]  # duplicate
        dataset = Dataset(raw)
        queries = QuerySet(rng.random((5, 2)), ks=1)
        index = SubdomainIndex(dataset, queries)
        assert index.num_hyperplanes == 5 * 4 // 2 - 1


class TestAgainstLiteralAlgorithm1:
    def test_fast_path_matches_bsp(self, rng):
        for __ in range(5):
            dataset, queries, index = build(rng, n=8, m=30, d=2)
            literal = find_subdomains(index.normals, queries.weights)
            fast = {sub.signature: sorted(sub.query_ids.tolist()) for sub in index.subdomains}
            literal = {key: sorted(val) for key, val in literal.items()}
            assert fast == literal

    def test_bsp_discards_empty_cells(self, rng):
        normals = rng.normal(size=(4, 2))
        points = rng.random((10, 2))
        cells = find_subdomains(normals, points)
        assert sum(len(v) for v in cells.values()) == 10
        assert all(v for v in cells.values())


class TestPartitionMethodSwitch:
    def test_methods_agree(self, rng):
        normals = rng.normal(size=(6, 3))
        points = rng.random((40, 3))
        literal = find_subdomains(normals, points, method="literal")
        vectorized = find_subdomains(normals, points, method="vectorized")
        assert literal == vectorized

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValidationError):
            find_subdomains(rng.normal(size=(2, 2)), rng.random((4, 2)), method="quantum")

    def test_index_partition_method_validated(self, rng):
        dataset = Dataset(rng.random((5, 2)))
        queries = QuerySet(rng.random((5, 2)), ks=1)
        with pytest.raises(ValidationError):
            SubdomainIndex(dataset, queries, partition_method="quantum")

    def test_index_builds_identically_either_way(self, rng):
        dataset = Dataset(rng.random((12, 3)))
        queries = QuerySet(rng.random((30, 3)), ks=rng.integers(1, 4, 30))
        literal = SubdomainIndex(dataset, queries, partition_method="literal")
        vectorized = SubdomainIndex(dataset, queries, partition_method="vectorized")
        assert literal.partition_method == "literal"
        ours = sorted((s.signature, s.query_ids.tolist()) for s in literal.subdomains)
        theirs = sorted((s.signature, s.query_ids.tolist()) for s in vectorized.subdomains)
        assert ours == theirs
        for target in range(dataset.n):
            assert literal.hits(target) == vectorized.hits(target)


class TestRankingInvariance:
    """The index's core claim: rankings are constant within a subdomain."""

    def test_same_subdomain_same_ranking(self, rng):
        dataset, queries, index = build(rng, n=12, m=40, d=2)
        for sub in index.subdomains:
            if sub.size < 2:
                continue
            rankings = set()
            for qid in sub.query_ids:
                weights, __ = queries.query(int(qid))
                rankings.add(tuple(top_k(dataset.matrix, weights, dataset.n)))
            assert len(rankings) == 1, "subdomain members must share the full ranking"

    def test_prefix_matches_direct_topk(self, rng):
        dataset, queries, index = build(rng, n=10, m=30)
        for sub in index.subdomains:
            prefix = index.prefix(sub.sid)
            weights, __ = queries.query(sub.representative)
            expected = top_k(dataset.matrix, weights, len(prefix))
            assert prefix.tolist() == expected

    def test_prefix_lazy_and_counted(self, rng):
        __, __, index = build(rng, n=8, m=20)
        assert index.representative_evaluations == 0
        index.prefix(0)
        index.prefix(0)  # cached
        assert index.representative_evaluations == 1


class TestKthOther:
    def test_matches_brute_force(self, rng):
        dataset, queries, index = build(rng, n=12, m=30)
        for target in (0, 5, 11):
            kth_ids, theta = index.kth_other(target)
            for j in range(queries.m):
                weights, k = queries.query(j)
                expected_score, expected_id = kth_score(
                    dataset.matrix, weights, k, exclude=target
                )
                assert kth_ids[j] == expected_id
                assert theta[j] == pytest.approx(expected_score)

    def test_hits_matches_brute_force(self, rng):
        dataset, queries, index = build(rng, n=12, m=30)
        for target in range(dataset.n):
            expected = 0
            for j in range(queries.m):
                weights, k = queries.query(j)
                if target in top_k(dataset.matrix, weights, k):
                    expected += 1
            assert index.hits(target) == expected

    def test_small_dataset_always_hit(self, rng):
        # With n=2 and k=5 > n-1, any object is in every top-5.
        dataset = Dataset(rng.random((2, 2)))
        queries = QuerySet(rng.random((6, 2)), ks=5)
        index = SubdomainIndex(dataset, queries)
        assert index.hits(0) == 6
        assert index.hits(1) == 6


class TestRelevantMode:
    def test_relevant_pairs_subset_of_all(self, rng):
        dataset, queries, __ = build(rng, n=20, m=15)
        pairs = relevant_pairs(dataset, queries, margin=2)
        assert len(pairs) <= 20 * 19 // 2
        assert all(a < b for a, b in pairs)

    def test_relevant_mode_hits_match_exact(self, rng):
        dataset = Dataset(rng.random((25, 3)))
        queries = QuerySet(rng.random((30, 3)), ks=rng.integers(1, 4, 30))
        exact = SubdomainIndex(dataset, queries, mode="exact")
        relevant = SubdomainIndex(dataset, queries, mode="relevant", margin=3)
        assert relevant.num_hyperplanes <= exact.num_hyperplanes
        for target in range(0, 25, 5):
            assert relevant.hits(target) == exact.hits(target)

    def test_relevant_mode_fewer_hyperplanes_on_big_data(self, rng):
        dataset = Dataset(rng.random((60, 3)))
        queries = QuerySet(rng.random((20, 3)), ks=2)
        relevant = SubdomainIndex(dataset, queries, mode="relevant")
        assert relevant.num_hyperplanes < 60 * 59 // 2


class TestBoundaries:
    def test_boundary_columns_registered(self, rng):
        __, __, index = build(rng, n=6, m=40, d=2)
        index.ensure_boundaries()
        # At least one subdomain pair must be separated by some column
        # (with 40 queries and 15 hyperplanes there are several cells).
        if index.num_subdomains > 1:
            assert any(sub.boundaries for sub in index.subdomains)

    def test_is_boundary_consistent(self, rng):
        __, __, index = build(rng, n=6, m=40, d=2)
        index.ensure_boundaries()
        for sub in index.subdomains:
            for col in range(index.num_hyperplanes):
                assert index.is_boundary(sub.sid, col) == (col in sub.boundaries)

    def test_memory_estimate_positive(self, rng):
        __, __, index = build(rng)
        assert index.memory_estimate() > 0
