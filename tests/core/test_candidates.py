"""Parity of batched vs per-query candidate generation (§5.1 step 1).

``generate_candidates(method="auto")`` must return exactly the same
candidate set — ids, vectors, costs, hits — as the per-query
``min_cost_to_hit`` loop, across plain L2, weighted L2, and bounded
strategy boxes.
"""

import numpy as np
import pytest

from repro.core._search import SearchState, generate_candidates
from repro.core.cost import L1Cost, L2Cost, euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError
from repro.optimize.hit_cost import min_cost_to_hit_l2_batch


def setup(rng, n=20, m=40, d=3):
    dataset = Dataset(rng.random((n, d)))
    queries = QuerySet(rng.random((m, d)), ks=rng.integers(1, 5, m))
    evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
    state = SearchState(
        target=0,
        base=dataset.matrix[0].copy(),
        applied=np.zeros(d),
        spent=0.0,
        mask=evaluator.hits_mask(0),
    )
    return evaluator, state


def assert_batches_equal(a, b):
    assert np.array_equal(a.query_ids, b.query_ids)
    assert np.allclose(a.vectors, b.vectors, atol=1e-9)
    assert np.allclose(a.costs, b.costs, atol=1e-9)
    assert np.array_equal(a.hits, b.hits)


class TestLoopBatchParity:
    def test_plain_l2_unbounded(self, rng):
        evaluator, state = setup(rng)
        cost = euclidean_cost(3)
        space = StrategySpace.unconstrained(3)
        loop = generate_candidates(evaluator, state, cost, space, method="loop")
        auto = generate_candidates(evaluator, state, cost, space, method="auto")
        assert loop.size > 0
        assert_batches_equal(loop, auto)

    def test_weighted_l2_unbounded(self, rng):
        evaluator, state = setup(rng)
        cost = L2Cost(3, weights=np.array([1.0, 4.0, 0.25]))
        space = StrategySpace.unconstrained(3)
        loop = generate_candidates(evaluator, state, cost, space, method="loop")
        auto = generate_candidates(evaluator, state, cost, space, method="auto")
        assert loop.size > 0
        assert_batches_equal(loop, auto)

    def test_weighted_l2_bounded_box(self, rng):
        evaluator, state = setup(rng)
        cost = L2Cost(3, weights=np.array([2.0, 1.0, 3.0]))
        # Tight enough that some closed-form optima fall outside and go
        # through the per-row fallback, loose enough that some stay in.
        space = StrategySpace(3, lower=np.full(3, -0.05), upper=np.full(3, 0.05))
        loop = generate_candidates(evaluator, state, cost, space, method="loop")
        auto = generate_candidates(evaluator, state, cost, space, method="auto")
        assert_batches_equal(loop, auto)

    def test_l1_cost_uses_fallback_only(self, rng):
        evaluator, state = setup(rng, n=10, m=15)
        cost = L1Cost(3)
        space = StrategySpace.unconstrained(3)
        loop = generate_candidates(evaluator, state, cost, space, method="loop")
        auto = generate_candidates(evaluator, state, cost, space, method="auto")
        assert_batches_equal(loop, auto)

    def test_unknown_method_rejected(self, rng):
        evaluator, state = setup(rng, n=6, m=8)
        with pytest.raises(ValidationError):
            generate_candidates(
                evaluator, state, euclidean_cost(3), StrategySpace.unconstrained(3),
                method="warp",
            )


class TestBatchClosedForm:
    def test_matches_scalar_solver(self, rng):
        from repro.optimize.hit_cost import min_cost_to_hit

        cost = L2Cost(3, weights=np.array([1.0, 2.0, 0.5]))
        space = StrategySpace.unconstrained(3)
        weights_rows = rng.random((25, 3))
        gaps = rng.normal(scale=0.5, size=25)
        vectors, costs, solved, infeasible = min_cost_to_hit_l2_batch(
            cost, weights_rows, gaps, space=space
        )
        assert solved.all() and not infeasible.any()
        for row in range(25):
            scalar = min_cost_to_hit(cost, weights_rows[row], float(gaps[row]), space=space)
            assert np.allclose(vectors[row], scalar.vector, atol=1e-9)
            assert abs(costs[row] - scalar.cost) < 1e-9

    def test_zero_weight_rows_flagged_infeasible(self):
        cost = euclidean_cost(2)
        space = StrategySpace.unconstrained(2)
        weights_rows = np.array([[0.0, 0.0], [1.0, 0.0]])
        gaps = np.array([-0.5, -0.5])  # both need a real move
        __, __, solved, infeasible = min_cost_to_hit_l2_batch(
            cost, weights_rows, gaps, space=space
        )
        assert infeasible.tolist() == [True, False]
        assert solved.tolist() == [False, True]

    def test_already_hitting_rows_are_free(self):
        cost = euclidean_cost(2)
        space = StrategySpace.unconstrained(2)
        weights_rows = np.array([[1.0, 1.0]])
        gaps = np.array([1.0])  # gap > margin: already inside the top-k
        vectors, costs, solved, __ = min_cost_to_hit_l2_batch(
            cost, weights_rows, gaps, space=space
        )
        assert solved.all()
        assert np.allclose(vectors, 0.0) and costs[0] == 0.0

    def test_box_active_rows_left_unsolved(self):
        cost = euclidean_cost(2)
        space = StrategySpace(2, lower=np.full(2, -0.01), upper=np.full(2, 0.01))
        weights_rows = np.array([[1.0, 1.0]])
        gaps = np.array([-5.0])  # needs a move far outside the box
        __, __, solved, infeasible = min_cost_to_hit_l2_batch(
            cost, weights_rows, gaps, space=space
        )
        assert not solved.any() and not infeasible.any()
