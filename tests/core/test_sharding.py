"""Sharded subdomain index: parity, routing, persistence, maintenance."""

import json

import numpy as np
import pytest

from repro.core import updates
from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.plan import build_plan
from repro.core.queries import QuerySet
from repro.core.sharding import (
    IndexProtocol,
    ShardedSubdomainIndex,
    build_index,
    resolve_shards,
)
from repro.core.solvers import get_solver
from repro.core.cost import euclidean_cost
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.data.synthetic import generate
from repro.data.workloads import generate_queries
from repro.errors import IndexCorruptionError, ValidationError
from repro.index.router import GridRouter, RendezvousRouter


def make_inputs(n=20, m=24, d=3, seed=11):
    dataset = Dataset(generate("IN", n, d, seed=seed))
    queries = generate_queries("UN", m, d, seed=seed + 1, k_range=(1, 4))
    return dataset, queries


@pytest.fixture(scope="module")
def inputs():
    return make_inputs()


class TestResolveShards:
    def test_none_is_monolithic(self):
        assert resolve_shards(None, 1000) == 1

    def test_explicit_counts_pass_through(self):
        assert resolve_shards(7, 10) == 7
        assert resolve_shards("7", 10) == 7

    def test_explicit_zero_rejected(self):
        with pytest.raises(ValidationError):
            resolve_shards(0, 100)

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            resolve_shards("many", 100)

    def test_auto_scales_with_workers_and_caps_by_workload(self):
        from repro.parallel.pool import resolve_workers

        # workers resolve through the host clamp, so compare against it
        want = max(2, min(resolve_workers(8), 16))
        assert resolve_shards("auto", 1000, workers=8) == want
        assert resolve_shards("auto", 1000, workers=0) == 4  # serial default
        assert resolve_shards("auto", 70, workers=0) == 2  # 70 // 32
        assert resolve_shards("auto", 40, workers=0) == 1  # too small


class TestBuildIndexFactory:
    def test_monolithic_by_default(self, inputs):
        index = build_index(*inputs, mode="relevant")
        assert isinstance(index, SubdomainIndex)
        assert index.shards == 1 and index.routing == "none"

    def test_sharded_when_requested(self, inputs):
        index = build_index(*inputs, mode="relevant", shards=3)
        assert isinstance(index, ShardedSubdomainIndex)
        assert index.shards == 3
        assert sum(index.shard_sizes) == inputs[1].m

    def test_both_satisfy_the_protocol(self, inputs):
        assert isinstance(build_index(*inputs, mode="relevant"), IndexProtocol)
        assert isinstance(
            build_index(*inputs, mode="relevant", shards=2), IndexProtocol
        )


class TestShardedParity:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_served_answers_match_the_monolith(self, inputs, mode):
        dataset, queries = inputs
        mono = SubdomainIndex(dataset, queries, mode=mode)
        sharded = ShardedSubdomainIndex(dataset, queries, shards=4, mode=mode)
        for target in range(dataset.n):
            kth_m, theta_m = mono.kth_other(target)
            kth_s, theta_s = sharded.kth_other(target)
            assert np.array_equal(kth_m, kth_s)
            assert np.array_equal(theta_m, theta_s)
            assert np.array_equal(mono.hits_mask(target), sharded.hits_mask(target))
            assert mono.hits(target) == sharded.hits(target)

    def test_exact_mode_signatures_are_byte_identical(self, inputs):
        dataset, queries = inputs
        mono = SubdomainIndex(dataset, queries, mode="exact")
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="exact")
        for qid in range(queries.m):
            assert sharded.signature_of(qid) == mono.signature_of(qid)

    def test_k1_is_the_monolith(self, inputs):
        dataset, queries = inputs
        mono = SubdomainIndex(dataset, queries, mode="relevant")
        one = ShardedSubdomainIndex(dataset, queries, shards=1, mode="relevant")
        for qid in range(queries.m):
            assert one.signature_of(qid) == mono.signature_of(qid)
            assert np.array_equal(one.cell_members(qid), mono.cell_members(qid))

    def test_members_partition_the_workload(self, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=4, mode="relevant")
        seen = np.concatenate([sharded.shard_members(s) for s in range(4)])
        assert sorted(seen.tolist()) == list(range(queries.m))
        for s in range(4):
            members = sharded.shard_members(s)
            assert np.all(np.diff(members) > 0)  # strictly ascending

    def test_router_choice_is_respected(self, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(
            dataset, queries, shards=4, router="rendezvous", mode="relevant"
        )
        assert sharded.routing == "rendezvous"
        expected = RendezvousRouter().assign(queries.weights, 4)
        assert np.array_equal(sharded._shard_of, expected)

    def test_validate_passes_on_a_fresh_build(self, inputs):
        ShardedSubdomainIndex(*inputs, shards=4, mode="relevant").validate()

    def test_shard_accessor_bounds(self, inputs):
        sharded = ShardedSubdomainIndex(*inputs, shards=2, mode="relevant")
        with pytest.raises(ValidationError):
            sharded.shard(2)
        mono = SubdomainIndex(*inputs, mode="relevant")
        assert mono.shard(0) is mono
        with pytest.raises(ValidationError):
            mono.shard(1)


class TestShardedMutations:
    def test_add_query_touches_only_the_owning_shard(self):
        dataset, queries = make_inputs()
        sharded = ShardedSubdomainIndex(dataset, queries, shards=4, mode="relevant")
        before = sharded.shard_epochs
        weights = np.array([0.6, 0.3, 0.1])
        owner = sharded.router.assign_one(weights, 4)
        qid = sharded.add_query(weights, 2)
        assert qid == queries.m
        moved = [
            s for s, (a, b) in enumerate(zip(before, sharded.shard_epochs)) if a != b
        ]
        assert moved == [owner]
        assert qid in sharded.shard_members(owner).tolist()

    def test_remove_query_shifts_global_ids(self):
        dataset, queries = make_inputs()
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        sharded.remove_query(5)
        assert sharded.queries.m == queries.m - 1
        seen = np.concatenate([sharded.shard_members(s) for s in range(3)])
        assert sorted(seen.tolist()) == list(range(queries.m - 1))
        sharded.validate()

    def test_object_mutations_fan_out_and_match_rebuild(self):
        dataset, queries = make_inputs()
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        sharded.add_object(np.array([0.4, 0.5, 0.6]))
        sharded.remove_object(2)
        rebuilt = ShardedSubdomainIndex(
            sharded.dataset, sharded.queries, shards=3, mode="relevant"
        )
        for target in range(sharded.dataset.n):
            assert np.array_equal(
                sharded.hits_mask(target), rebuilt.hits_mask(target)
            )
        # fan-out re-unified the dataset: all shards share one object
        for s in range(3):
            assert sharded.shard(s).dataset is sharded.dataset
        sharded.validate()

    def test_updates_module_dispatches_on_the_union(self):
        dataset, queries = make_inputs()
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        epoch = sharded.epoch
        qid = updates.add_query(sharded, np.array([0.2, 0.3, 0.5]), 2)
        assert qid == queries.m
        assert sharded.epoch > epoch
        updates.remove_query(sharded, qid)
        assert sharded.queries.m == queries.m

    def test_mutation_notifies_subscribers(self):
        dataset, queries = make_inputs()
        sharded = ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant")
        calls = []

        def on_mutation():
            calls.append(True)

        # hooks are weakly held: the subscriber must stay alive
        sharded.subscribe_mutations(on_mutation)
        sharded.add_query(np.array([0.5, 0.25, 0.25]), 1)
        assert calls


class TestShardedPersistence:
    def test_save_load_round_trip(self, tmp_path, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        sharded.save(tmp_path / "idx")
        loaded = ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries)
        assert loaded.shards == 3
        assert np.array_equal(loaded._shard_of, sharded._shard_of)
        for target in range(dataset.n):
            assert np.array_equal(
                loaded.hits_mask(target), sharded.hits_mask(target)
            )
        loaded.validate()

    def test_mmap_layout_round_trip(self, tmp_path, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        sharded.save(tmp_path / "idx", format="mmap")
        # shard entries become per-shard mmap directories, and the
        # manifest records which layout it wrote
        assert (tmp_path / "idx" / "shard-0000").is_dir()
        assert not (tmp_path / "idx" / "shard-0000.npz").exists()
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        assert manifest["layout"] == "mmap"
        loaded = ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries)
        for target in range(dataset.n):
            assert np.array_equal(
                loaded.hits_mask(target), sharded.hits_mask(target)
            )
        loaded.validate()

    def test_mmap_layout_rejects_unknown_format(self, tmp_path, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant")
        with pytest.raises(ValidationError, match="format"):
            sharded.save(tmp_path / "idx", format="pickle")

    def test_lazy_load_defers_shard_files(self, tmp_path, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        sharded.save(tmp_path / "idx")
        lazy = ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries, lazy=True)
        assert not any(lazy.shard_loaded(s) for s in range(3))
        # manifest hints serve EXPLAIN statistics without touching disk
        assert lazy.num_subdomains == sharded.num_subdomains
        assert lazy.shard_epochs == sharded.shard_epochs
        assert not any(lazy.shard_loaded(s) for s in range(3))
        qid = 0
        assert lazy.signature_of(qid) == sharded.signature_of(qid)
        assert any(lazy.shard_loaded(s) for s in range(3))

    def test_load_shard_alone(self, tmp_path, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        sharded.save(tmp_path / "idx")
        shard = ShardedSubdomainIndex.load_shard(tmp_path / "idx", dataset, queries, 1)
        assert isinstance(shard, SubdomainIndex)
        assert shard.queries.m == len(sharded.shard_members(1))

    def test_missing_manifest_raises_validation_error(self, tmp_path, inputs):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValidationError, match="manifest"):
            ShardedSubdomainIndex.load(tmp_path / "empty", *inputs)

    def test_corrupt_manifest_raises_corruption_error(self, tmp_path, inputs):
        dataset, queries = inputs
        ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant").save(
            tmp_path / "idx"
        )
        (tmp_path / "idx" / "manifest.json").write_text("{not json")
        with pytest.raises(IndexCorruptionError, match="corrupt"):
            ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries)

    def test_manifest_missing_field_raises_corruption_error(self, tmp_path, inputs):
        dataset, queries = inputs
        ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant").save(
            tmp_path / "idx"
        )
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["router"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexCorruptionError, match="required fields"):
            ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries)

    def test_schema_mismatch_raises_validation_error(self, tmp_path, inputs):
        dataset, queries = inputs
        ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant").save(
            tmp_path / "idx"
        )
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = "repro-sharded-index/999"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="unsupported sharded schema"):
            ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries)

    def test_fingerprint_mismatch_raises_validation_error(self, tmp_path, inputs):
        dataset, queries = inputs
        ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant").save(
            tmp_path / "idx"
        )
        other = Dataset(generate("IN", dataset.n, dataset.dim, seed=999))
        with pytest.raises(ValidationError, match="different dataset"):
            ShardedSubdomainIndex.load(tmp_path / "idx", other, queries)

    def test_truncated_shard_file_raises_corruption_error(self, tmp_path, inputs):
        dataset, queries = inputs
        ShardedSubdomainIndex(dataset, queries, shards=2, mode="relevant").save(
            tmp_path / "idx"
        )
        shard_file = tmp_path / "idx" / "shard-0001.npz"
        shard_file.write_bytes(shard_file.read_bytes()[:40])
        with pytest.raises(IndexCorruptionError, match="corrupt or truncated"):
            ShardedSubdomainIndex.load(tmp_path / "idx", dataset, queries)


class TestMonolithicLoadErrors:
    """Damaged .npz payloads surface as typed ReproErrors (never KeyError)."""

    def save_one(self, tmp_path, inputs):
        dataset, queries = inputs
        index = SubdomainIndex(dataset, queries, mode="relevant")
        path = tmp_path / "index.npz"
        index.save(path)
        return path

    def test_truncated_file(self, tmp_path, inputs):
        path = self.save_one(tmp_path, inputs)
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(IndexCorruptionError, match="corrupt or truncated"):
            SubdomainIndex.load(path, *inputs)

    def test_garbage_bytes(self, tmp_path, inputs):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this was never an npz payload")
        with pytest.raises(IndexCorruptionError):
            SubdomainIndex.load(path, *inputs)

    def test_missing_field(self, tmp_path, inputs):
        dataset, queries = inputs
        path = tmp_path / "sparse.npz"
        from repro.core.subdomain import (
            INDEX_SCHEMA,
            dataset_fingerprint,
            queryset_fingerprint,
        )

        np.savez(
            path,
            schema=INDEX_SCHEMA,
            dataset_fingerprint=dataset_fingerprint(dataset),
            queries_fingerprint=queryset_fingerprint(queries),
        )
        with pytest.raises(IndexCorruptionError, match="missing required field"):
            SubdomainIndex.load(path, dataset, queries)

    def test_schema_mismatch_is_validation_not_corruption(self, tmp_path, inputs):
        dataset, queries = inputs
        path = tmp_path / "wrong-schema.npz"
        np.savez(path, schema="some-other-format/1")
        with pytest.raises(ValidationError, match="unsupported index schema"):
            SubdomainIndex.load(path, dataset, queries)

    def test_missing_path(self, tmp_path, inputs):
        with pytest.raises(ValidationError, match="no saved index"):
            SubdomainIndex.load(tmp_path / "absent.npz", *inputs)


class TestPlanAndEngine:
    def test_plan_reports_the_shard_layout(self, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        plan = build_plan(
            sharded,
            get_solver("efficient"),
            "min_cost",
            0,
            2,
            euclidean_cost(dataset.dim),
            StrategySpace.unconstrained(dataset.dim),
        )
        assert plan.shards == 3
        assert plan.routing == "grid"
        assert sum(plan.shard_sizes) == queries.m
        payload = plan.to_dict()
        assert payload["shards"] == 3
        assert payload["shard_sizes"] == list(sharded.shard_sizes)

    def test_monolithic_plan_is_unchanged(self, inputs):
        dataset, queries = inputs
        mono = SubdomainIndex(dataset, queries, mode="relevant")
        plan = build_plan(
            mono,
            get_solver("efficient"),
            "min_cost",
            0,
            2,
            euclidean_cost(dataset.dim),
            StrategySpace.unconstrained(dataset.dim),
        )
        assert plan.shards == 1
        assert plan.routing == "none"
        assert plan.shard_sizes == (queries.m,)

    def test_engine_builds_and_answers_through_shards(self, inputs):
        dataset, queries = inputs
        sharded_engine = ImprovementQueryEngine(
            dataset, queries, mode="relevant", shards=3, workers=0
        )
        mono_engine = ImprovementQueryEngine(
            dataset, queries, mode="relevant", workers=0
        )
        assert sharded_engine.index.shards == 3
        target = 1
        a = sharded_engine.min_cost(target=target, tau=3)
        b = mono_engine.min_cost(target=target, tau=3)
        assert a.hits_after == b.hits_after
        assert a.total_cost == pytest.approx(b.total_cost)
        assert np.array_equal(a.strategy.vector, b.strategy.vector)

    def test_parallel_shard_build_matches_serial(self, inputs):
        dataset, queries = inputs
        serial = ShardedSubdomainIndex(
            dataset, queries, shards=3, mode="exact", workers=0
        )
        parallel = ShardedSubdomainIndex(
            dataset, queries, shards=3, mode="exact", workers=2
        )
        for qid in range(queries.m):
            assert parallel.signature_of(qid) == serial.signature_of(qid)
            assert np.array_equal(
                parallel.cell_members(qid), serial.cell_members(qid)
            )


class TestHotArrays:
    def test_groups_cover_global_and_every_shard(self, inputs):
        dataset, queries = inputs
        sharded = ShardedSubdomainIndex(dataset, queries, shards=3, mode="relevant")
        entries = sharded.hot_arrays()
        groups = {group for _, group, _, _ in entries}
        assert "global" in groups
        assert {f"shard:{s}" for s in range(3)} <= groups
        keys = [key for key, _, _, _ in entries]
        assert len(keys) == len(set(keys))  # keys are unique across groups

    def test_monolith_exposes_only_the_global_group(self, inputs):
        mono = SubdomainIndex(*inputs, mode="relevant")
        assert {group for _, group, _, _ in mono.hot_arrays()} == {"global"}
