"""Boundary-layer tests: sense conversion round-trips and error paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.boundary import (
    describe_cost,
    describe_space,
    externalize_result,
    flip_cost,
    flip_space,
    internalize,
    internalize_multi,
)
from repro.core.cost import (
    AsymmetricLinearCost,
    CallableCost,
    L1Cost,
    L2Cost,
    euclidean_cost,
)
from repro.core.objects import Dataset
from repro.core.results import IQResult
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError

DIM = 3

finite = st.floats(-8.0, 8.0, allow_nan=False, allow_infinity=False)
vectors = arrays(np.float64, (DIM,), elements=finite)
positive = st.floats(0.125, 8.0, allow_nan=False, allow_infinity=False)
prices = arrays(np.float64, (DIM,), elements=positive)


def max_dataset(rows: int = 4) -> Dataset:
    rng = np.random.default_rng(7)
    return Dataset(rng.random((rows, DIM)), sense="max")


class TestFlipRoundTrips:
    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_flip_symmetric_cost_is_identity(self, s):
        cost = L2Cost(DIM)
        assert flip_cost(cost) is cost
        assert flip_cost(cost)(s) == pytest.approx(cost(-s))

    @given(prices, prices, vectors)
    @settings(max_examples=50, deadline=None)
    def test_flip_asymmetric_twice_is_identity(self, up, down, s):
        cost = AsymmetricLinearCost(DIM, up=up, down=down)
        flipped = flip_cost(cost)
        assert flipped(s) == pytest.approx(cost(-s))
        twice = flip_cost(flipped)
        assert twice(s) == pytest.approx(cost(s))

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_flip_callable_twice_agrees(self, s):
        cost = CallableCost(DIM, lambda v: float(np.abs(v).sum()) + float(v.sum()) ** 2)
        flipped = flip_cost(cost)
        assert flipped(s) == pytest.approx(cost(-s))
        assert flip_cost(flipped)(s) == pytest.approx(cost(s))

    # StrategySpace requires the zero strategy to stay valid, so boxes
    # are generated with lower <= 0 <= upper.
    @given(prices, prices)
    @settings(max_examples=50, deadline=None)
    def test_flip_space_twice_is_identity(self, below, above):
        space = StrategySpace(DIM, lower=-below, upper=above)
        flipped = flip_space(space)
        twice = flip_space(flipped)
        np.testing.assert_allclose(twice.lower, space.lower)
        np.testing.assert_allclose(twice.upper, space.upper)

    @given(prices, prices)
    @settings(max_examples=50, deadline=None)
    def test_flipped_space_contains_negated_strategies(self, below, above):
        space = StrategySpace(DIM, lower=-below, upper=above)
        flipped = flip_space(space)
        midpoint = (above - below) / 2
        assert space.contains(midpoint)
        assert flipped.contains(-midpoint)

    def test_flip_space_none_passthrough(self):
        assert flip_space(None) is None


class TestInternalizeExternalize:
    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_max_sense_cost_round_trip(self, s):
        # Internal strategy = negated external one: the internalized cost
        # must price the internal vector exactly as the user's cost
        # prices the external vector.
        dataset = max_dataset()
        user_cost = AsymmetricLinearCost(
            DIM, up=np.full(DIM, 2.0), down=np.full(DIM, 0.5)
        )
        cost_int, _ = internalize(dataset, user_cost, None)
        internal = dataset.to_internal_strategy(s)
        assert cost_int(internal) == pytest.approx(user_cost(s))

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_max_sense_externalize_round_trip(self, s):
        dataset = max_dataset()
        internal = dataset.to_internal_strategy(s)
        result = IQResult(
            target=0,
            strategy=Strategy(internal.copy(), cost=1.5),
            hits_before=0,
            hits_after=1,
            total_cost=1.5,
            satisfied=True,
        )
        external = externalize_result(dataset, result)
        np.testing.assert_allclose(external.strategy.vector, s, atol=1e-12)
        assert external.strategy.cost == pytest.approx(1.5)

    def test_min_sense_is_passthrough(self):
        dataset = Dataset(np.eye(DIM))
        cost = L1Cost(DIM)
        space = StrategySpace(DIM, lower=-np.ones(DIM), upper=np.ones(DIM))
        cost_int, space_int = internalize(dataset, cost, space)
        assert cost_int is cost
        assert space_int is space

    def test_default_cost_is_euclidean(self):
        cost_int, _ = internalize(Dataset(np.eye(DIM)), None, None)
        assert isinstance(cost_int, L2Cost)
        assert cost_int.dim == DIM


class TestDimMismatch:
    def test_cost_dim_mismatch(self):
        with pytest.raises(ValidationError, match="cost dim"):
            internalize(Dataset(np.eye(DIM)), L2Cost(DIM + 1), None)

    def test_space_dim_mismatch(self):
        space = StrategySpace(DIM + 1)
        with pytest.raises(ValidationError, match="space dim"):
            internalize(Dataset(np.eye(DIM)), None, space)

    def test_multi_cost_dim_mismatch(self):
        with pytest.raises(ValidationError, match="cost dim"):
            internalize_multi(
                Dataset(np.eye(DIM)), [0, 1], {0: L2Cost(DIM), 1: L2Cost(2)}, None
            )

    def test_multi_space_dim_mismatch(self):
        with pytest.raises(ValidationError, match="space dim"):
            internalize_multi(
                Dataset(np.eye(DIM)), [0, 1], None, {1: StrategySpace(DIM - 1)}
            )


class TestInternalizeMulti:
    def test_max_sense_flips_dicts_and_keeps_keys(self):
        dataset = max_dataset()
        up, down = np.full(DIM, 3.0), np.ones(DIM)
        costs = {0: AsymmetricLinearCost(DIM, up=up, down=down)}
        spaces = {0: StrategySpace(DIM, lower=np.zeros(DIM), upper=np.ones(DIM))}
        costs_int, spaces_int = internalize_multi(dataset, [0], costs, spaces)
        np.testing.assert_allclose(costs_int[0].up, down)
        np.testing.assert_allclose(costs_int[0].down, up)
        np.testing.assert_allclose(spaces_int[0].lower, -np.ones(DIM))
        np.testing.assert_allclose(spaces_int[0].upper, np.zeros(DIM))

    def test_defaults_to_shared_euclidean(self):
        costs_int, spaces_int = internalize_multi(Dataset(np.eye(DIM)), [0, 1], None, None)
        assert isinstance(costs_int, L2Cost)
        assert spaces_int is None


class TestDescribe:
    def test_describe_cost_variants(self):
        assert describe_cost(euclidean_cost(2)) == "L2Cost(dim=2)"
        weighted = L1Cost(2, weights=[1.0, 4.0])
        assert "weights=[1, 4]" in describe_cost(weighted)
        asym = AsymmetricLinearCost(2, up=[2.0, 2.0], down=[1.0, 1.0])
        text = describe_cost(asym)
        assert "up=[2, 2]" in text and "down=[1, 1]" in text

    def test_describe_space_variants(self):
        assert describe_space(None) == "unconstrained"
        assert describe_space(StrategySpace(2)) == "unconstrained"
        box = StrategySpace(2, lower=[-1.0, 0.0], upper=[1.0, 2.0])
        assert describe_space(box) == "box(lower=[-1, 0], upper=[1, 2])"
