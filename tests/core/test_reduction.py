import pytest

from repro.core.cost import euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.exhaustive import exhaustive_max_hit, exhaustive_min_cost
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.reduction import min_cost_via_max_hit
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError


@pytest.fixture
def world(rng):
    dataset = Dataset(rng.random((15, 3)))
    queries = QuerySet(rng.random((20, 3)), ks=rng.integers(1, 4, 20))
    return StrategyEvaluator(SubdomainIndex(dataset, queries))


class TestReduction:
    def test_reaches_tau(self, world):
        cost = euclidean_cost(3)
        for tau in (5, 10, 15):
            result = min_cost_via_max_hit(world, 0, tau, cost)
            assert result.satisfied
            assert result.hits_after >= tau

    def test_comparable_to_direct_min_cost(self, world):
        """The reduction over the greedy oracle lands in the same cost
        ballpark as the direct greedy Min-Cost search."""
        cost = euclidean_cost(3)
        direct = min_cost_iq(world, 2, 8, cost)
        reduced = min_cost_via_max_hit(world, 2, 8, cost)
        assert reduced.satisfied and direct.satisfied
        assert reduced.total_cost <= direct.total_cost * 2 + 1e-9
        assert direct.total_cost <= reduced.total_cost * 2 + 1e-9

    def test_exact_reduction_matches_exact_min_cost(self, rng):
        """§4.2.2's proof: with an *exact* Max-Hit oracle, the binary
        search converges to the exact Min-Cost optimum."""
        dataset = Dataset(rng.random((8, 2)))
        queries = QuerySet(rng.random((6, 2)), ks=2)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        cost = euclidean_cost(2)
        tau = 3
        exact = exhaustive_min_cost(evaluator, 0, tau, cost)
        reduced = min_cost_via_max_hit(
            evaluator, 0, tau, cost, oracle=exhaustive_max_hit, iterations=30
        )
        assert reduced.satisfied
        assert reduced.total_cost == pytest.approx(exact.total_cost, rel=1e-3, abs=1e-6)

    def test_budget_hint_respected(self, world):
        cost = euclidean_cost(3)
        result = min_cost_via_max_hit(world, 1, 6, cost, budget_hint=0.01)
        assert result.satisfied  # hint too small: bracketing must grow it

    def test_invalid_tau(self, world):
        with pytest.raises(ValidationError):
            min_cost_via_max_hit(world, 0, 0, euclidean_cost(3))
        with pytest.raises(ValidationError):
            min_cost_via_max_hit(world, 0, 99, euclidean_cost(3))
