"""Invariant oracles: a healthy index passes, a corrupted one is caught."""

import numpy as np
import pytest

from repro.check import check_index_invariants
from repro.check.oracles import (
    check_pair_consistency,
    check_partition_cover,
    check_prefixes,
    check_signatures,
)
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.errors import IndexCorruptionError


def build(rng, mode="exact", n=8, m=12, d=2):
    dataset = Dataset(rng.random((n, d)))
    queries = QuerySet(rng.random((m, d)), ks=rng.integers(1, 4, m))
    return SubdomainIndex(dataset, queries, mode=mode)


class TestHealthyIndex:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_fresh_index_passes(self, rng, mode):
        check_index_invariants(build(rng, mode=mode))

    def test_passes_after_prefix_materialisation(self, rng):
        index = build(rng)
        for target in range(index.dataset.n):
            index.hits_mask(target)  # force lazy prefixes to exist
        check_index_invariants(index)


class TestCorruptionDetected:
    def test_wrong_subdomain_of_entry(self, rng):
        index = build(rng)
        index.subdomain_of[0] = (index.subdomain_of[0] + 1) % index.num_subdomains
        with pytest.raises(IndexCorruptionError):
            check_partition_cover(index)

    def test_duplicated_query_membership(self, rng):
        index = build(rng)
        sub = index.subdomains[0]
        sub.query_ids = np.concatenate([sub.query_ids, sub.query_ids[:1]])
        with pytest.raises(IndexCorruptionError):
            check_partition_cover(index)

    def test_foreign_representative(self, rng):
        index = build(rng)
        victim = next(s for s in index.subdomains if s.size < index.queries.m)
        outsider = next(
            j for j in range(index.queries.m) if j not in victim.query_ids
        )
        victim.representative = outsider
        with pytest.raises(IndexCorruptionError):
            check_partition_cover(index)

    def test_tampered_signature_byte(self, rng):
        index = build(rng)
        victim = next(s for s in index.subdomains if len(s.signature) > 0)
        raw = bytearray(victim.signature)
        raw[0] = 1 if raw[0] != 1 else 255  # flip one side entry
        victim.signature = bytes(raw)
        with pytest.raises(IndexCorruptionError):
            check_signatures(index)

    def test_swapped_prefix_entries(self, rng):
        index = build(rng)
        index.hits_mask(0)  # materialise prefixes
        victim = next(
            s for s in index.subdomains if s.prefix is not None and s.prefix.size >= 2
        )
        victim.prefix = victim.prefix[::-1].copy()
        with pytest.raises(IndexCorruptionError):
            check_prefixes(index)

    def test_stale_pair_column_mapping(self, rng):
        index = build(rng)
        a, b = index.pairs[0]
        index.pair_column[(a, b)] = len(index.pairs) + 7
        with pytest.raises(IndexCorruptionError):
            check_pair_consistency(index)

    def test_drifted_normal(self, rng):
        index = build(rng)
        index.normals[0] = index.normals[0] + 0.5
        with pytest.raises(IndexCorruptionError):
            check_pair_consistency(index)

    def test_dropped_pair_entry(self, rng):
        # A pair list shorter than the normal matrix is a length breach.
        index = build(rng)
        index.pairs.pop()
        with pytest.raises(IndexCorruptionError):
            check_pair_consistency(index)
