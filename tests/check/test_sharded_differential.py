"""The sharded differential axis: scenario replay parity and boundary probes."""

import pytest

from repro.check import AddObject, AddQuery, RemoveObject, RemoveQuery, Scenario
from repro.check.differential import (
    check_shard_boundary_ties,
    check_sharded_scenario,
)
from repro.core.sharding import ShardedSubdomainIndex


def full_ops(d=2):
    return (
        AddObject(attributes=tuple(0.3 + 0.1 * j for j in range(d))),
        AddQuery(weights=tuple(0.7 - 0.1 * j for j in range(d)), k=2),
        RemoveObject(slot=2),
        RemoveQuery(slot=4),
        AddObject(attributes=tuple(0.6 for _ in range(d))),
    )


class TestShardedScenario:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_scripted_scenario_passes(self, mode):
        scenario = Scenario(
            kind="IN", mode=mode, n=7, m=12, d=2, seed=3, ops=full_ops()
        )
        index = check_sharded_scenario(scenario, shards=3)
        assert isinstance(index, ShardedSubdomainIndex)
        assert index.shards == 3
        assert index.queries.m == 12  # 12 initial + 1 add - 1 removal

    def test_empty_op_sequence_passes(self):
        scenario = Scenario(kind="CO", mode="relevant", n=6, m=10, d=3, seed=5)
        check_sharded_scenario(scenario, shards=2)


class TestBoundaryTies:
    def test_boundary_probe_passes(self):
        check_shard_boundary_ties(shards=4, seed=0)

    def test_boundary_probe_other_widths(self):
        check_shard_boundary_ties(shards=2, seed=7)
        check_shard_boundary_ties(shards=5, seed=7)
