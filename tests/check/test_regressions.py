"""Regression tests for the bugs the correctness harness flushed out.

Each test pins one fix: the ESE-parity tie-band slab test, the
relevant-mode ``add_object`` contender closure, the once-only Max-Hit
budget slack, and the shared Eq. 6 kernel behind ``evaluate_many``.
Where practical, the pre-fix behaviour is re-created in place (the
``tie_band_blind`` fixture patches the registered ``slab_crossings``
kernel back to its old sign-only form) to show the test really
distinguishes the two.
"""

import numpy as np
import pytest

from repro.constants import EPS_COST
from repro.core import updates
from repro.core._search import SearchState, generate_candidates
from repro.core.cost import L2Cost
from repro.core.ese import StrategyEvaluator
from repro.core.maxhit import max_hit_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import _TIE_TOL, SubdomainIndex


def tie_band_instance():
    """Target 0 misses both queries; its tie band sits below both thresholds."""
    dataset = Dataset(np.array([[0.5, 0.5], [0.2, 0.3], [0.8, 0.1]]))
    queries = QuerySet(np.array([[0.6, 0.4], [0.3, 0.7]]), ks=np.array([1, 1]))
    return SubdomainIndex(dataset, queries)


class TestAffectedTieBandParity:
    """Fix 1: ``affected_queries`` uses the same tie band as ``_beats``."""

    def tie_band_move(self, evaluator, target, j):
        """A move landing the target's score strictly inside query j's band."""
        index = evaluator.index
        __, theta = evaluator.thresholds(target)
        q = index.queries.weights[j]
        old = index.dataset.matrix[target].copy()
        band = _TIE_TOL * max(1.0, abs(float(theta[j])))
        landing = float(theta[j]) + 0.4 * band  # same raw side as a miss
        new = old + q * ((landing - float(q @ old)) / float(q @ q))
        return old, new

    def test_tie_band_entry_is_affected(self):
        evaluator = StrategyEvaluator(tie_band_instance())
        old, new = self.tie_band_move(evaluator, 0, 0)
        assert not evaluator.hits_mask(0)[0]  # a miss before the move
        hits, mask = evaluator.evaluate_affected(0, old, new)
        full = evaluator.hits_mask(0, new)
        assert bool(full[0])  # tie + id tie-break grant membership
        assert np.array_equal(mask, full)
        assert hits == int(full.sum())

    def test_raw_sign_predicate_misses_the_entry(self, tie_band_blind):
        # Re-create the pre-fix predicate: affected iff the raw sign of
        # the slab test flips.  The engineered move keeps the sign, so
        # the old code skips the query and diverges from a full pass.
        evaluator = StrategyEvaluator(tie_band_instance())
        old, new = self.tie_band_move(evaluator, 0, 0)
        __, mask = evaluator.evaluate_affected(0, old, new)
        full = evaluator.hits_mask(0, new)
        assert not np.array_equal(mask, full)  # the bug this PR fixes

    def test_tie_band_exit_is_affected(self):
        evaluator = StrategyEvaluator(tie_band_instance())
        old, inside = self.tie_band_move(evaluator, 0, 0)
        evaluator_moved = StrategyEvaluator(
            SubdomainIndex(
                evaluator.index.dataset.replaced(0, inside), evaluator.index.queries
            )
        )
        hits, mask = evaluator_moved.evaluate_affected(0, inside, old)
        full = evaluator_moved.hits_mask(0, old)
        assert np.array_equal(mask, full)


class TestRelevantAddObjectClosure:
    """Fix 2: relevant-mode inserts extend the contender pair closure."""

    def test_insert_into_empty_pair_list(self):
        dataset = Dataset(np.array([[0.2, 0.8]]))
        queries = QuerySet(np.array([[0.9, 0.1], [0.1, 0.9]]), ks=np.array([1, 1]))
        index = SubdomainIndex(dataset, queries, mode="relevant")
        assert index.pairs == []  # a single object admits no hyperplanes

        updates.add_object(index, np.array([0.8, 0.2]))
        assert index.pairs  # the newcomer must have gained hyperplanes
        updates.add_object(index, np.array([0.5, 0.5]))

        fresh = SubdomainIndex(index.dataset, index.queries, mode="relevant")
        for target in range(index.dataset.n):
            assert np.array_equal(index.hits_mask(target), fresh.hits_mask(target))

    def test_insert_matches_rebuild_on_random_data(self, rng):
        dataset = Dataset(rng.random((6, 2)))
        queries = QuerySet(rng.random((8, 2)), ks=rng.integers(1, 3, 8))
        index = SubdomainIndex(dataset, queries, mode="relevant")
        for __ in range(3):
            updates.add_object(index, rng.random(2))
        index.validate()
        fresh = SubdomainIndex(index.dataset, index.queries, mode="relevant")
        for target in range(index.dataset.n):
            assert np.array_equal(index.hits_mask(target), fresh.hits_mask(target))

    def test_remove_object_repromotes_contenders(self, rng):
        # Deleting a strong object can promote previously-irrelevant
        # ones into the top-(k+margin) union; the closure must follow.
        dataset = Dataset(rng.random((8, 2)))
        queries = QuerySet(rng.random((6, 2)), ks=np.ones(6, dtype=int))
        index = SubdomainIndex(dataset, queries, mode="relevant")
        updates.remove_object(index, 0)
        updates.remove_object(index, 0)
        index.validate()
        fresh = SubdomainIndex(index.dataset, index.queries, mode="relevant")
        for target in range(index.dataset.n):
            assert np.array_equal(index.hits_mask(target), fresh.hits_mask(target))


class TestOnceOnlyBudgetSlack:
    """Fix 3: candidate filtering is exact; slack is granted once."""

    def search_state(self, evaluator, target):
        index = evaluator.index
        return SearchState(
            target=target,
            base=index.dataset.matrix[target].copy(),
            applied=np.zeros(index.dataset.dim),
            spent=0.0,
            mask=evaluator.hits_mask(target),
        )

    def test_filter_is_exact_not_epsilon_padded(self, rng):
        dataset = Dataset(rng.random((8, 2)))
        queries = QuerySet(rng.random((10, 2)), ks=rng.integers(1, 4, 10))
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        state = self.search_state(evaluator, 0)
        space = StrategySpace.unconstrained(2)
        cost = L2Cost(2)
        unfiltered = generate_candidates(evaluator, state, cost, space)
        assert unfiltered.size > 0
        cheapest = float(unfiltered.costs.min())
        # Pre-fix the filter admitted costs up to max_cost + EPS_COST,
        # so a cap a hair below the cheapest candidate still let it in.
        capped = generate_candidates(
            evaluator, state, cost, space, max_cost=cheapest - EPS_COST / 2
        )
        assert np.all(capped.costs < cheapest)
        exact_cap = generate_candidates(
            evaluator, state, cost, space, max_cost=cheapest
        )
        assert np.isclose(float(exact_cap.costs.min()), cheapest)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_max_hit_spend_never_drifts_past_slack(self, seed):
        rng = np.random.default_rng(seed)
        dataset = Dataset(rng.random((10, 3)))
        queries = QuerySet(rng.random((14, 3)), ks=rng.integers(1, 4, 14))
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        budget = 0.3 + 0.2 * float(rng.random())
        result = max_hit_iq(evaluator, 1, budget, cost=L2Cost(3))
        # The invariant the fix establishes: spend stays within one
        # EPS_COST of the budget however many iterations ran, not
        # within iterations * EPS_COST.
        assert result.total_cost <= budget + EPS_COST
        assert result.satisfied


class TestSharedBeatsKernel:
    """Fix 4: ``evaluate_many`` delegates to the same Eq. 6 kernel."""

    def test_batch_matches_per_position_masks(self, rng):
        dataset = Dataset(rng.random((9, 3)))
        queries = QuerySet(rng.random((11, 3)), ks=rng.integers(1, 4, 11))
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))
        positions = rng.random((17, 3))
        batched = evaluator.evaluate_many(2, positions)
        singles = np.array(
            [int(evaluator.hits_mask(2, pos).sum()) for pos in positions]
        )
        assert np.array_equal(batched, singles)

    def test_batch_honours_tie_band_membership(self):
        index = tie_band_instance()
        evaluator = StrategyEvaluator(index)
        __, theta = evaluator.thresholds(0)
        q = index.queries.weights[0]
        old = index.dataset.matrix[0]
        band = _TIE_TOL * max(1.0, abs(float(theta[0])))
        inside = old + q * ((float(theta[0]) + 0.4 * band - float(q @ old)) / float(q @ q))
        outside = old + q * ((float(theta[0]) + 3.0 * band - float(q @ old)) / float(q @ q))
        counts = evaluator.evaluate_many(0, np.vstack([inside, outside]))
        masks = [evaluator.hits_mask(0, inside), evaluator.hits_mask(0, outside)]
        assert counts[0] == int(masks[0].sum()) and bool(masks[0][0])
        assert counts[1] == int(masks[1].sum()) and not bool(masks[1][0])
