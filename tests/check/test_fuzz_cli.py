"""Fuzz driver, shrinker, CLI plumbing, and the harness canary."""

import io

import pytest

from repro.check import AddObject, RemoveQuery, Scenario, fuzz, run_case, shrink
from repro.check.cli import main as check_main
from repro.check.fuzz import FuzzFailure, random_scenario
from repro.cli import main as repro_main


class TestFuzzDriver:
    def test_deterministic_seed_smoke(self):
        # The CI configuration: 25 cases, seed 0, both modes, no failures.
        assert fuzz(25, seed=0) == []

    def test_scenarios_derive_deterministically(self):
        a = random_scenario(3, 7)
        b = random_scenario(3, 7)
        assert a == b
        assert random_scenario(3, 8) != a

    def test_mode_pin_is_respected(self):
        for case in range(6):
            assert random_scenario(0, case, mode="relevant").mode == "relevant"

    def test_run_case_returns_message_not_raises(self, tie_band_blind):
        failures = [
            error
            for case in range(12)
            if (error := run_case(random_scenario(0, case))) is not None
        ]
        assert failures  # detected, and reported as strings
        assert all(isinstance(e, str) for e in failures)


class TestShrinker:
    def test_shrunk_scenario_still_fails(self, tie_band_blind):
        scenario, error = next(
            (s, e)
            for s in (random_scenario(0, case) for case in range(12))
            if (e := run_case(s)) is not None
        )
        minimal, minimal_error = shrink(scenario, error)
        assert run_case(minimal) == minimal_error
        assert len(minimal.ops) <= len(scenario.ops)
        # Minimality: dropping any single remaining op makes it pass.
        import dataclasses

        for i in range(len(minimal.ops)):
            candidate = dataclasses.replace(
                minimal, ops=minimal.ops[:i] + minimal.ops[i + 1 :]
            )
            assert run_case(candidate) is None

    def test_repr_round_trips(self):
        scenario = Scenario(
            kind="CO",
            mode="relevant",
            ops=(AddObject(attributes=(0.1, 0.9)), RemoveQuery(slot=3)),
        )
        assert eval(repr(scenario)) == scenario  # copy-pasteable counterexamples

    def test_failure_render_mentions_replay(self):
        failure = FuzzFailure(scenario=Scenario(), error="CheckFailure: boom")
        rendered = failure.render()
        assert "run_case(" in rendered and "boom" in rendered


class TestCanary:
    """Reverting the ESE-parity fix must make the harness fail loudly.

    This is the meta-test: it proves the fuzz harness actually has the
    power to find the class of bug this PR fixes, so a future regression
    cannot slip past a green ``repro check`` run.
    """

    def test_fuzz_finds_reverted_tie_band_fix(self, tie_band_blind):
        failures = fuzz(12, seed=0, stop_after=1)
        assert failures
        assert "evaluate_affected" in failures[0].error

    def test_battery_finds_reverted_tie_band_fix(self, tie_band_blind):
        out = io.StringIO()
        code = check_main(["--fuzz", "0"], out=out)
        assert code == 1
        assert "FAIL" in out.getvalue()


class TestCli:
    def test_module_main_passes(self):
        out = io.StringIO()
        code = check_main(["--fuzz", "2", "--seed", "0", "--mode", "exact"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "all correctness oracles passed" in text
        assert "battery IN/exact/d=2: ok" in text
        assert "relevant" not in text  # --mode exact pins the battery too

    def test_skip_battery_only_fuzzes(self):
        out = io.StringIO()
        code = check_main(["--fuzz", "1", "--skip-battery"], out=out)
        assert code == 0
        assert "battery" not in out.getvalue()

    def test_negative_fuzz_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            check_main(["--fuzz", "-1"])
        assert excinfo.value.code == 2

    def test_repro_check_subcommand_dispatches(self):
        out = io.StringIO()
        code = repro_main(
            ["check", "--fuzz", "1", "--seed", "0", "--mode", "exact"], out=out
        )
        assert code == 0
        assert "all correctness oracles passed" in out.getvalue()

    def test_repro_help_lists_check(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "check" in capsys.readouterr().out
