"""Shared fault injection for the harness canary tests.

The ESE hot path classifies queries against the slab boundaries through
the registered ``slab_crossings`` kernel (every backend slot resolves
through :mod:`repro.native.registry`), so re-creating the pre-fix
tie-band-blind predicate must patch the registry — patching the scalar
reference helper ``ese._slab_region`` would leave the vectorized path
that actually runs untouched and the canary powerless.
"""

import numpy as np
import pytest

from repro.native import registry as _registry


@pytest.fixture
def tie_band_blind(monkeypatch):
    """Inject the pre-fix predicate: affected iff the raw slab sign flips.

    Patches every registry slot the dispatch can reach (the python
    canon, the active snapshot, and — where numba registered one — the
    compiled twin), so the fault survives the engine's per-execution
    ``use_backend`` re-pin, which rebuilds the active snapshot from the
    backend dicts.
    """

    def sign_only(old_values, new_values, theta, tie_tol):
        return (np.asarray(old_values) > 0) != (np.asarray(new_values) > 0)

    monkeypatch.setitem(_registry._PYTHON, "slab_crossings", sign_only)
    monkeypatch.setitem(_registry._ACTIVE, "slab_crossings", sign_only)
    if "slab_crossings" in _registry._NATIVE:
        monkeypatch.setitem(_registry._NATIVE, "slab_crossings", sign_only)
    return sign_only
