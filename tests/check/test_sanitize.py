"""The runtime resource sanitizer: segment snapshots, leak detection,
warning promotion, and the ``repro check --sanitize`` wiring."""

import io
import warnings
from multiprocessing import shared_memory

import pytest

from repro.check import cli as check_cli
from repro.check.sanitize import Sanitizer, shm_segments
from repro.errors import CheckFailure


class TestShmSegments:
    def test_reflects_live_segments(self):
        segment = shared_memory.SharedMemory(create=True, size=8)
        try:
            assert segment.name in shm_segments()
        finally:
            segment.close()
            segment.unlink()
        assert segment.name not in shm_segments()

    def test_returns_frozenset(self):
        assert isinstance(shm_segments(), frozenset)


class TestSanitizer:
    def test_clean_block_reports_no_leaks(self):
        with Sanitizer("clean") as sanitizer:
            segment = shared_memory.SharedMemory(create=True, size=8)
            segment.close()
            segment.unlink()
        assert sanitizer.leaked == frozenset()
        assert "no leaked shm segments" in sanitizer.summary()
        sanitizer.check()  # must not raise

    def test_detects_a_leaked_segment(self):
        segment = None
        try:
            with Sanitizer("leaky") as sanitizer:
                segment = shared_memory.SharedMemory(create=True, size=8)
            assert segment.name in sanitizer.leaked
            assert "LEAKED" in sanitizer.summary()
            with pytest.raises(CheckFailure, match="LEAKED"):
                sanitizer.check()
        finally:
            if segment is not None:
                segment.close()
                segment.unlink()

    def test_preexisting_segments_are_not_blamed(self):
        segment = shared_memory.SharedMemory(create=True, size=8)
        try:
            with Sanitizer("ambient") as sanitizer:
                pass
            assert segment.name not in sanitizer.leaked
        finally:
            segment.close()
            segment.unlink()

    def test_resource_warnings_become_errors_inside_block(self):
        with Sanitizer("warnings"):
            with pytest.raises(ResourceWarning):
                warnings.warn("cleanup fell to the GC", ResourceWarning)

    def test_warning_filters_restored_after_block(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with Sanitizer("restore"):
                pass
            warnings.warn("back to ignored", ResourceWarning)  # must not raise


class TestCheckCliSanitize:
    SKIP_ALL = ["--fuzz", "0", "--skip-battery", "--skip-pooled"]

    def test_sanitize_clean_run_exits_zero(self):
        out = io.StringIO()
        code = check_cli.main(["--sanitize", *self.SKIP_ALL], out=out)
        assert code == 0
        assert "no leaked shm segments" in out.getvalue()

    def test_without_flag_no_sanitizer_line(self):
        out = io.StringIO()
        code = check_cli.main(self.SKIP_ALL, out=out)
        assert code == 0
        assert "sanitizer" not in out.getvalue()

    def test_sanitize_turns_a_leak_into_exit_one(self, monkeypatch):
        held = []

        def leaky_execute(args, out):
            held.append(shared_memory.SharedMemory(create=True, size=8))
            return 0

        monkeypatch.setattr(check_cli, "_execute", leaky_execute)
        out = io.StringIO()
        try:
            code = check_cli.main(["--sanitize"], out=out)
        finally:
            for segment in held:
                segment.close()
                segment.unlink()
        assert code == 1
        assert "LEAKED" in out.getvalue()

    def test_sanitize_preserves_inner_failure_code(self, monkeypatch):
        monkeypatch.setattr(check_cli, "_execute", lambda args, out: 1)
        code = check_cli.main(["--sanitize"], out=io.StringIO())
        assert code == 1
