"""Differential oracles: scripted scenarios, determinism, brute force."""

import numpy as np
import pytest

from repro.check import (
    AddObject,
    AddQuery,
    RemoveObject,
    RemoveQuery,
    Scenario,
    check_affected_parity,
    check_iq_contracts,
    check_scenario,
    replay,
)
from repro.check.differential import brute_force_hits
from repro.core.subdomain import SubdomainIndex


def full_ops(d=2):
    """One op of every kind, in an order that exercises each path."""
    return (
        AddObject(attributes=tuple(0.3 + 0.1 * j for j in range(d))),
        AddQuery(weights=tuple(0.7 - 0.1 * j for j in range(d)), k=2),
        RemoveObject(slot=2),
        RemoveQuery(slot=4),
        AddObject(attributes=tuple(0.6 for _ in range(d))),
    )


class TestCheckScenario:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    @pytest.mark.parametrize("kind", ["IN", "CO", "AC"])
    def test_scripted_scenario_passes(self, kind, mode):
        scenario = Scenario(kind=kind, mode=mode, n=7, m=9, d=2, seed=3, ops=full_ops())
        index = check_scenario(scenario)
        assert index.dataset.n == 8  # 7 initial + 2 adds - 1 removal
        assert index.queries.m == 9  # 9 initial + 1 add - 1 removal

    def test_replay_is_deterministic(self):
        scenario = Scenario(kind="IN", mode="exact", n=6, m=8, d=2, seed=11, ops=full_ops())
        a = replay(scenario)
        b = replay(scenario)
        assert np.array_equal(a.dataset.matrix, b.dataset.matrix)
        assert np.array_equal(a.queries.weights, b.queries.weights)
        assert np.array_equal(a.subdomain_of, b.subdomain_of)
        for target in range(a.dataset.n):
            assert np.array_equal(a.hits_mask(target), b.hits_mask(target))

    def test_empty_op_sequence_passes(self):
        for mode in ("exact", "relevant"):
            check_scenario(Scenario(kind="CO", mode=mode, n=6, m=7, d=3, seed=5))

    def test_relevant_partition_refines_fresh(self):
        scenario = Scenario(
            kind="IN", mode="relevant", n=8, m=10, d=2, seed=2, ops=full_ops()
        )
        index = replay(scenario)
        fresh = SubdomainIndex(index.dataset, index.queries, mode="relevant")
        for sub in index.subdomains:
            sids = np.unique(fresh.subdomain_of[np.asarray(sub.query_ids)])
            assert sids.shape[0] == 1  # every maintained cell inside one fresh cell


class TestBruteForce:
    def test_matches_index_on_fresh_build(self, rng):
        matrix = rng.random((9, 3))
        weights = rng.random((12, 3))
        ks = rng.integers(1, 4, 12)
        from repro.core.objects import Dataset
        from repro.core.queries import QuerySet

        index = SubdomainIndex(Dataset(matrix), QuerySet(weights, ks=ks))
        for target in range(9):
            mask, ambiguous = brute_force_hits(matrix, weights, ks, target)
            settled = ~ambiguous
            assert np.array_equal(index.hits_mask(target)[settled], mask[settled])

    def test_small_k_membership_by_hand(self):
        matrix = np.array([[0.1], [0.2], [0.3]])
        weights = np.array([[1.0]])
        ks = np.array([2])
        mask0, __ = brute_force_hits(matrix, weights, ks, 0)
        mask2, __ = brute_force_hits(matrix, weights, ks, 2)
        assert bool(mask0[0]) and not bool(mask2[0])

    def test_everyone_hits_when_k_exceeds_others(self):
        matrix = np.array([[0.9], [0.1]])
        weights = np.array([[1.0]])
        ks = np.array([5])  # only one *other* object exists
        mask, __ = brute_force_hits(matrix, weights, ks, 0)
        assert bool(mask[0])


class TestFurtherOracles:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_affected_and_iq_oracles_pass(self, mode):
        scenario = Scenario(kind="IN", mode=mode, n=7, m=9, d=2, seed=9, ops=full_ops())
        index = check_scenario(scenario)
        rng = np.random.default_rng(97)
        check_affected_parity(index, rng)
        check_iq_contracts(index, rng)

    def test_slot_resolution_keeps_subsequences_replayable(self):
        # Slots far beyond the id range must still replay (they wrap).
        ops = (RemoveObject(slot=10**6), RemoveQuery(slot=10**6))
        check_scenario(Scenario(kind="AC", mode="exact", n=6, m=6, d=2, seed=1, ops=ops))
