import numpy as np
import pytest

from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import ValidationError
from repro.rankaware.queries import max_rank, reverse_k_ranks
from repro.topk.evaluate import rank_of


class TestReverseKRanks:
    def test_returns_best_rank_queries(self, rng):
        dataset = Dataset(rng.random((15, 3)))
        queries = QuerySet(rng.random((20, 3)), ks=1)
        target = 7
        picked = reverse_k_ranks(dataset, queries, target, k=5)
        assert len(picked) == 5
        ranks = [
            rank_of(dataset.matrix, queries.weights[j], target) for j in range(20)
        ]
        picked_ranks = [ranks[j] for j in picked]
        # No unpicked query may have a strictly better rank than the
        # worst picked one.
        unpicked = [ranks[j] for j in range(20) if j not in picked]
        assert max(picked_ranks) <= min(unpicked)

    def test_sorted_by_rank_then_id(self, rng):
        dataset = Dataset(rng.random((10, 2)))
        queries = QuerySet(rng.random((8, 2)), ks=1)
        picked = reverse_k_ranks(dataset, queries, 3, k=8)
        ranks = [rank_of(dataset.matrix, queries.weights[j], 3) for j in picked]
        assert ranks == sorted(ranks)

    def test_k_capped_at_m(self, rng):
        dataset = Dataset(rng.random((5, 2)))
        queries = QuerySet(rng.random((3, 2)), ks=1)
        assert len(reverse_k_ranks(dataset, queries, 0, k=10)) == 3

    def test_validation(self, rng):
        dataset = Dataset(rng.random((5, 2)))
        queries = QuerySet(rng.random((3, 2)), ks=1)
        with pytest.raises(ValidationError):
            reverse_k_ranks(dataset, queries, 0, k=0)
        with pytest.raises(ValidationError):
            reverse_k_ranks(dataset, queries, 99, k=1)


def brute_force_max_rank(matrix, target, grid=25):
    """Dense grid search over generic (strictly positive) 2-D queries.

    The axis starts above zero: max_rank scores points exactly on a
    hyperplane conservatively, and the all-zero query (where ranks
    collapse to id order) is explicitly out of scope.
    """
    best = matrix.shape[0]
    axis = np.linspace(0.02, 1, grid)
    for x in axis:
        for y in axis:
            q = np.array([x, y])
            scores = matrix @ q
            mine = scores[target]
            rank = int(np.sum(scores < mine)) + int(np.sum((scores == mine)[:target])) + 1
            best = min(best, rank)
    return best


class TestMaxRank:
    def test_dominating_object_ranks_first(self, rng):
        points = rng.random((10, 2)) * 0.8 + 0.2
        points[4] = [0.01, 0.01]  # dominates everything (min convention)
        dataset = Dataset(points)
        result = max_rank(dataset, 4)
        assert result.exact
        assert result.rank == 1

    def test_dominated_object_never_first(self, rng):
        points = rng.random((8, 2)) * 0.5
        points[2] = [0.99, 0.99]  # dominated by all with positive weights
        dataset = Dataset(points)
        result = max_rank(dataset, 2)
        assert result.rank == 8  # last under every query in (0,1]^2... at
        # the origin all scores tie and ids 0..1 win anyway.

    def test_matches_grid_search(self, rng):
        for trial in range(5):
            matrix = rng.random((8, 2))
            dataset = Dataset(matrix)
            target = int(rng.integers(0, 8))
            result = max_rank(dataset, target)
            assert result.exact, f"trial {trial}"
            grid_best = brute_force_max_rank(matrix, target)
            # The exact search can only do better than a finite grid.
            assert result.rank <= grid_best, f"trial {trial}"
            # And the witness certifies the claimed rank.
            scores = matrix @ result.witness
            mine = scores[target]
            witness_rank = (
                int(np.sum(scores < mine))
                + int(np.sum((scores == mine)[:target]))
                + 1
            )
            assert witness_rank == result.rank

    def test_witness_inside_domain(self, rng):
        dataset = Dataset(rng.random((6, 3)))
        result = max_rank(dataset, 3)
        assert np.all(result.witness >= -1e-9)
        assert np.all(result.witness <= 1 + 1e-9)

    def test_identical_objects_tie_by_id(self, rng):
        row = rng.random(2)
        dataset = Dataset(np.vstack([row, row, row]))
        assert max_rank(dataset, 0).rank == 1
        assert max_rank(dataset, 1).rank == 2
        assert max_rank(dataset, 2).rank == 3

    def test_node_budget_degrades_gracefully(self, rng):
        dataset = Dataset(rng.random((20, 3)))
        result = max_rank(dataset, 0, node_budget=5, samples=4)
        assert result.rank >= 1  # still returns the incumbent

    def test_custom_domain(self, rng):
        dataset = Dataset(rng.random((6, 2)))
        result = max_rank(
            dataset, 1, domain_lower=[0.4, 0.4], domain_upper=[0.6, 0.6]
        )
        assert np.all(result.witness >= 0.4 - 1e-9)
        assert np.all(result.witness <= 0.6 + 1e-9)
