import numpy as np
import pytest

from repro.baselines.greedy import greedy_max_hit_iq, greedy_min_cost_iq
from repro.baselines.random_search import random_max_hit_iq, random_min_cost_iq
from repro.core.cost import euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError


@pytest.fixture
def evaluator(rng):
    dataset = Dataset(rng.random((15, 3)))
    queries = QuerySet(rng.random((25, 3)), ks=rng.integers(1, 4, 25))
    return StrategyEvaluator(SubdomainIndex(dataset, queries))


class TestGreedy:
    def test_min_cost_reaches_goal(self, evaluator):
        result = greedy_min_cost_iq(evaluator, 0, 10, euclidean_cost(3))
        assert result.satisfied
        assert result.hits_after >= 10
        assert result.hits_after == evaluator.evaluate(0, result.strategy.vector)

    def test_max_hit_within_budget(self, evaluator):
        result = greedy_max_hit_iq(evaluator, 0, 0.4, euclidean_cost(3))
        assert result.total_cost <= 0.4 + 1e-9

    def test_each_iteration_is_single_candidate(self, evaluator):
        result = greedy_min_cost_iq(evaluator, 2, 8, euclidean_cost(3))
        assert all(r.candidates == 1 for r in result.iterations)

    def test_validation(self, evaluator):
        with pytest.raises(ValidationError):
            greedy_min_cost_iq(evaluator, 0, 0, euclidean_cost(3))
        with pytest.raises(ValidationError):
            greedy_max_hit_iq(evaluator, 0, -1.0, euclidean_cost(3))


class TestRandom:
    def test_min_cost_goal(self, evaluator):
        result = random_min_cost_iq(evaluator, 0, 5, euclidean_cost(3), seed=42)
        # Random search usually reaches modest goals on this data.
        assert result.hits_after >= result.hits_before
        assert result.hits_after == evaluator.evaluate(0, result.strategy.vector)

    def test_max_hit_budget(self, evaluator):
        result = random_max_hit_iq(evaluator, 0, 0.5, euclidean_cost(3), seed=42)
        assert result.total_cost <= 0.5 + 1e-9
        assert result.hits_after >= result.hits_before

    def test_deterministic_given_seed(self, evaluator):
        a = random_min_cost_iq(evaluator, 1, 5, euclidean_cost(3), seed=7)
        b = random_min_cost_iq(evaluator, 1, 5, euclidean_cost(3), seed=7)
        assert np.array_equal(a.strategy.vector, b.strategy.vector)

    def test_respects_space(self, evaluator):
        space = StrategySpace(3, lower=np.full(3, -0.2), upper=np.full(3, 0.2))
        result = random_min_cost_iq(evaluator, 0, 10, euclidean_cost(3), space=space, seed=3)
        assert space.contains(result.strategy.vector)

    def test_attempts_bounded(self, evaluator):
        result = random_min_cost_iq(
            evaluator, 0, 25, euclidean_cost(3), attempts=10, seed=0
        )
        assert result.evaluations <= 10

    def test_validation(self, evaluator):
        with pytest.raises(ValidationError):
            random_min_cost_iq(evaluator, 0, 0, euclidean_cost(3))
        with pytest.raises(ValidationError):
            random_max_hit_iq(evaluator, 0, -0.1, euclidean_cost(3))
