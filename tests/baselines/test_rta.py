import numpy as np
import pytest

from repro.baselines.rta import ReverseTopK, RTAEvaluator, rta_min_cost_iq
from repro.core.cost import euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.topk.evaluate import top_k


@pytest.fixture
def world(rng):
    dataset = Dataset(rng.random((20, 3)))
    queries = QuerySet(rng.random((30, 3)), ks=rng.integers(1, 5, 30))
    index = SubdomainIndex(dataset, queries)
    return dataset, queries, index


class TestReverseTopK:
    def test_counts_match_brute_force(self, world, rng):
        dataset, queries, __ = world
        rta = ReverseTopK(dataset.matrix, queries)
        for target in range(0, 20, 4):
            point = dataset.matrix[target]
            expected = 0
            for j in range(queries.m):
                weights, k = queries.query(j)
                if target in top_k(dataset.matrix, weights, k):
                    expected += 1
            assert rta.count_hits(point, exclude=target) == expected

    def test_moved_point_counts(self, world, rng):
        dataset, queries, index = world
        rta = ReverseTopK(dataset.matrix, queries)
        ese = StrategyEvaluator(index)
        target = 3
        for __ in range(10):
            position = dataset.matrix[target] + rng.normal(scale=0.3, size=3)
            assert rta.count_hits(position, exclude=target) == ese.hits(target, position)

    def test_pruning_happens(self, world):
        dataset, queries, __ = world
        rta = ReverseTopK(dataset.matrix, queries)
        # A hopeless point far above everything: most queries get pruned.
        rta.count_hits(np.full(3, 100.0), exclude=0)
        assert rta.pruned_queries > 0
        assert rta.evaluated_queries < queries.m

    def test_no_exclusion(self, world):
        dataset, queries, __ = world
        rta = ReverseTopK(dataset.matrix, queries)
        # Counting an existing object without exclusion treats the point
        # as an additional candidate; it can only do worse than with the
        # duplicate removed.
        with_dup = rta.count_hits(dataset.matrix[0])
        without = rta.count_hits(dataset.matrix[0], exclude=0)
        assert with_dup <= without


class TestRTAEvaluator:
    def test_hits_match_ese(self, world):
        __, __, index = world
        rta = RTAEvaluator(index)
        ese = StrategyEvaluator(index)
        for target in range(0, 20, 5):
            assert rta.hits(target) == ese.hits(target)

    def test_evaluate_many_matches(self, world, rng):
        dataset, __, index = world
        rta = RTAEvaluator(index)
        ese = StrategyEvaluator(index)
        positions = dataset.matrix[2] + rng.normal(scale=0.2, size=(6, 3))
        assert rta.evaluate_many(2, positions).tolist() == ese.evaluate_many(2, positions).tolist()


class TestRTAIQ:
    def test_same_strategy_as_efficient(self, world):
        """The paper: RTA-IQ and Efficient-IQ share the search, so the
        found strategies (and quality) are identical."""
        __, __, index = world
        cost = euclidean_cost(3)
        efficient = min_cost_iq(StrategyEvaluator(index), 1, 12, cost)
        rta = rta_min_cost_iq(index, 1, 12, cost)
        assert rta.satisfied == efficient.satisfied
        assert rta.total_cost == pytest.approx(efficient.total_cost)
        assert np.allclose(rta.strategy.vector, efficient.strategy.vector)
