"""Feedback rules: every auto-choice must cite a recorded stat."""

from dataclasses import dataclass

from repro.observe import (
    StatsStore,
    choose_kernel,
    choose_method,
    knob_advisories,
)
from repro.observe.feedback import FALLBACK_METHOD


@dataclass
class FakeExecuted:
    fingerprint: str = "kind=min_cost|mode=exact|sense=min|d=3|n=32|m=32"
    solver_name: str = "efficient"
    total_seconds: float = 0.002
    evaluations: int = 19
    kernel_backend: str = "python"
    workers: int = 0
    shards: int = 0


FP = FakeExecuted.fingerprint
ALLOWED = ("efficient", "rta", "greedy", "random", "exhaustive")


class TestChooseMethod:
    def test_cold_store_falls_back_with_explicit_note(self):
        choice = choose_method(StatsStore(None), FP, ALLOWED)
        assert choice.value == FALLBACK_METHOD
        assert "no recorded runs" in choice.note
        assert FP in choice.note

    def test_fastest_median_wins_and_note_cites_it(self):
        store = StatsStore(None)
        store.record(FakeExecuted(total_seconds=0.05))
        store.record(FakeExecuted(solver_name="rta", total_seconds=0.01))
        choice = choose_method(store, FP, ALLOWED)
        assert choice.value == "rta"
        assert "auto method=rta" in choice.note
        assert "median" in choice.note and FP in choice.note

    def test_stale_solver_entries_ignored(self):
        store = StatsStore(None)
        store.record(FakeExecuted(solver_name="removed_solver", total_seconds=0.001))
        store.record(FakeExecuted(total_seconds=0.05))
        choice = choose_method(store, FP, ALLOWED)
        assert choice.value == "efficient"

    def test_all_entries_stale_falls_back(self):
        store = StatsStore(None)
        store.record(FakeExecuted(solver_name="gone", total_seconds=0.001))
        choice = choose_method(store, FP, ALLOWED)
        assert choice.value == FALLBACK_METHOD
        assert "no recorded runs" in choice.note


class TestChooseKernel:
    def test_single_backend_yields_no_choice(self):
        store = StatsStore(None)
        store.record(FakeExecuted())
        assert choose_kernel(store, FP, ("python", "native")) is None

    def test_two_backends_pick_fastest_available(self):
        store = StatsStore(None)
        store.record(FakeExecuted(kernel_backend="python", total_seconds=0.05))
        store.record(FakeExecuted(kernel_backend="native", total_seconds=0.01))
        choice = choose_kernel(store, FP, ("python", "native"))
        assert choice is not None and choice.value == "native"
        assert "kernel" in choice.note and FP in choice.note

    def test_fastest_unavailable_backend_not_chosen(self):
        store = StatsStore(None)
        store.record(FakeExecuted(kernel_backend="python", total_seconds=0.05))
        store.record(FakeExecuted(kernel_backend="native", total_seconds=0.01))
        choice = choose_kernel(store, FP, ("python",))
        assert choice is None or choice.value == "python"


class TestKnobAdvisories:
    def test_cold_store_advises_nothing(self):
        assert list(knob_advisories(StatsStore(None), FP)) == []

    def test_single_value_knob_advises_nothing(self):
        store = StatsStore(None)
        store.record(FakeExecuted(workers=0))
        store.record(FakeExecuted(workers=0))
        assert list(knob_advisories(store, FP)) == []

    def test_competing_values_yield_citing_advisory(self):
        store = StatsStore(None)
        store.record(FakeExecuted(workers=0, total_seconds=0.05))
        store.record(FakeExecuted(workers=2, total_seconds=0.01))
        advisories = list(knob_advisories(store, FP))
        assert len(advisories) == 1
        assert "workers=2" in advisories[0].note
        assert "median" in advisories[0].note
