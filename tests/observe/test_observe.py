"""The stage recorder: null path, nesting, and the observing scope."""

import pytest

from repro.observe import (
    COUNTERS,
    STAGES,
    StageRecorder,
    observing,
    stage,
    tally,
)
from repro.observe.stats import _NULL


class TestInactive:
    def test_stage_is_shared_noop_when_inactive(self):
        assert stage("plan") is _NULL
        assert stage("solve") is _NULL

    def test_tally_is_noop_when_inactive(self):
        tally("evaluations")  # must not raise, must not create state
        with stage("candidates"):
            tally("candidates", 5)


class TestRecording:
    def test_stage_seconds_accumulate(self):
        recorder = StageRecorder()
        with observing(recorder):
            with stage("solve"):
                pass
            with stage("solve"):
                pass
        assert recorder.seconds["solve"] > 0.0
        assert recorder.seconds.get("plan", 0.0) == 0.0

    def test_counters_accumulate(self):
        recorder = StageRecorder()
        with observing(recorder):
            tally("evaluations")
            tally("evaluations", 3)
            tally("candidates", 7)
        assert recorder.counts["evaluations"] == 4
        assert recorder.counts["candidates"] == 7

    def test_nested_stages_both_accumulate(self):
        # candidates wraps evaluate in the real hot path; per-stage
        # seconds are honest per-region wall-clock, not exclusive time.
        recorder = StageRecorder()
        with observing(recorder):
            with stage("candidates"):
                with stage("evaluate"):
                    pass
        assert recorder.seconds["candidates"] >= recorder.seconds["evaluate"]
        assert recorder.seconds["evaluate"] > 0.0

    def test_observing_restores_previous_recorder(self):
        outer, inner = StageRecorder(), StageRecorder()
        with observing(outer):
            with observing(inner):
                tally("iterations")
            tally("iterations")
        assert inner.counts["iterations"] == 1
        assert outer.counts["iterations"] == 1

    def test_observing_deactivates_on_exception(self):
        recorder = StageRecorder()
        with pytest.raises(RuntimeError):
            with observing(recorder):
                raise RuntimeError("boom")
        assert stage("plan") is _NULL


class TestVocabulary:
    def test_stage_and_counter_names_are_the_documented_sets(self):
        assert STAGES == ("plan", "candidates", "evaluate", "solve")
        assert COUNTERS == ("candidates", "evaluations", "iterations")
