"""The persisted stats store: recording, medians, caps, persistence."""

import json
from dataclasses import dataclass

import pytest

from repro.observe import StatsStore, configure_store, default_store
from repro.observe.store import MAX_SAMPLES, STATS_SCHEMA


@dataclass
class FakeExecuted:
    """The duck-typed executed-plan surface ``record`` consumes."""

    fingerprint: str = "kind=min_cost|mode=exact|sense=min|d=3|n=32|m=32"
    solver_name: str = "efficient"
    total_seconds: float = 0.002
    evaluations: int = 19
    kernel_backend: str = "python"
    workers: int = 0
    shards: int = 0


class TestRecording:
    def test_record_and_read_back(self):
        store = StatsStore(None)
        store.record(FakeExecuted())
        samples = store.samples(FakeExecuted.fingerprint)
        assert list(samples) == ["efficient"]
        assert samples["efficient"][0]["seconds"] == 0.002
        assert samples["efficient"][0]["kernel"] == "python"

    def test_empty_fingerprint_not_recorded(self):
        store = StatsStore(None)
        store.record(FakeExecuted(fingerprint=""))
        assert store.fingerprints() == []

    def test_sample_cap_keeps_newest(self):
        store = StatsStore(None)
        for i in range(MAX_SAMPLES + 5):
            store.record(FakeExecuted(total_seconds=float(i)))
        samples = store.samples(FakeExecuted.fingerprint)["efficient"]
        assert len(samples) == MAX_SAMPLES
        assert samples[-1]["seconds"] == float(MAX_SAMPLES + 4)
        assert samples[0]["seconds"] == 5.0  # oldest five evicted


class TestMedians:
    def test_method_medians_sorted_fastest_first(self):
        store = StatsStore(None)
        for seconds in (0.03, 0.01, 0.02):
            store.record(FakeExecuted(total_seconds=seconds))
        store.record(FakeExecuted(solver_name="rta", total_seconds=0.001))
        ranked = store.method_medians(FakeExecuted.fingerprint)
        assert [name for name, _, _ in ranked] == ["rta", "efficient"]
        assert ranked[1][1] == 0.02  # median of the three samples
        assert ranked[1][2] == 3

    def test_knob_medians_group_across_methods(self):
        store = StatsStore(None)
        store.record(FakeExecuted(kernel_backend="python", total_seconds=0.02))
        store.record(
            FakeExecuted(
                solver_name="rta", kernel_backend="native", total_seconds=0.01
            )
        )
        ranked = store.knob_medians(FakeExecuted.fingerprint, "kernel")
        assert [value for value, _, _ in ranked] == ["native", "python"]

    def test_unknown_fingerprint_is_empty(self):
        store = StatsStore(None)
        assert store.method_medians("nope") == []
        assert store.knob_medians("nope", "kernel") == []


class TestPersistence:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "stats.json"
        store = StatsStore(path)
        store.record(FakeExecuted())
        reloaded = StatsStore(path)
        assert reloaded.method_medians(FakeExecuted.fingerprint) == store.method_medians(
            FakeExecuted.fingerprint
        )

    def test_foreign_schema_ignored(self, tmp_path):
        path = tmp_path / "stats.json"
        path.write_text(json.dumps({"schema": "other/9", "workloads": {"x": {}}}))
        store = StatsStore(path)
        assert store.fingerprints() == []

    def test_save_writes_schema_tag(self, tmp_path):
        path = tmp_path / "stats.json"
        StatsStore(path).record(FakeExecuted())
        payload = json.loads(path.read_text())
        assert payload["schema"] == STATS_SCHEMA
        assert FakeExecuted.fingerprint in payload["workloads"]

    def test_memory_store_never_touches_disk(self):
        store = StatsStore(None)
        store.record(FakeExecuted())
        store.save()  # no path: must be a no-op, not an error
        assert store.path is None


class TestDefaultStore:
    def test_configure_store_rebinds_the_default(self, tmp_path):
        original = default_store()
        try:
            bound = configure_store(tmp_path / "s.json")
            assert default_store() is bound
            assert str(bound.path) == str(tmp_path / "s.json")
        finally:
            # Restore a fresh memory-only default for test isolation.
            configure_store(None)
        assert default_store() is not original
