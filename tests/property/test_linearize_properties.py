"""Property-based tests for the §5.2-5.3 linearization machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.linearize import GenericSpace, polynomial_family
from repro.topk.evaluate import top_k

positive = st.floats(0.0625, 1.0, allow_nan=False, width=32)


@st.composite
def families(draw):
    d = draw(st.integers(2, 4))
    exponents = []
    for j in range(d):
        exponents.append({j: float(draw(st.integers(1, 5)))})
    return d, polynomial_family(exponents)


class TestLinearizationInvariants:
    @given(fam=families(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_scores_equal_direct_polynomial(self, fam, data):
        d, family = fam
        points = data.draw(arrays(np.float64, (8, d), elements=positive))
        params = data.draw(arrays(np.float64, (d,), elements=positive))
        direct = np.zeros(8)
        for term, w in zip(family.terms, params):
            ((attr, power),) = term.exponents
            direct += w * points[:, attr] ** power
        assert np.allclose(family.score(points, params), direct)

    @given(fam=families(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_topk_invariant_under_linearization(self, fam, data):
        """The heart of §5.2: rankings survive variable substitution."""
        d, family = fam
        points = data.draw(arrays(np.float64, (10, d), elements=positive))
        params = data.draw(arrays(np.float64, (d,), elements=positive))
        augmented = family.augment(points)
        weights = family.map_weights(params)
        direct_scores = family.score(points, params)
        direct_order = np.lexsort((np.arange(10), direct_scores))
        assert top_k(augmented, weights, 4) == [int(i) for i in direct_order[:4]]

    @given(fam=families(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_invert_move_roundtrip(self, fam, data):
        d, family = fam
        point = data.draw(arrays(np.float64, (d,), elements=st.floats(0.25, 1.0, width=32)))
        delta = data.draw(
            arrays(np.float64, (d,), elements=st.floats(0.0, 0.25, width=32))
        )
        move = family.invert_move(point, delta)
        before = family.augment(point[None, :])[0]
        after = family.augment((point + move)[None, :])[0]
        assert np.allclose(after - before, delta, atol=1e-7)


class TestGenericSpaceInvariants:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_family_scores_preserved_in_generic_space(self, data):
        d = data.draw(st.integers(2, 3))
        fam_a = polynomial_family([{j: 1.0} for j in range(d)], name="a")
        fam_b = polynomial_family([{j: 2.0} for j in range(d)], name="b")
        generic = GenericSpace([fam_a, fam_b])
        points = data.draw(arrays(np.float64, (6, d), elements=positive))
        params = data.draw(arrays(np.float64, (d,), elements=positive))
        augmented = generic.augment(points)
        for f_idx, family in enumerate([fam_a, fam_b]):
            via_generic = augmented @ generic.query_weights(f_idx, params)
            assert np.allclose(via_generic, family.score(points, params))
