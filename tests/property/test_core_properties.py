"""Property-based tests for the core invariants the paper relies on."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cost import L1Cost, L2Cost, euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.mincost import min_cost_iq
from repro.core.maxhit import max_hit_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex
from repro.errors import InfeasibleError
from repro.optimize.hit_cost import min_cost_to_hit
from repro.topk.evaluate import top_k

# Grid-quantized values: every score difference is either exactly zero
# (handled by the documented tie rules) or at least 1/1024, far above
# the index's boundary tolerance.  Continuous adversarial inputs within
# ~1e-12 of a hyperplane are outside the library's contract (see the
# ties note in repro/core/subdomain.py).
unit = st.integers(0, 32).map(lambda i: i / 32.0)


def small_world(draw, st_module):
    n = draw(st_module.integers(4, 12))
    m = draw(st_module.integers(3, 10))
    d = draw(st_module.integers(2, 3))
    objects = draw(
        arrays(np.float64, (n, d), elements=unit, unique=False)
    )
    queries = draw(arrays(np.float64, (m, d), elements=unit))
    ks = draw(arrays(np.int64, (m,), elements=st_module.integers(1, 3)))
    return objects, queries, ks


@st.composite
def worlds(draw):
    return small_world(draw, st)


class TestSubdomainInvariant:
    """Paper §3.2: rankings are constant within a subdomain."""

    @given(world=worlds())
    @settings(max_examples=30, deadline=None)
    def test_shared_ranking_per_cell(self, world):
        objects, queries, ks = world
        dataset = Dataset(objects)
        query_set = QuerySet(queries, ks)
        index = SubdomainIndex(dataset, query_set)
        for sub in index.subdomains:
            rankings = {
                tuple(top_k(dataset.matrix, queries[q], objects.shape[0]))
                for q in sub.query_ids
            }
            assert len(rankings) == 1

    @given(world=worlds())
    @settings(max_examples=30, deadline=None)
    def test_hits_equal_brute_force(self, world):
        objects, queries, ks = world
        dataset = Dataset(objects)
        query_set = QuerySet(queries, ks)
        index = SubdomainIndex(dataset, query_set)
        for target in range(objects.shape[0]):
            expected = sum(
                1
                for j in range(queries.shape[0])
                if target in top_k(objects, queries[j], int(ks[j]))
            )
            assert index.hits(target) == expected


class TestESEInvariant:
    """Fact 1: ESE's H equals full re-evaluation for ANY strategy."""

    @given(
        world=worlds(),
        strategy=arrays(
            np.float64,
            (3,),
            elements=st.floats(-1.0, 1.0, allow_nan=False, width=32),
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_evaluate_equals_brute_force(self, world, strategy):
        objects, queries, ks = world
        strategy = strategy[: objects.shape[1]]
        dataset = Dataset(objects)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, QuerySet(queries, ks)))
        target = 0
        moved = objects.copy()
        moved[target] = moved[target] + strategy
        expected = sum(
            1
            for j in range(queries.shape[0])
            if target in top_k(moved, queries[j], int(ks[j]))
        )
        assert evaluator.evaluate(target, strategy) == expected


class TestHitCostProperties:
    @given(
        q=arrays(np.float64, (3,), elements=st.floats(0.015625, 1.0, width=32)),
        gap=st.floats(-2.0, -0.015625, width=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_l2_solution_feasible_and_matches_formula(self, q, gap):
        s = min_cost_to_hit(L2Cost(3), q, gap)
        assert float(q @ s.vector) <= gap
        # Closed form: |gap| / ||q|| (up to the strictness margin).
        assert s.cost <= abs(gap) / np.linalg.norm(q) + 1e-4

    @given(
        q=arrays(np.float64, (3,), elements=st.floats(0.015625, 1.0, width=32)),
        gap=st.floats(-2.0, -0.015625, width=32),
        probe=arrays(np.float64, (3,), elements=st.floats(-3.0, 3.0, width=32)),
    )
    @settings(max_examples=60, deadline=None)
    def test_l2_optimality_vs_random_feasible_points(self, q, gap, probe):
        """No feasible probe may be cheaper than the claimed optimum."""
        s = min_cost_to_hit(L2Cost(3), q, gap)
        if float(q @ probe) <= gap:  # probe is feasible
            assert L2Cost(3)(probe) >= s.cost - 1e-6

    @given(
        q=arrays(np.float64, (2,), elements=st.floats(0.015625, 1.0, width=32)),
        gap=st.floats(-2.0, -0.015625, width=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_l1_never_cheaper_than_l2(self, q, gap):
        l1 = min_cost_to_hit(L1Cost(2), q, gap)
        l2 = min_cost_to_hit(L2Cost(2), q, gap)
        assert l1.cost >= l2.cost - 1e-6


class TestSearchInvariants:
    @given(world=worlds(), tau=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_min_cost_result_is_self_consistent(self, world, tau):
        objects, queries, ks = world
        tau = min(tau, queries.shape[0])
        dataset = Dataset(objects)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, QuerySet(queries, ks)))
        try:
            result = min_cost_iq(evaluator, 0, tau, euclidean_cost(objects.shape[1]))
        except InfeasibleError:
            return
        # Reported hits must match an independent evaluation, and the
        # satisfied flag must be truthful.
        assert result.hits_after == evaluator.evaluate(0, result.strategy.vector)
        assert result.satisfied == (result.hits_after >= tau)
        assert result.total_cost >= 0

    @given(world=worlds(), budget=st.floats(0.0, 2.0, width=32))
    @settings(max_examples=20, deadline=None)
    def test_max_hit_never_overspends_or_regresses(self, world, budget):
        objects, queries, ks = world
        dataset = Dataset(objects)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, QuerySet(queries, ks)))
        result = max_hit_iq(evaluator, 0, budget, euclidean_cost(objects.shape[1]))
        assert result.total_cost <= budget + 1e-9
        assert result.hits_after >= result.hits_before
        assert result.hits_after == evaluator.evaluate(0, result.strategy.vector)
