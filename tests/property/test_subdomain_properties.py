"""Property-based parity of the two ``find_subdomains`` implementations.

The vectorized sign-matrix partition must reproduce the literal BSP loop
of Algorithm 1 *byte for byte*: same signature keys, same member lists —
including points sitting exactly on a hyperplane, which the ``<= EPS``
convention assigns to the non-positive side.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.subdomain import find_subdomains

finite = st.floats(-3.0, 3.0, allow_nan=False, width=32)


def _assert_identical(normals, points):
    literal = find_subdomains(normals, points, method="literal")
    vectorized = find_subdomains(normals, points, method="vectorized")
    assert literal == vectorized


class TestFindSubdomainsParity:
    @given(
        normals=arrays(np.float64, st.tuples(st.integers(0, 6), st.just(3)), elements=finite),
        points=arrays(np.float64, st.tuples(st.integers(0, 24), st.just(3)), elements=finite),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_inputs(self, normals, points):
        _assert_identical(normals, points)

    @given(
        normals=arrays(np.float64, (4, 2), elements=finite),
        points=arrays(np.float64, (12, 2), elements=finite),
        plane=st.integers(0, 3),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_points_exactly_on_a_hyperplane(self, normals, points, plane, data):
        """Project a subset of points onto one hyperplane; the on-plane
        points must land on the ``<= EPS`` side in both implementations."""
        normal = normals[plane]
        norm_sq = float(normal @ normal)
        if norm_sq > 0:
            rows = data.draw(
                st.lists(st.integers(0, points.shape[0] - 1), min_size=1, unique=True)
            )
            for row in rows:
                points[row] = points[row] - (points[row] @ normal / norm_sq) * normal
            assert np.all(np.abs(points[rows] @ normal) < 1e-6)
        _assert_identical(normals, points)

    @given(points=arrays(np.float64, (8, 2), elements=finite))
    @settings(max_examples=30, deadline=None)
    def test_no_hyperplanes_single_cell(self, points):
        for method in ("literal", "vectorized"):
            cells = find_subdomains(np.empty((0, 2)), points, method=method)
            assert list(cells.values()) == [list(range(8))]

    def test_duplicate_points_share_a_cell(self):
        points = np.tile([[0.25, 0.75]], (5, 1))
        normals = np.array([[1.0, -1.0], [0.5, 0.5]])
        _assert_identical(normals, points)
        cells = find_subdomains(normals, points)
        assert list(cells.values()) == [[0, 1, 2, 3, 4]]
