"""Property-based tests for the R-tree: it must behave exactly like a
brute-force list of (point, id) pairs under any operation sequence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.rtree import Rect, RTree

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
points_2d = st.lists(st.tuples(coords, coords), min_size=1, max_size=60)


@st.composite
def box_2d(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect.from_arrays([x1, y1], [x2, y2])


class TestRangeSearch:
    @given(points=points_2d, box=box_2d())
    @settings(max_examples=60, deadline=None)
    def test_search_equals_brute_force(self, points, box):
        tree = RTree(dim=2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        tree.validate()
        expected = sorted(
            i
            for i, (x, y) in enumerate(points)
            if box.mins[0] <= x <= box.maxs[0] and box.mins[1] <= y <= box.maxs[1]
        )
        assert sorted(tree.search(box)) == expected

    @given(points=points_2d)
    @settings(max_examples=40, deadline=None)
    def test_full_box_returns_everything(self, points):
        tree = RTree(dim=2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        everything = Rect.from_arrays([0.0, 0.0], [1.0, 1.0])
        assert sorted(tree.search(everything)) == list(range(len(points)))


class TestDeleteProperties:
    @given(points=points_2d, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_delete_subset_preserves_rest(self, points, data):
        tree = RTree(dim=2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        to_delete = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(points) - 1))
        )
        for i in to_delete:
            assert tree.delete(Rect.point(points[i]), i)
        tree.validate()
        everything = Rect.from_arrays([0.0, 0.0], [1.0, 1.0])
        assert sorted(tree.search(everything)) == sorted(
            set(range(len(points))) - to_delete
        )
        assert len(tree) == len(points) - len(to_delete)


class TestNearestProperties:
    @given(points=points_2d, target=st.tuples(coords, coords), k=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_knn_distance_optimality(self, points, target, k):
        tree = RTree(dim=2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        got = tree.nearest(target, k=k)
        arr = np.asarray(points, dtype=float)
        dists = np.sum((arr - np.asarray(target)) ** 2, axis=1)
        k_eff = min(k, len(points))
        assert len(got) == k_eff
        # The k-th smallest returned distance must equal the true k-th.
        got_d = sorted(float(dists[g]) for g in got)
        true_d = sorted(dists.tolist())[:k_eff]
        assert np.allclose(got_d, true_d)


class TestBulkLoadProperties:
    @given(points=points_2d)
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_valid_and_complete(self, points):
        tree = RTree.bulk_load(2, [(p, i) for i, p in enumerate(points)], max_entries=4)
        tree.validate()
        everything = Rect.from_arrays([0.0, 0.0], [1.0, 1.0])
        assert sorted(tree.search(everything)) == list(range(len(points)))
