"""Property-based tests for the substrate layers."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import InfeasibleError, UnboundedError
from repro.index.bloom import CountingBloomFilter
from repro.index.skyline import dominates, skyline, skyline_layers
from repro.optimize.simplex import linprog
from repro.topk.evaluate import top_k, top_k_heap

finite = st.floats(-5.0, 5.0, allow_nan=False, width=32)
unit = st.floats(0.0, 1.0, allow_nan=False, width=32)


class TestSimplexProperties:
    @given(
        c=arrays(np.float64, (3,), elements=finite),
        a=arrays(np.float64, (2, 3), elements=finite),
        x0=arrays(np.float64, (3,), elements=unit),
        slack=arrays(np.float64, (2,), elements=unit),
    )
    @settings(max_examples=60, deadline=None)
    def test_solution_feasible_and_no_worse_than_witness(self, c, a, x0, slack):
        """Construct a feasible boxed LP around witness x0: the solver's
        answer must be feasible and at least as good as the witness."""
        b = a @ x0 + slack
        bounds = [(0.0, 1.0)] * 3
        try:
            result = linprog(c, a_ub=a, b_ub=b, bounds=bounds)
        except (InfeasibleError, UnboundedError):  # pragma: no cover
            raise AssertionError("a witnessed-feasible boxed LP cannot fail")
        assert np.all(a @ result.x <= b + 1e-6)
        assert np.all(result.x >= -1e-6) and np.all(result.x <= 1 + 1e-6)
        assert result.fun <= float(c @ x0) + 1e-6

    @given(
        c=arrays(np.float64, (2,), elements=finite),
        shift=st.floats(0.125, 2.0, width=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_objective_shift_invariance(self, c, shift):
        """Scaling the objective scales the optimum."""
        bounds = [(0.0, 1.0)] * 2
        base = linprog(c, bounds=bounds)
        scaled = linprog(c * shift, bounds=bounds)
        assert scaled.fun == pytest.approx(base.fun * shift, abs=1e-7)


import pytest  # noqa: E402  (used by approx above)


class TestTopKProperties:
    @given(
        objects=arrays(np.float64, (12, 3), elements=unit),
        weights=arrays(np.float64, (3,), elements=unit),
        k=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_heap_equals_sort(self, objects, weights, k):
        assert top_k(objects, weights, k) == top_k_heap(objects, weights, k)

    @given(
        objects=arrays(np.float64, (10, 2), elements=unit),
        weights=arrays(np.float64, (2,), elements=unit),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_prefix_property(self, objects, weights):
        """top_(k) is always a prefix of top_(k+1)."""
        for k in range(1, 10):
            assert top_k(objects, weights, k) == top_k(objects, weights, k + 1)[:k]

    @given(
        objects=arrays(np.float64, (8, 2), elements=unit),
        weights=arrays(np.float64, (2,), elements=unit),
    )
    @settings(max_examples=40, deadline=None)
    def test_scores_nondecreasing_along_ranking(self, objects, weights):
        order = top_k(objects, weights, 8)
        scores = objects @ weights
        ranked = [scores[i] for i in order]
        assert all(a <= b + 1e-12 for a, b in zip(ranked, ranked[1:]))


class TestSkylineProperties:
    @given(objects=arrays(np.float64, (15, 3), elements=unit))
    @settings(max_examples=40, deadline=None)
    def test_skyline_members_undominated(self, objects):
        for idx in skyline(objects):
            assert not any(
                dominates(objects[j], objects[idx])
                for j in range(objects.shape[0])
                if j != idx
            )

    @given(objects=arrays(np.float64, (15, 2), elements=unit))
    @settings(max_examples=40, deadline=None)
    def test_non_members_dominated(self, objects):
        members = set(skyline(objects).tolist())
        for idx in range(objects.shape[0]):
            if idx not in members:
                assert any(
                    dominates(objects[j], objects[idx]) for j in members
                )

    @given(objects=arrays(np.float64, (12, 2), elements=unit))
    @settings(max_examples=30, deadline=None)
    def test_layers_partition_and_nest(self, objects):
        layers = skyline_layers(objects)
        combined = sorted(int(i) for layer in layers for i in layer)
        assert combined == list(range(objects.shape[0]))


class TestBloomProperties:
    @given(items=st.lists(st.text(max_size=12), min_size=1, max_size=80, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_ever(self, items):
        bloom = CountingBloomFilter(expected_items=max(16, len(items)))
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    @given(
        items=st.lists(st.text(max_size=12), min_size=2, max_size=40, unique=True),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_remove_only_affects_removed(self, items, data):
        bloom = CountingBloomFilter(expected_items=max(16, len(items)))
        for item in items:
            bloom.add(item)
        victim = data.draw(st.sampled_from(items))
        assume(bloom.remove(victim))
        survivors = [i for i in items if i != victim]
        assert all(item in bloom for item in survivors)
