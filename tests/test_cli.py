"""Tests for the command-line analytic tool."""

import io
import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def market_files(tmp_path, rng):
    objects = tmp_path / "objects.csv"
    rows = ["price,mpg,seats"]
    for row in rng.random((25, 3)).round(4):
        rows.append(f"{row[0]},{row[1]},{row[2]}")
    objects.write_text("\n".join(rows) + "\n")

    queries = tmp_path / "queries.csv"
    rows = ["w_price,w_mpg,w_seats,k"]
    for row in rng.random((15, 3)).round(4):
        rows.append(f"{row[0]},{row[1]},{row[2]},2")
    queries.write_text("\n".join(rows) + "\n")
    return str(objects), str(queries)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestImprove:
    def test_min_cost_run(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["improve", objects, queries, "--target", "3", "--reach", "5"]
        )
        assert code == 0
        assert "satisfied True" in out
        assert "cost" in out

    def test_max_hit_run(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["improve", objects, queries, "--target", "3", "--budget", "0.5", "--cost", "L1"]
        )
        assert code == 0
        assert "hits" in out

    def test_adjust_and_freeze(self, market_files):
        objects, queries = market_files
        code, out = run(
            [
                "improve", objects, queries, "--target", "0", "--reach", "4",
                "--adjust", "price:-1:0", "--adjust", "mpg:-1:1", "--freeze", "seats",
            ]
        )
        assert code in (0, 2)
        assert "seats" not in [line.split()[1] for line in out.splitlines() if "adjust" in line]

    def test_multi_target(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["improve", objects, queries, "--target", "1", "--target", "4", "--reach", "6"]
        )
        assert code == 0
        assert "joint hits" in out

    def test_unsatisfiable_returns_2(self, market_files):
        objects, queries = market_files
        code, out = run(
            [
                "improve", objects, queries, "--target", "0", "--reach", "15",
                "--adjust", "price:0:0",  # everything frozen
            ]
        )
        assert code == 2
        assert "satisfied False" in out

    def test_bad_column_errors(self, market_files):
        objects, queries = market_files
        code, __ = run(
            ["improve", objects, queries, "--target", "0", "--reach", "3",
             "--adjust", "bogus:-1:1"]
        )
        assert code == 1

    def test_dimension_mismatch_errors(self, market_files, tmp_path):
        objects, __ = market_files
        bad = tmp_path / "bad_queries.csv"
        bad.write_text("w1,k\n0.5,1\n0.4,2\n")
        code, __ = run(["improve", objects, str(bad), "--target", "0", "--reach", "2"])
        assert code == 1


class TestHitsAndDemo:
    def test_hits_report(self, market_files):
        objects, queries = market_files
        code, out = run(["hits", objects, queries, "--top", "5"])
        assert code == 0
        assert "of 15 queries" in out
        assert len([l for l in out.splitlines() if l.strip() and l.split()[0].isdigit()]) == 5

    def test_demo_runs(self):
        code, out = run(["demo", "--seed", "1"])
        assert code == 0
        assert "min-cost" in out and "max-hit" in out

    def test_bench_smoke(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        code = main(["bench", "--smoke", "--out", str(path)])
        assert code == 0
        assert path.exists()
        printed = capsys.readouterr().out
        assert "fig4" in printed and "speedup" in printed


class TestServe:
    def write_requests(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_serve_jsonl_batch(self, market_files, tmp_path, capsys):
        objects, queries = market_files
        lines = [
            json.dumps({"id": i, "kind": "min_cost", "target": i, "goal": 4})
            for i in range(3)
        ]
        lines.append(json.dumps({"op": "shutdown"}))
        code, out = run(
            ["serve", objects, queries, "--input",
             self.write_requests(tmp_path, lines), "--workers", "2"]
        )
        assert code == 0
        answered = [json.loads(line) for line in out.splitlines()]
        ids = sorted(r["id"] for r in answered if "id" in r)
        assert ids == [0, 1, 2]
        assert all(r["ok"] for r in answered)
        assert "serve:" in capsys.readouterr().err  # summary goes to stderr

    def test_serve_reports_errors_inline(self, market_files, tmp_path):
        objects, queries = market_files
        lines = [
            json.dumps({"id": 0, "kind": "bogus", "target": 0, "goal": 1}),
            json.dumps({"id": 1, "kind": "max_hit", "target": 1, "goal": 0.5}),
        ]
        code, out = run(
            ["serve", objects, queries, "--input",
             self.write_requests(tmp_path, lines)]
        )
        assert code == 0
        answered = {r["id"]: r for r in [json.loads(line) for line in out.splitlines()]}
        assert answered[0]["ok"] is False
        assert answered[1]["ok"] is True

    def test_serve_honors_batch_and_queue_flags(self, market_files, tmp_path):
        objects, queries = market_files
        lines = [
            json.dumps({"id": i, "kind": "min_cost", "target": i, "goal": 3})
            for i in range(4)
        ]
        code, out = run(
            ["serve", objects, queries, "--input",
             self.write_requests(tmp_path, lines),
             "--batch-size", "2", "--max-queue", "8"]
        )
        assert code == 0
        assert len(out.splitlines()) == 4


class TestParser:
    def test_requires_goal(self, market_files, capsys):
        objects, queries = market_files
        with pytest.raises(SystemExit):
            main(["improve", objects, queries, "--target", "0"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExplain:
    def test_explain_prints_plan_without_running(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["explain", objects, queries, "--target", "3", "--reach", "5",
             "--method", "rta"]
        )
        assert code == 0
        assert "kind" in out and "min_cost" in out
        assert "solver" in out and "rta" in out
        assert "epoch" in out
        assert "satisfied" not in out  # nothing executed

    def test_explain_multiple_targets(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["explain", objects, queries, "--target", "0", "--target", "1",
             "--budget", "0.5"]
        )
        assert code == 0
        kinds = [l for l in out.splitlines() if l.startswith("kind")]
        assert len(kinds) == 2 and all("max_hit" in l for l in kinds)
        # Multi-target EXPLAIN plans the joint combinatorial loop now.
        assert out.count("joint greedy loop") == 2

    def test_explain_shows_internalized_space(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["explain", objects, queries, "--target", "0", "--reach", "4",
             "--adjust", "price:-1:0"]
        )
        assert code == 0
        assert "box(" in out

    def test_explain_rejects_unknown_method(self, market_files):
        objects, queries = market_files
        with pytest.raises(SystemExit):
            run(["explain", objects, queries, "--target", "0", "--reach", "4",
                 "--method", "quantum"])


class TestExplainAnalyze:
    def test_analyze_prints_observed_stats(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["explain", objects, queries, "--target", "3", "--reach", "5",
             "--analyze"]
        )
        assert code == 0
        assert "total_seconds" in out and "fingerprint" in out
        assert "candidates_generated" in out
        timing = [l for l in out.splitlines() if l.startswith("total_seconds")]
        assert float(timing[0].split()[-1]) > 0.0

    def test_plain_explain_has_no_observations(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["explain", objects, queries, "--target", "3", "--reach", "5"]
        )
        assert code == 0
        assert "total_seconds" not in out

    def test_analyze_multi_target_one_plan_per_target(self, market_files):
        objects, queries = market_files
        code, out = run(
            ["explain", objects, queries, "--target", "0", "--target", "1",
             "--reach", "4", "--analyze"]
        )
        assert code == 0
        assert out.count("total_seconds") == 2
        assert out.count("joint greedy loop") == 2

    def test_stats_file_feeds_method_auto(self, market_files, tmp_path):
        from repro.observe import configure_store

        objects, queries = market_files
        stats = str(tmp_path / "stats.json")
        try:
            code, _ = run(
                ["explain", objects, queries, "--target", "3", "--reach", "5",
                 "--method", "rta", "--analyze", "--stats", stats]
            )
            assert code == 0
            # A later auto-planned run must cite the recorded rta median.
            code, out = run(
                ["explain", objects, queries, "--target", "3", "--reach", "5",
                 "--method", "auto", "--stats", stats]
            )
            assert code == 0
            assert "auto method=rta" in out
            assert "median" in out
        finally:
            configure_store(None)  # unbind the file store from this process

    def test_method_auto_cold_store_falls_back(self, market_files):
        from repro.observe import configure_store

        objects, queries = market_files
        configure_store(None)
        try:
            code, out = run(
                ["explain", objects, queries, "--target", "3", "--reach", "5",
                 "--method", "auto"]
            )
            assert code == 0
            assert "efficient" in out
            assert "no recorded runs" in out
        finally:
            configure_store(None)
