"""Meta-tests over the package surface: exports exist and are documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.core",
    "repro.baselines",
    "repro.index",
    "repro.topk",
    "repro.geometry",
    "repro.optimize",
    "repro.data",
    "repro.dbms",
    "repro.bench",
    "repro.rankaware",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def iter_public_objects():
    package = repro
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        module = importlib.import_module(info.name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield f"{info.name}.{name}", obj


def test_every_public_item_has_a_docstring():
    undocumented = [
        qualified
        for qualified, obj in iter_public_objects()
        if not (inspect.getdoc(obj) or "").strip()
    ]
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_every_module_has_a_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_document_their_methods():
    """Public (non-underscore) methods of public classes are documented."""
    undocumented = []
    for qualified, obj in iter_public_objects():
        if not inspect.isclass(obj):
            continue
        for name, member in inspect.getmembers(obj, predicate=inspect.isfunction):
            if name.startswith("_") or member.__qualname__.split(".")[0] != obj.__name__:
                continue
            if not (inspect.getdoc(member) or "").strip():
                undocumented.append(f"{qualified}.{name}")
    assert not undocumented, f"undocumented methods: {undocumented}"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"
