import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topk.evaluate import top_k
from repro.topk.threshold import SortedListsIndex


class TestTA:
    def test_matches_brute_force(self, rng):
        objects = rng.random((200, 3))
        index = SortedListsIndex(objects)
        for __ in range(20):
            weights = rng.random(3) + 0.01
            k = int(rng.integers(1, 15))
            result = index.top_k(weights, k)
            assert result.ids == top_k(objects, weights, k)

    def test_early_termination_saves_accesses(self, rng):
        # Correlated data lets TA stop early: sequential accesses should
        # be well below the full n*d scan.
        base = rng.random(500)
        objects = np.column_stack([base, base + rng.normal(0, 0.01, 500)])
        index = SortedListsIndex(objects)
        result = index.top_k(np.array([0.5, 0.5]), 5)
        assert result.ids == top_k(objects, np.array([0.5, 0.5]), 5)
        assert result.sequential_accesses < 500 * 2

    def test_zero_weights_handled(self, rng):
        objects = rng.random((20, 2))
        index = SortedListsIndex(objects)
        result = index.top_k(np.array([0.0, 0.0]), 3)
        assert result.ids == [0, 1, 2]  # all scores zero, tie-break by id

    def test_single_attribute_weight(self, rng):
        objects = rng.random((50, 3))
        index = SortedListsIndex(objects)
        weights = np.array([0.0, 1.0, 0.0])
        assert index.top_k(weights, 4).ids == top_k(objects, weights, 4)

    def test_k_exceeds_n(self, rng):
        objects = rng.random((6, 2))
        index = SortedListsIndex(objects)
        result = index.top_k(np.array([0.4, 0.6]), 100)
        assert result.ids == top_k(objects, np.array([0.4, 0.6]), 6)

    def test_validation(self, rng):
        index = SortedListsIndex(rng.random((10, 2)))
        with pytest.raises(ValidationError):
            index.top_k(np.array([0.5]), 2)
        with pytest.raises(ValidationError):
            index.top_k(np.array([-0.1, 0.5]), 2)
        with pytest.raises(ValidationError):
            index.top_k(np.array([0.5, 0.5]), 0)
        with pytest.raises(ValidationError):
            SortedListsIndex(np.empty((0, 2)))

    def test_access_counters_positive(self, rng):
        index = SortedListsIndex(rng.random((30, 2)))
        result = index.top_k(np.array([0.5, 0.5]), 3)
        assert result.sequential_accesses > 0
        assert result.random_accesses >= 3
