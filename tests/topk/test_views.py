import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topk.evaluate import top_k
from repro.topk.views import ViewIndex


class TestCorrectness:
    def test_matches_brute_force(self, rng):
        objects = rng.random((150, 3))
        index = ViewIndex(objects)
        for __ in range(25):
            weights = rng.random(3) + 0.01
            k = int(rng.integers(1, 12))
            answer = index.top_k(weights, k)
            assert answer.ids == top_k(objects, weights, k)

    def test_query_equal_to_view_scans_k(self, rng):
        objects = rng.random((200, 2))
        views = np.array([[0.5, 0.5]])
        index = ViewIndex(objects, views=views)
        answer = index.top_k(np.array([0.5, 0.5]), 5)
        assert answer.ids == top_k(objects, np.array([0.5, 0.5]), 5)
        # min_ratio == 1: the watermark fires almost immediately.
        assert answer.scanned <= 10

    def test_early_termination_generally(self, rng):
        objects = rng.random((400, 3))
        index = ViewIndex(objects)
        total_scanned = 0
        for __ in range(10):
            weights = rng.random(3) + 0.2  # bounded away from zero
            answer = index.top_k(weights, 5)
            total_scanned += answer.scanned
        assert total_scanned < 10 * 400  # must beat the full scans

    def test_zero_weight_degrades_to_full_scan_but_correct(self, rng):
        objects = rng.random((50, 2))
        index = ViewIndex(objects)
        weights = np.array([0.0, 1.0])
        answer = index.top_k(weights, 3)
        assert answer.ids == top_k(objects, weights, 3)
        assert answer.scanned == 50  # min_ratio = 0: no sound early stop

    def test_k_exceeds_n(self, rng):
        objects = rng.random((6, 2))
        index = ViewIndex(objects)
        answer = index.top_k(np.array([0.5, 0.5]), 100)
        assert answer.ids == top_k(objects, np.array([0.5, 0.5]), 6)


class TestViewSelection:
    def test_best_view_prefers_similar_direction(self, rng):
        objects = rng.random((20, 2))
        views = np.array([[1.0, 0.1], [0.1, 1.0]])
        index = ViewIndex(objects, views=views)
        assert index.best_view(np.array([0.9, 0.1])) == 0
        assert index.best_view(np.array([0.1, 0.9])) == 1

    def test_answer_reports_view(self, rng):
        objects = rng.random((20, 2))
        views = np.array([[1.0, 0.1], [0.1, 1.0]])
        index = ViewIndex(objects, views=views)
        assert index.top_k(np.array([0.9, 0.1]), 2).view == 0


class TestValidation:
    def test_negative_objects_rejected(self):
        with pytest.raises(ValidationError):
            ViewIndex(np.array([[-1.0, 0.0]]))

    def test_nonpositive_views_rejected(self, rng):
        with pytest.raises(ValidationError):
            ViewIndex(rng.random((5, 2)), views=np.array([[1.0, 0.0]]))

    def test_bad_query_inputs(self, rng):
        index = ViewIndex(rng.random((5, 2)))
        with pytest.raises(ValidationError):
            index.top_k(np.array([0.5]), 1)
        with pytest.raises(ValidationError):
            index.top_k(np.array([-0.5, 0.5]), 1)
        with pytest.raises(ValidationError):
            index.top_k(np.array([0.5, 0.5]), 0)

    def test_memory_estimate_positive(self, rng):
        assert ViewIndex(rng.random((5, 2))).memory_estimate() > 0
