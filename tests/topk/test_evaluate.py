import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topk.evaluate import kth_score, rank_of, scores, top_k, top_k_heap


class TestScores:
    def test_linear_scores(self):
        objects = np.array([[1.0, 2.0], [3.0, 0.0]])
        weights = np.array([0.5, 0.5])
        assert scores(objects, weights).tolist() == [1.5, 1.5]

    def test_shape_checks(self):
        with pytest.raises(ValidationError):
            scores(np.ones(3), np.ones(3))
        with pytest.raises(ValidationError):
            scores(np.ones((2, 3)), np.ones(2))


class TestTopK:
    def test_lowest_scores_win(self):
        objects = np.array([[3.0], [1.0], [2.0]])
        assert top_k(objects, np.array([1.0]), 2) == [1, 2]

    def test_ties_broken_by_id(self):
        objects = np.array([[1.0], [1.0], [0.5]])
        assert top_k(objects, np.array([1.0]), 2) == [2, 0]

    def test_k_capped_at_n(self):
        objects = np.array([[1.0], [2.0]])
        assert top_k(objects, np.array([1.0]), 10) == [0, 1]

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            top_k(np.ones((2, 1)), np.ones(1), 0)

    def test_heap_variant_matches(self, rng):
        objects = rng.random((100, 4))
        for __ in range(10):
            weights = rng.random(4)
            k = int(rng.integers(1, 20))
            assert top_k_heap(objects, weights, k) == top_k(objects, weights, k)

    def test_heap_partition_path_ties_broken_by_id(self, rng):
        # Large n triggers the argpartition fast path; massive score
        # duplication forces the id tie-break at the k-th slot.
        values = rng.integers(0, 5, size=200).astype(float)
        objects = values[:, None]
        weights = np.ones(1)
        for k in (1, 3, 17, 64, 199):
            assert top_k_heap(objects, weights, k) == top_k(objects, weights, k)

    def test_heap_all_scores_identical(self):
        objects = np.zeros((150, 2))
        weights = np.array([0.3, 0.7])
        assert top_k_heap(objects, weights, 10) == list(range(10))

    def test_heap_small_input_keeps_heap_path(self, rng):
        objects = rng.integers(0, 3, size=(20, 1)).astype(float)
        for k in (1, 5, 19):
            assert top_k_heap(objects, np.ones(1), k) == top_k(objects, np.ones(1), k)

    def test_heap_k_equals_n_on_large_input(self, rng):
        objects = rng.integers(0, 4, size=(128, 1)).astype(float)
        assert top_k_heap(objects, np.ones(1), 128) == top_k(objects, np.ones(1), 128)

    def test_paper_camera_example(self):
        # Figure 1 of the paper, converted to min-convention by negation.
        # q1: 5.0*res + 3.5*storage - 0.05*price, k=1 (higher is better).
        cameras = np.array([[10.0, 2.0, 250.0], [12.0, 4.0, 340.0]])
        q1 = -np.array([5.0, 3.5, -0.05])  # negate for min-convention
        # p2 wins q1 before improvement: 5*12+3.5*4-0.05*340 = 57 > 44.5
        assert top_k(cameras, q1, 1) == [1]
        # Applying s = (5, 2, -50) to p1 makes p1' = (15, 4, 200) win.
        improved = cameras.copy()
        improved[0] += np.array([5.0, 2.0, -50.0])
        assert top_k(improved, q1, 1) == [0]


class TestRankOf:
    def test_rank_positions(self):
        objects = np.array([[1.0], [3.0], [2.0]])
        weights = np.array([1.0])
        assert rank_of(objects, weights, 0) == 1
        assert rank_of(objects, weights, 2) == 2
        assert rank_of(objects, weights, 1) == 3

    def test_tie_rank_respects_id_order(self):
        objects = np.array([[1.0], [1.0]])
        weights = np.array([1.0])
        assert rank_of(objects, weights, 0) == 1
        assert rank_of(objects, weights, 1) == 2

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            rank_of(np.ones((2, 1)), np.ones(1), 5)


class TestKthScore:
    def test_threshold_identity(self):
        objects = np.array([[1.0], [2.0], [3.0]])
        weights = np.array([1.0])
        score, obj = kth_score(objects, weights, 2)
        assert (score, obj) == (2.0, 1)

    def test_exclude_target(self):
        objects = np.array([[1.0], [2.0], [3.0]])
        weights = np.array([1.0])
        # Excluding the best object shifts the threshold.
        score, obj = kth_score(objects, weights, 1, exclude=0)
        assert (score, obj) == (2.0, 1)

    def test_too_few_objects_gives_infinity(self):
        objects = np.array([[1.0]])
        score, obj = kth_score(objects, np.array([1.0]), 1, exclude=0)
        assert score == float("inf") and obj == -1

    def test_matches_topk(self, rng):
        objects = rng.random((50, 3))
        weights = rng.random(3)
        for k in (1, 5, 20):
            __, obj = kth_score(objects, weights, k)
            assert obj == top_k(objects, weights, k)[-1]
