import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topk.evaluate import top_k
from repro.topk.onion import OnionIndex, convex_hull_2d


class TestConvexHull:
    def test_square(self):
        points = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]])
        hull = convex_hull_2d(points)
        assert hull.tolist() == [0, 1, 2, 3]

    def test_collinear_points_kept(self):
        points = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0], [0.5, 1.0]])
        hull = convex_hull_2d(points)
        assert 1 in hull  # the mid-edge point can win ties

    def test_all_identical(self):
        points = np.tile([0.3, 0.7], (4, 1))
        hull = convex_hull_2d(points)
        assert hull.size >= 1

    def test_tiny_inputs(self):
        assert convex_hull_2d(np.array([[1.0, 2.0]])).tolist() == [0]
        assert convex_hull_2d(np.array([[1.0, 2.0], [3.0, 4.0]])).tolist() == [0, 1]

    def test_hull_contains_extremes(self, rng):
        points = rng.random((50, 2))
        hull = set(convex_hull_2d(points).tolist())
        assert int(np.argmin(points[:, 0])) in hull
        assert int(np.argmax(points[:, 0])) in hull
        assert int(np.argmin(points[:, 1])) in hull
        assert int(np.argmax(points[:, 1])) in hull

    def test_bad_shape(self):
        with pytest.raises(ValidationError):
            convex_hull_2d(np.ones((3, 3)))


class TestOnionIndex:
    def test_layers_partition(self, rng):
        index = OnionIndex(rng.random((60, 2)))
        index.validate()
        assert index.num_layers >= 2

    def test_topk_matches_brute_force(self, rng):
        objects = rng.random((80, 2))
        index = OnionIndex(objects)
        for __ in range(20):
            weights = rng.normal(size=2)  # any sign allowed
            k = int(rng.integers(1, 8))
            assert index.top_k(weights, k) == top_k(objects, weights, k)

    def test_negative_weights_supported(self, rng):
        """The onion's advantage over dominance structures."""
        objects = rng.random((40, 2))
        index = OnionIndex(objects)
        weights = np.array([-1.0, -0.5])
        assert index.top_k(weights, 3) == top_k(objects, weights, 3)

    def test_candidate_set_grows_with_k(self, rng):
        index = OnionIndex(rng.random((60, 2)))
        assert index.candidates(1).size <= index.candidates(2).size
        assert index.candidates(1).size < 60  # selective at k=1

    def test_high_dimensional_fallback_correct(self, rng):
        objects = rng.random((30, 4))
        index = OnionIndex(objects)
        assert index.num_layers == 1
        weights = rng.random(4)
        assert index.top_k(weights, 5) == top_k(objects, weights, 5)

    def test_validation(self, rng):
        index = OnionIndex(rng.random((10, 2)))
        with pytest.raises(ValidationError):
            index.top_k(np.ones(3), 2)
        with pytest.raises(ValidationError):
            index.candidates(0)
        with pytest.raises(ValidationError):
            OnionIndex(np.empty((0, 2)))
