import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geometry.halfspace import HalfspaceRegion, chebyshev_center
from repro.geometry.hyperplane import Hyperplane


def region_2d():
    return HalfspaceRegion(dim=2)


class TestHalfspaceRegion:
    def test_whole_box_not_empty(self):
        region = region_2d()
        assert not region.is_empty()
        witness = region.witness()
        assert witness is not None
        assert region.contains(witness)

    def test_single_halfspace(self):
        # q . (1, 1) <= 0 within [0,1]^2: only the origin qualifies.
        region = region_2d().add(Hyperplane(np.array([1.0, 1.0])), side=1)
        assert not region.is_empty()  # the origin is in the box
        # Below side: q . (1,1) > 0 — most of the box.
        below = region_2d().add(Hyperplane(np.array([1.0, 1.0])), side=-1)
        assert not below.is_empty()
        assert below.contains([0.5, 0.5])
        assert not below.contains([0.0, 0.0])

    def test_contradictory_halfspaces_empty(self):
        h = Hyperplane(np.array([1.0, -1.0]))
        region = region_2d().add(h, side=1).add(h, side=-1)
        assert region.is_empty()
        assert region.witness() is None

    def test_empty_by_accumulation(self):
        # q1 - q2 > 0 and q2 - q1 > 0 cannot hold together.
        region = (
            region_2d()
            .add(Hyperplane(np.array([1.0, -1.0])), side=-1)
            .add(Hyperplane(np.array([-1.0, 1.0])), side=-1)
        )
        assert region.is_empty()

    def test_add_does_not_mutate_original(self):
        region = region_2d()
        child = region.add(Hyperplane(np.array([1.0, 0.0])), side=1)
        assert len(region.constraints) == 0
        assert len(child.constraints) == 1

    def test_invalid_side_raises(self):
        with pytest.raises(ValidationError):
            region_2d().add(Hyperplane(np.array([1.0, 0.0])), side=0)

    def test_invalid_dim_raises(self):
        with pytest.raises(ValidationError):
            HalfspaceRegion(dim=0)

    def test_contains_respects_box(self):
        region = region_2d()
        assert region.contains([0.5, 0.5])
        assert not region.contains([1.5, 0.5])
        assert not region.contains([-0.1, 0.5])

    def test_boundary_point_counts_as_above(self):
        h = Hyperplane(np.array([1.0, -1.0]))
        above = region_2d().add(h, side=1)
        assert above.contains([0.5, 0.5])  # exactly on the hyperplane

    def test_custom_box(self):
        region = HalfspaceRegion(dim=1, lower=np.array([2.0]), upper=np.array([3.0]))
        assert region.contains([2.5])
        assert not region.contains([1.0])


class TestChebyshevCenter:
    def test_center_of_unit_box(self):
        center, radius = chebyshev_center(region_2d())
        assert center == pytest.approx([0.5, 0.5])
        assert radius == pytest.approx(0.5)

    def test_center_inside_constrained_region(self, rng):
        # Random wedge regions: the center must satisfy every constraint.
        for __ in range(10):
            region = HalfspaceRegion(dim=3)
            point = rng.random(3)  # ensure non-emptiness through this point
            for __ in range(4):
                normal = rng.normal(size=3)
                side = 1 if float(point @ normal) <= 0 else -1
                region = region.add(Hyperplane(normal), side)
            center, radius = chebyshev_center(region)
            assert radius >= 0
            assert region.contains(center, tol=1e-6)
