import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geometry.plane_sweep import (
    Segment,
    brute_force_intersections,
    find_intersections,
    segment_intersection,
)


class TestSegment:
    def test_endpoint_normalization(self):
        s = Segment.make((1.0, 1.0), (0.0, 0.0))
        assert s.left == (0.0, 0.0) and s.right == (1.0, 1.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValidationError):
            Segment.make((1.0, 1.0), (1.0, 1.0))

    def test_y_at(self):
        s = Segment.make((0.0, 0.0), (2.0, 4.0))
        assert s.y_at(1.0) == pytest.approx(2.0)

    def test_vertical_detection(self):
        assert Segment.make((1.0, 0.0), (1.0, 5.0)).is_vertical()
        with pytest.raises(ValidationError):
            Segment.make((1.0, 0.0), (1.0, 5.0)).y_at(1.0)


class TestSegmentIntersection:
    def test_crossing(self):
        s = Segment.make((0.0, 0.0), (1.0, 1.0))
        t = Segment.make((0.0, 1.0), (1.0, 0.0))
        point = segment_intersection(s, t)
        assert point == pytest.approx((0.5, 0.5))

    def test_parallel_none(self):
        s = Segment.make((0.0, 0.0), (1.0, 1.0))
        t = Segment.make((0.0, 0.5), (1.0, 1.5))
        assert segment_intersection(s, t) is None

    def test_non_overlapping_lines_cross_outside(self):
        s = Segment.make((0.0, 0.0), (1.0, 1.0))
        t = Segment.make((2.0, 3.0), (3.0, 2.0))
        assert segment_intersection(s, t) is None


class TestSweepAgainstBruteForce:
    @staticmethod
    def _normalize(results):
        return sorted((round(x, 9), round(y, 9), i, j) for x, y, i, j in results)

    def test_classic_cross(self):
        segments = [
            Segment.make((0.0, 0.0), (1.0, 1.0)),
            Segment.make((0.0, 1.0), (1.0, 0.0)),
        ]
        out = find_intersections(segments)
        assert len(out) == 1
        assert out[0][:2] == pytest.approx((0.5, 0.5))

    def test_no_intersections(self):
        segments = [
            Segment.make((0.0, 0.0), (1.0, 0.1)),
            Segment.make((0.0, 1.0), (1.0, 1.1)),
        ]
        assert find_intersections(segments) == []

    def test_random_segments_match_brute_force(self, rng):
        for trial in range(15):
            segments = []
            for __ in range(12):
                p1 = rng.random(2) * 10
                p2 = rng.random(2) * 10
                if np.allclose(p1, p2):
                    continue
                segments.append(Segment.make(p1, p2))
            sweep = self._normalize(find_intersections(segments))
            brute = self._normalize(brute_force_intersections(segments))
            assert sweep == brute, f"trial {trial}"

    def test_vertical_falls_back(self):
        segments = [
            Segment.make((0.5, -1.0), (0.5, 1.0)),  # vertical
            Segment.make((0.0, 0.0), (1.0, 0.0)),
        ]
        out = find_intersections(segments)
        assert len(out) == 1
        assert out[0][:2] == pytest.approx((0.5, 0.0))

    def test_shared_endpoint_falls_back(self):
        segments = [
            Segment.make((0.0, 0.0), (1.0, 1.0)),
            Segment.make((0.0, 0.0), (1.0, -1.0)),
            Segment.make((0.0, -0.5), (1.0, 0.5)),
        ]
        sweep = self._normalize(find_intersections(segments))
        brute = self._normalize(brute_force_intersections(segments))
        assert sweep == brute

    def test_many_lines_through_grid(self, rng):
        # Lines restricted to a box, like hyperplane traces in 2-D domain.
        segments = []
        for __ in range(20):
            slope = rng.normal()
            intercept = rng.random()
            segments.append(
                Segment.make((0.0, intercept), (1.0, intercept + slope))
            )
        sweep = self._normalize(find_intersections(segments))
        brute = self._normalize(brute_force_intersections(segments))
        assert sweep == brute

    def test_single_segment(self):
        assert find_intersections([Segment.make((0, 0), (1, 1))]) == []
        assert find_intersections([]) == []
