import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geometry.hyperplane import Hyperplane, pairwise_normals, side_of, sides_of


class TestHyperplane:
    def test_between_is_difference_of_objects(self):
        h = Hyperplane.between([4.0, 3.0], [1.0, -2.0], a=0, b=1)
        assert np.allclose(h.normal, [3.0, 5.0])
        assert h.a == 0 and h.b == 1

    def test_between_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            Hyperplane.between([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_non_finite_normal_raises(self):
        with pytest.raises(ValidationError):
            Hyperplane(np.array([np.nan, 1.0]))

    def test_side_above_means_first_object_ranks_no_worse(self):
        # f_a(q) = 4q1 + 3q2, f_b(q) = q1 - 2q2 (Figure 2 of the paper)
        h = Hyperplane.between([4.0, 3.0], [1.0, -2.0])
        # At q = (0, 0.0) both are 0 -> boundary counts as above.
        assert h.side(np.array([0.0, 0.0])) == 1
        # f_a < f_b requires 3q1 + 5q2 < 0: impossible for positive q,
        # so any positive query is 'below' (f_a > f_b).
        assert h.side(np.array([0.5, 0.5])) == -1

    def test_sides_vectorized_matches_scalar(self, rng):
        normal = rng.normal(size=4)
        points = rng.normal(size=(25, 4))
        vec = sides_of(normal, points)
        scalar = np.array([side_of(normal, p) for p in points])
        assert np.array_equal(vec, scalar)

    def test_tilt_adds_strategy_to_normal(self):
        h = Hyperplane.between([4.0, 3.0], [1.0, -2.0], a=7, b=9)
        tilted = h.tilt(np.array([1.0, 0.0]))
        assert np.allclose(tilted.normal, [4.0, 5.0])
        assert tilted.a == 7 and tilted.b == 9

    def test_involves(self):
        h = Hyperplane.between([1.0], [0.0], a=3, b=5)
        assert h.involves(3) and h.involves(5) and not h.involves(4)

    def test_degenerate_detection(self):
        assert Hyperplane.between([1.0, 1.0], [1.0, 1.0]).is_degenerate()
        assert not Hyperplane.between([1.0, 1.0], [1.0, 0.5]).is_degenerate()

    def test_hash_and_equality(self):
        h1 = Hyperplane(np.array([1.0, 2.0]), a=0, b=1)
        h2 = Hyperplane(np.array([1.0, 2.0]), a=0, b=1)
        h3 = Hyperplane(np.array([1.0, 2.0]), a=0, b=2)
        assert h1 == h2 and hash(h1) == hash(h2)
        assert h1 != h3
        assert len({h1, h2, h3}) == 2


class TestPairwiseNormals:
    def test_all_pairs_count(self, rng):
        objects = rng.random((6, 3))
        normals, pairs = pairwise_normals(objects)
        assert normals.shape == (15, 3)
        assert len(pairs) == 15
        for row, (a, b) in zip(normals, pairs):
            assert np.allclose(row, objects[a] - objects[b])

    def test_duplicate_objects_skipped(self):
        objects = np.array([[1.0, 2.0], [1.0, 2.0], [0.0, 0.0]])
        normals, pairs = pairwise_normals(objects)
        assert (0, 1) not in pairs
        assert len(pairs) == 2

    def test_explicit_pairs(self, rng):
        objects = rng.random((5, 2))
        normals, pairs = pairwise_normals(objects, pairs=[(0, 3), (2, 4)])
        assert pairs == [(0, 3), (2, 4)]
        assert np.allclose(normals[0], objects[0] - objects[3])

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            pairwise_normals(np.array([1.0, 2.0]))

    def test_empty_result_shape(self):
        objects = np.array([[1.0, 1.0], [1.0, 1.0]])
        normals, pairs = pairwise_normals(objects)
        assert normals.shape == (0, 2) and pairs == []
