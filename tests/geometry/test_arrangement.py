import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geometry.arrangement import (
    cells_touched,
    group_by_signature,
    max_cells_bound,
    signature_matrix,
)


class TestSignatureMatrix:
    def test_signs_match_convention(self):
        # Boundary (value 0) counts as above (+1).
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        normals = np.array([[1.0, -1.0]])
        sig = signature_matrix(points, normals)
        assert sig.tolist() == [[1], [-1], [1]]

    def test_empty_normals(self):
        sig = signature_matrix(np.ones((3, 2)), np.empty((0, 2)))
        assert sig.shape == (3, 0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValidationError):
            signature_matrix(np.ones((3, 2)), np.ones((1, 3)))

    def test_dtype_is_compact(self, rng):
        sig = signature_matrix(rng.random((5, 3)), rng.normal(size=(4, 3)))
        assert sig.dtype == np.int8


class TestGrouping:
    def test_identical_rows_grouped(self):
        sig = np.array([[1, -1], [1, -1], [-1, 1]], dtype=np.int8)
        groups = group_by_signature(sig)
        assert len(groups) == 2
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 2]

    def test_groups_partition_indices(self, rng):
        sig = signature_matrix(rng.random((50, 3)), rng.normal(size=(6, 3)))
        groups = group_by_signature(sig)
        all_indices = np.concatenate(list(groups.values()))
        assert sorted(all_indices.tolist()) == list(range(50))

    def test_zero_hyperplanes_single_group(self):
        groups = group_by_signature(np.empty((7, 0), dtype=np.int8))
        assert len(groups) == 1
        assert len(next(iter(groups.values()))) == 7

    def test_cells_touched_counts_groups(self, rng):
        points = rng.random((100, 2))
        normals = rng.normal(size=(5, 2))
        assert cells_touched(points, normals) == len(
            group_by_signature(signature_matrix(points, normals))
        )


class TestCellBound:
    def test_small_values(self):
        # 0 hyperplanes -> 1 cell; 1 hyperplane -> 2 cells; in 2-D, h
        # lines make at most 1 + h + C(h,2) cells.
        assert max_cells_bound(0, 2) == 1
        assert max_cells_bound(1, 2) == 2
        assert max_cells_bound(3, 2) == 1 + 3 + 3

    def test_bound_dominates_observed_cells(self, rng):
        points = rng.random((500, 2)) * 2 - 1  # include negative orthant
        normals = rng.normal(size=(6, 2))
        assert cells_touched(points, normals) <= max_cells_bound(6, 2)

    def test_negative_raises(self):
        with pytest.raises(ValidationError):
            max_cells_bound(-1, 2)
