import numpy as np
import pytest

from repro.core.cost import (
    AsymmetricLinearCost,
    CallableCost,
    L1Cost,
    L2Cost,
    LInfCost,
)
from repro.core.strategy import StrategySpace
from repro.errors import InfeasibleError, ValidationError
from repro.optimize.hit_cost import min_cost_to_hit


class TestAlreadyHitting:
    def test_positive_gap_returns_zero_strategy(self):
        s = min_cost_to_hit(L2Cost(3), np.array([0.3, 0.3, 0.4]), gap=0.5)
        assert s.is_zero()
        assert s.cost == 0.0


class TestL2ClosedForm:
    def test_unbounded_projection_distance(self):
        # min ||s|| s.t. q.s <= gap: optimal cost is |gap|/||q|| (margin aside).
        q = np.array([0.6, 0.8])
        gap = -1.0
        s = min_cost_to_hit(L2Cost(2), q, gap)
        assert s.cost == pytest.approx(1.0, abs=1e-5)  # |gap| / ||q|| = 1/1
        assert float(q @ s.vector) <= gap

    def test_direction_proportional_to_weights(self):
        q = np.array([1.0, 0.0])
        s = min_cost_to_hit(L2Cost(2), q, gap=-2.0)
        # Only the first coordinate moves.
        assert s.vector[1] == pytest.approx(0.0, abs=1e-9)
        assert s.vector[0] == pytest.approx(-2.0, abs=1e-5)

    def test_weighted_l2_prefers_cheap_dimension(self):
        q = np.array([1.0, 1.0])
        cost = L2Cost(2, weights=[100.0, 1.0])
        s = min_cost_to_hit(cost, q, gap=-1.0)
        assert abs(s.vector[1]) > abs(s.vector[0]) * 10

    def test_box_bounds_respected(self):
        q = np.array([1.0, 1.0])
        space = StrategySpace(2, lower=np.array([-0.3, -10.0]), upper=np.array([0.0, 0.0]))
        s = min_cost_to_hit(L2Cost(2), q, gap=-1.0, space=space)
        assert space.contains(s.vector)
        assert float(q @ s.vector) <= -1.0 + 1e-6

    def test_frozen_dimension_stays_zero(self):
        q = np.array([0.5, 0.5])
        space = StrategySpace.unconstrained(2).freeze([0])
        s = min_cost_to_hit(L2Cost(2), q, gap=-1.0, space=space)
        assert s.vector[0] == pytest.approx(0.0, abs=1e-9)
        assert float(q @ s.vector) <= -1.0 + 1e-6

    def test_infeasible_box_raises(self):
        q = np.array([1.0, 1.0])
        space = StrategySpace(2, lower=np.array([-0.1, -0.1]), upper=np.array([0.1, 0.1]))
        with pytest.raises(InfeasibleError):
            min_cost_to_hit(L2Cost(2), q, gap=-10.0, space=space)

    def test_zero_weights_infeasible(self):
        with pytest.raises(InfeasibleError):
            min_cost_to_hit(L2Cost(2), np.zeros(2), gap=-1.0)


class TestL1LP:
    def test_uses_single_best_dimension(self):
        # With q = (0.9, 0.1) and unit prices, all movement goes to dim 0.
        q = np.array([0.9, 0.1])
        s = min_cost_to_hit(L1Cost(2), q, gap=-0.9)
        assert s.vector[0] == pytest.approx(-1.0, abs=1e-4)
        assert s.vector[1] == pytest.approx(0.0, abs=1e-6)

    def test_weighted_l1_switches_dimension(self):
        q = np.array([0.9, 0.1])
        cost = L1Cost(2, weights=[100.0, 1.0])  # dim 0 is pricey
        s = min_cost_to_hit(cost, q, gap=-0.1)
        assert s.vector[0] == pytest.approx(0.0, abs=1e-6)
        assert s.vector[1] == pytest.approx(-1.0, abs=1e-3)

    def test_box_forces_spill_over(self):
        # Dim 0 is the cheap one but its box caps it at -0.4; the LP
        # must exhaust it and buy the rest on expensive dim 1.
        q = np.array([1.0, 1.0])
        cost = L1Cost(2, weights=[1.0, 2.0])
        space = StrategySpace(2, lower=np.array([-0.4, -10.0]), upper=np.array([0.0, 0.0]))
        s = min_cost_to_hit(cost, q, gap=-1.0, space=space)
        assert s.vector[0] == pytest.approx(-0.4, abs=1e-4)
        assert float(q @ s.vector) <= -1.0 + 1e-6
        assert s.cost == pytest.approx(0.4 + 2 * 0.6, abs=1e-3)

    def test_l1_cost_geq_l2_cost(self, rng):
        # For the same subproblem, the optimal L1 price is >= L2 price
        # (norm inequality ||s||_2 <= ||s||_1).
        for __ in range(10):
            q = rng.random(3) + 0.05
            gap = -float(rng.random() + 0.1)
            l1 = min_cost_to_hit(L1Cost(3), q, gap)
            l2 = min_cost_to_hit(L2Cost(3), q, gap)
            assert l1.cost >= l2.cost - 1e-6


class TestAsymmetric:
    def test_prefers_cheap_direction(self):
        q = np.array([0.5, 0.5])
        # Lowering dim 1 is nearly free; strategy should use it.
        cost = AsymmetricLinearCost(2, up=[1.0, 1.0], down=[1.0, 0.01])
        s = min_cost_to_hit(cost, q, gap=-1.0)
        assert s.vector[1] < -1.0  # big cheap decrease
        assert abs(s.vector[0]) < 1e-6


class TestLInf:
    def test_spreads_across_dimensions(self):
        q = np.array([1.0, 1.0])
        s = min_cost_to_hit(LInfCost(2), q, gap=-2.0)
        # Optimal L-inf solution moves both coordinates equally.
        assert s.vector[0] == pytest.approx(s.vector[1], abs=1e-6)
        assert s.cost == pytest.approx(1.0, abs=1e-4)

    def test_box_respected(self):
        q = np.array([1.0, 1.0])
        space = StrategySpace(2, lower=np.array([-0.2, -5.0]), upper=np.array([0.0, 0.0]))
        s = min_cost_to_hit(LInfCost(2), q, gap=-1.0, space=space)
        assert space.contains(s.vector)


class TestNumericFallback:
    def test_quartic_cost_close_to_l2_shape(self):
        q = np.array([0.7, 0.3])
        quartic = CallableCost(2, lambda s: float(np.sum(s**2)))  # same optimum as L2^2
        s = min_cost_to_hit(quartic, q, gap=-1.0)
        exact = min_cost_to_hit(L2Cost(2), q, gap=-1.0)
        assert float(q @ s.vector) <= -1.0 + 1e-6
        assert s.cost <= exact.cost**2 * 1.1 + 1e-6

    def test_feasibility_always_holds(self, rng):
        for __ in range(5):
            q = rng.random(3) + 0.1
            gap = -float(rng.random() + 0.05)
            cost = CallableCost(3, lambda s: float(np.sum(np.abs(s) ** 1.5)))
            s = min_cost_to_hit(cost, q, gap)
            assert float(q @ s.vector) <= gap + 1e-6

    def test_zero_weights_infeasible(self):
        cost = CallableCost(2, lambda s: float(np.sum(s**2)))
        with pytest.raises(InfeasibleError):
            min_cost_to_hit(cost, np.zeros(2), gap=-1.0)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            min_cost_to_hit(L2Cost(2), np.array([1.0]), gap=-1.0)

    def test_space_dim_mismatch(self):
        with pytest.raises(ValidationError):
            min_cost_to_hit(
                L2Cost(2), np.array([1.0, 1.0]), gap=-1.0, space=StrategySpace.unconstrained(3)
            )
