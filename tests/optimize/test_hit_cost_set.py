import numpy as np
import pytest

from repro.core.cost import AsymmetricLinearCost, CallableCost, L1Cost, L2Cost
from repro.core.strategy import StrategySpace
from repro.errors import InfeasibleError, ValidationError
from repro.optimize.hit_cost import min_cost_to_hit, min_cost_to_hit_set


class TestSingleRowReducesToSingleQuery:
    def test_l2_matches_single_solver(self, rng):
        for __ in range(10):
            q = rng.random(3) + 0.05
            gap = -float(rng.random() + 0.1)
            single = min_cost_to_hit(L2Cost(3), q, gap)
            joint = min_cost_to_hit_set(L2Cost(3), q[None, :], np.array([gap]))
            assert joint.cost == pytest.approx(single.cost, rel=1e-4, abs=1e-6)

    def test_l1_matches_single_solver(self, rng):
        for __ in range(10):
            q = rng.random(2) + 0.05
            gap = -float(rng.random() + 0.1)
            single = min_cost_to_hit(L1Cost(2), q, gap)
            joint = min_cost_to_hit_set(L1Cost(2), q[None, :], np.array([gap]))
            assert joint.cost == pytest.approx(single.cost, rel=1e-4, abs=1e-6)


class TestJointConstraints:
    def test_all_constraints_satisfied(self, rng):
        for __ in range(10):
            weights = rng.random((4, 3)) + 0.05
            gaps = -(rng.random(4) + 0.1)
            s = min_cost_to_hit_set(L2Cost(3), weights, gaps)
            assert np.all(weights @ s.vector <= gaps)

    def test_joint_at_least_as_costly_as_worst_single(self, rng):
        for __ in range(10):
            weights = rng.random((3, 2)) + 0.05
            gaps = -(rng.random(3) + 0.1)
            joint = min_cost_to_hit_set(L2Cost(2), weights, gaps)
            singles = [
                min_cost_to_hit(L2Cost(2), weights[i], float(gaps[i])).cost
                for i in range(3)
            ]
            assert joint.cost >= max(singles) - 1e-6

    def test_already_satisfied_rows_still_guard(self):
        # Row 0 needs work; row 1 is satisfied and must not be broken:
        # s0 <= -1 (to hit row 0) but s0 >= -1.5 (to keep row 1).
        weights = np.array([[1.0, 0.0], [-1.0, 0.0]])
        gaps = np.array([-1.0, 1.5])
        s = min_cost_to_hit_set(L2Cost(2), weights, gaps)
        assert s.vector[0] <= -1.0 + 1e-6
        assert -s.vector[0] <= 1.5 + 1e-6
        assert s.cost == pytest.approx(1.0, abs=1e-4)

    def test_all_satisfied_returns_zero(self):
        weights = np.array([[0.5, 0.5]])
        s = min_cost_to_hit_set(L2Cost(2), weights, np.array([1.0]))
        assert s.is_zero()

    def test_contradictory_constraints_infeasible(self):
        weights = np.array([[1.0, 0.0], [-1.0, 0.0]])
        gaps = np.array([-1.0, -1.0])  # s0 <= -1 and s0 >= 1
        with pytest.raises(InfeasibleError):
            min_cost_to_hit_set(L2Cost(2), weights, gaps)

    def test_box_bounds(self):
        weights = np.array([[1.0, 1.0]])
        gaps = np.array([-1.0])
        space = StrategySpace(2, lower=np.array([-0.2, -5.0]), upper=np.zeros(2))
        s = min_cost_to_hit_set(L2Cost(2), weights, gaps, space=space)
        assert space.contains(s.vector)
        assert float(weights[0] @ s.vector) <= -1.0 + 1e-6

    def test_infeasible_box(self):
        weights = np.array([[1.0, 1.0]])
        gaps = np.array([-5.0])
        space = StrategySpace(2, lower=np.full(2, -0.1), upper=np.full(2, 0.1))
        with pytest.raises(InfeasibleError):
            min_cost_to_hit_set(L2Cost(2), weights, gaps, space=space)


class TestCostFamilies:
    def test_weighted_l2(self, rng):
        weights = rng.random((3, 2)) + 0.05
        gaps = -(rng.random(3) + 0.1)
        cheap_dim1 = min_cost_to_hit_set(
            L2Cost(2, weights=[100.0, 1.0]), weights, gaps
        )
        assert abs(cheap_dim1.vector[1]) > abs(cheap_dim1.vector[0])

    def test_asymmetric_lp(self):
        weights = np.array([[0.5, 0.5]])
        gaps = np.array([-1.0])
        cost = AsymmetricLinearCost(2, up=[1.0, 1.0], down=[0.01, 1.0])
        s = min_cost_to_hit_set(cost, weights, gaps)
        # Lowering dim 0 is nearly free: the LP should use it heavily.
        assert s.vector[0] < -1.0

    def test_callable_numeric_feasible(self, rng):
        weights = rng.random((2, 3)) + 0.1
        gaps = -(rng.random(2) + 0.1)
        cost = CallableCost(3, lambda s: float(np.sum(s**4)))
        s = min_cost_to_hit_set(cost, weights, gaps)
        assert np.all(weights @ s.vector <= gaps + 1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            min_cost_to_hit_set(L2Cost(2), np.ones((2, 3)), np.zeros(2))
        with pytest.raises(ValidationError):
            min_cost_to_hit_set(L2Cost(2), np.ones((2, 2)), np.zeros(3))


class TestDykstraOptimality:
    def test_matches_projection_formula_single_halfspace(self):
        # Min-norm point onto {s : q.s <= b} is (b/||q||^2) q for b < 0.
        q = np.array([0.6, 0.8])
        b = -2.0
        s = min_cost_to_hit_set(L2Cost(2), q[None, :], np.array([b]), margin=0.0)
        expected = (b / float(q @ q)) * q
        assert np.allclose(s.vector, expected, atol=1e-6)

    def test_two_halfspace_corner(self):
        # {s0 <= -1} and {s1 <= -1}: the min-norm point is (-1, -1).
        weights = np.eye(2)
        gaps = np.array([-1.0, -1.0])
        s = min_cost_to_hit_set(L2Cost(2), weights, gaps, margin=0.0)
        assert np.allclose(s.vector, [-1.0, -1.0], atol=1e-6)
