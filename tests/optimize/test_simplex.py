import numpy as np
import pytest

from repro.errors import InfeasibleError, UnboundedError, ValidationError
from repro.optimize.simplex import linprog


class TestBasicLPs:
    def test_simple_bounded_minimum(self):
        # min x + y s.t. x + y >= 1, x, y >= 0  ->  optimum 1
        result = linprog([1.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
        assert result.fun == pytest.approx(1.0)
        assert result.x.sum() == pytest.approx(1.0)

    def test_maximization_via_negation(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2, x, y >= 0 -> x=2, y=2, obj 10
        result = linprog([-3.0, -2.0], a_ub=[[1.0, 1.0], [1.0, 0.0]], b_ub=[4.0, 2.0])
        assert -result.fun == pytest.approx(10.0)
        assert result.x == pytest.approx([2.0, 2.0])

    def test_equality_constraints(self):
        # min x + 2y s.t. x + y = 3, x, y >= 0 -> x=3, y=0
        result = linprog([1.0, 2.0], a_eq=[[1.0, 1.0]], b_eq=[3.0])
        assert result.x == pytest.approx([3.0, 0.0])
        assert result.fun == pytest.approx(3.0)

    def test_free_variables(self):
        # min x s.t. x >= -5 (via inequality), x free  ->  -5
        result = linprog([1.0], a_ub=[[-1.0]], b_ub=[5.0], bounds=[(None, None)])
        assert result.fun == pytest.approx(-5.0)

    def test_negative_lower_bounds(self):
        # min x + y with -2 <= x <= 0, -3 <= y <= 1
        result = linprog([1.0, 1.0], bounds=[(-2.0, 0.0), (-3.0, 1.0)])
        assert result.x == pytest.approx([-2.0, -3.0])

    def test_upper_bounds_respected(self):
        # max x + y with x <= 1.5, y <= 2.5 (as bounds)
        result = linprog([-1.0, -1.0], bounds=[(0.0, 1.5), (0.0, 2.5)])
        assert result.x == pytest.approx([1.5, 2.5])

    def test_no_constraints_zero_optimum(self):
        result = linprog([1.0, 2.0])
        assert result.fun == pytest.approx(0.0)


class TestEdgeCases:
    def test_infeasible_raises(self):
        # x >= 0 and x <= -1
        with pytest.raises(InfeasibleError):
            linprog([1.0], a_ub=[[1.0]], b_ub=[-1.0])

    def test_unbounded_raises(self):
        with pytest.raises(UnboundedError):
            linprog([-1.0])  # max x, x >= 0, no ceiling

    def test_unbounded_free_variable(self):
        with pytest.raises(UnboundedError):
            linprog([1.0], bounds=[(None, None)])

    def test_empty_bound_pair_raises(self):
        with pytest.raises(InfeasibleError):
            linprog([1.0], bounds=[(2.0, 1.0)])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            linprog([1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_matrix_without_vector_raises(self):
        with pytest.raises(ValidationError):
            linprog([1.0], a_ub=[[1.0]])

    def test_degenerate_redundant_constraints(self):
        # Duplicated constraints should not confuse phase 1.
        result = linprog(
            [1.0, 1.0],
            a_eq=[[1.0, 1.0], [1.0, 1.0]],
            b_eq=[2.0, 2.0],
        )
        assert result.fun == pytest.approx(2.0)


class TestRandomizedAgainstScipy:
    """Cross-check against scipy.optimize.linprog (HiGHS) on random LPs."""

    def test_random_feasible_lps(self, rng):
        scipy_linprog = pytest.importorskip("scipy.optimize").linprog
        for trial in range(25):
            n = int(rng.integers(2, 6))
            m = int(rng.integers(1, 5))
            c = rng.normal(size=n)
            a = rng.normal(size=(m, n))
            x_feasible = rng.random(n)  # guarantees feasibility
            b = a @ x_feasible + rng.random(m)
            bounds = [(0.0, 5.0)] * n  # boxed, so never unbounded
            ours = linprog(c, a_ub=a, b_ub=b, bounds=bounds)
            ref = scipy_linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
            assert ref.success
            assert ours.fun == pytest.approx(ref.fun, abs=1e-6), f"trial {trial}"
            # Our solution must itself be feasible.
            assert np.all(a @ ours.x <= b + 1e-7)
            assert np.all(ours.x >= -1e-9) and np.all(ours.x <= 5.0 + 1e-9)
