"""Index persistence: the reloaded index must be indistinguishable."""

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import (
    SubdomainIndex,
    dataset_fingerprint,
    queryset_fingerprint,
)
from repro.errors import ValidationError


@pytest.fixture
def market(small_market):
    objects, queries, ks = small_market
    return Dataset(objects), QuerySet(queries, ks)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_identical_answers_without_reevaluation(self, market, tmp_path, mode):
        dataset, queries = market
        built = SubdomainIndex(dataset, queries, mode=mode)
        expected = {t: built.hits(t) for t in range(dataset.n)}
        path = tmp_path / "index.npz"
        built.save(path)
        loaded = SubdomainIndex.load(path, dataset, queries)
        # Prefixes were persisted: answering must not recompute rankings.
        assert {t: loaded.hits(t) for t in range(dataset.n)} == expected
        assert loaded.representative_evaluations == 0
        assert loaded.epoch == built.epoch
        assert loaded.workers == 0

    def test_partition_and_kth_other_survive(self, market, tmp_path):
        dataset, queries = market
        built = SubdomainIndex(dataset, queries)
        built.hits(0)  # force some lazy prefixes before saving
        path = tmp_path / "index.npz"
        built.save(path)
        loaded = SubdomainIndex.load(path, dataset, queries)
        ours = sorted((s.signature, s.query_ids.tolist()) for s in built.subdomains)
        theirs = sorted(
            (s.signature, s.query_ids.tolist()) for s in loaded.subdomains
        )
        assert ours == theirs
        kth_built = built.kth_other(0)
        kth_loaded = loaded.kth_other(0)
        assert np.array_equal(kth_built[0], kth_loaded[0])
        assert np.allclose(kth_built[1], kth_loaded[1])

    def test_engine_wraps_loaded_index(self, market, tmp_path):
        dataset, queries = market
        engine = ImprovementQueryEngine(dataset, queries)
        path = tmp_path / "index.npz"
        engine.index.save(path)
        restored = ImprovementQueryEngine.from_index(
            SubdomainIndex.load(path, dataset, queries)
        )
        fresh = engine.min_cost(0, tau=5)
        reloaded = restored.min_cost(0, tau=5)
        assert fresh.hits_after == reloaded.hits_after
        assert fresh.total_cost == pytest.approx(reloaded.total_cost)
        plan = restored.explain(0, tau=5)
        assert plan.workers == 0

    def test_save_appends_no_extension_magic(self, market, tmp_path):
        # numpy's savez appends .npz to bare paths; saving must write
        # exactly the requested file.
        dataset, queries = market
        index = SubdomainIndex(dataset, queries)
        path = tmp_path / "index.bin"
        index.save(path)
        assert path.exists()
        assert not (tmp_path / "index.bin.npz").exists()
        loaded = SubdomainIndex.load(path, dataset, queries)
        assert loaded.num_subdomains == index.num_subdomains


class TestValidationOnLoad:
    def test_missing_file_rejected(self, market, tmp_path):
        dataset, queries = market
        with pytest.raises(ValidationError):
            SubdomainIndex.load(tmp_path / "absent.npz", dataset, queries)

    def test_dataset_fingerprint_mismatch_rejected(self, market, tmp_path, rng):
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        other = Dataset(rng.random((dataset.n, dataset.dim)))
        with pytest.raises(ValidationError, match="fingerprint"):
            SubdomainIndex.load(path, other, queries)

    def test_queryset_fingerprint_mismatch_rejected(self, market, tmp_path, rng):
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        other = QuerySet(rng.random((queries.m, dataset.dim)), ks=2)
        with pytest.raises(ValidationError, match="fingerprint"):
            SubdomainIndex.load(path, dataset, other)

    def test_schema_mismatch_rejected(self, market, tmp_path):
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
        payload["schema"] = np.array("repro-subdomain-index/999")
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        with pytest.raises(ValidationError, match="schema"):
            SubdomainIndex.load(path, dataset, queries)


class TestFingerprints:
    def test_content_addressed(self, market, rng):
        dataset, queries = market
        same = Dataset(dataset.points.copy(), sense=dataset.sense)
        assert dataset_fingerprint(dataset) == dataset_fingerprint(same)
        moved = dataset.points.copy()
        moved[0, 0] += 1e-6
        assert dataset_fingerprint(dataset) != dataset_fingerprint(
            Dataset(moved, sense=dataset.sense)
        )
        assert queryset_fingerprint(queries) == queryset_fingerprint(
            QuerySet(queries.weights.copy(), queries.ks.copy())
        )
        other_ks = queries.ks.copy()
        other_ks[0] = other_ks[0] + 1
        assert queryset_fingerprint(queries) != queryset_fingerprint(
            QuerySet(queries.weights.copy(), other_ks)
        )
