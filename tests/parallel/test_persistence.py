"""Index persistence: the reloaded index must be indistinguishable."""

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import (
    SubdomainIndex,
    dataset_fingerprint,
    queryset_fingerprint,
)
from repro.errors import ValidationError


@pytest.fixture
def market(small_market):
    objects, queries, ks = small_market
    return Dataset(objects), QuerySet(queries, ks)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_identical_answers_without_reevaluation(self, market, tmp_path, mode):
        dataset, queries = market
        built = SubdomainIndex(dataset, queries, mode=mode)
        expected = {t: built.hits(t) for t in range(dataset.n)}
        path = tmp_path / "index.npz"
        built.save(path)
        loaded = SubdomainIndex.load(path, dataset, queries)
        # Prefixes were persisted: answering must not recompute rankings.
        assert {t: loaded.hits(t) for t in range(dataset.n)} == expected
        assert loaded.representative_evaluations == 0
        assert loaded.epoch == built.epoch
        assert loaded.workers == 0

    def test_partition_and_kth_other_survive(self, market, tmp_path):
        dataset, queries = market
        built = SubdomainIndex(dataset, queries)
        built.hits(0)  # force some lazy prefixes before saving
        path = tmp_path / "index.npz"
        built.save(path)
        loaded = SubdomainIndex.load(path, dataset, queries)
        ours = sorted((s.signature, s.query_ids.tolist()) for s in built.subdomains)
        theirs = sorted(
            (s.signature, s.query_ids.tolist()) for s in loaded.subdomains
        )
        assert ours == theirs
        kth_built = built.kth_other(0)
        kth_loaded = loaded.kth_other(0)
        assert np.array_equal(kth_built[0], kth_loaded[0])
        assert np.allclose(kth_built[1], kth_loaded[1])

    def test_engine_wraps_loaded_index(self, market, tmp_path):
        dataset, queries = market
        engine = ImprovementQueryEngine(dataset, queries)
        path = tmp_path / "index.npz"
        engine.index.save(path)
        restored = ImprovementQueryEngine.from_index(
            SubdomainIndex.load(path, dataset, queries)
        )
        fresh = engine.min_cost(0, tau=5)
        reloaded = restored.min_cost(0, tau=5)
        assert fresh.hits_after == reloaded.hits_after
        assert fresh.total_cost == pytest.approx(reloaded.total_cost)
        plan = restored.explain(0, tau=5)
        assert plan.workers == 0

    def test_save_appends_no_extension_magic(self, market, tmp_path):
        # numpy's savez appends .npz to bare paths; saving must write
        # exactly the requested file.
        dataset, queries = market
        index = SubdomainIndex(dataset, queries)
        path = tmp_path / "index.bin"
        index.save(path)
        assert path.exists()
        assert not (tmp_path / "index.bin.npz").exists()
        loaded = SubdomainIndex.load(path, dataset, queries)
        assert loaded.num_subdomains == index.num_subdomains


class TestValidationOnLoad:
    def test_missing_file_rejected(self, market, tmp_path):
        dataset, queries = market
        with pytest.raises(ValidationError):
            SubdomainIndex.load(tmp_path / "absent.npz", dataset, queries)

    def test_dataset_fingerprint_mismatch_rejected(self, market, tmp_path, rng):
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        other = Dataset(rng.random((dataset.n, dataset.dim)))
        with pytest.raises(ValidationError, match="fingerprint"):
            SubdomainIndex.load(path, other, queries)

    def test_queryset_fingerprint_mismatch_rejected(self, market, tmp_path, rng):
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        other = QuerySet(rng.random((queries.m, dataset.dim)), ks=2)
        with pytest.raises(ValidationError, match="fingerprint"):
            SubdomainIndex.load(path, dataset, other)

    def test_schema_mismatch_rejected(self, market, tmp_path):
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
        payload["schema"] = np.array("repro-subdomain-index/999")
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        with pytest.raises(ValidationError, match="schema"):
            SubdomainIndex.load(path, dataset, queries)


class TestEagerMetadataValidation:
    def test_header_rejected_before_payload_is_touched(self, market, tmp_path):
        # Strip every payload matrix from the archive but leave the
        # header scalars with a bogus fingerprint: a loader that
        # validated lazily would crash on the missing arrays with a
        # corruption error; the eager header check must win and type
        # the failure as a ValidationError instead.
        dataset, queries = market
        path = tmp_path / "index.npz"
        SubdomainIndex(dataset, queries).save(path)
        header_keys = (
            "schema",
            "mode",
            "margin",
            "partition_method",
            "rtree_max_entries",
            "epoch",
            "dataset_fingerprint",
            "queries_fingerprint",
        )
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in header_keys}
        payload["dataset_fingerprint"] = np.array("bogus")
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        with pytest.raises(ValidationError, match="fingerprint"):
            SubdomainIndex.load(path, dataset, queries)


class TestMmapLayout:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_identical_answers_from_mmap_directory(self, market, tmp_path, mode):
        dataset, queries = market
        built = SubdomainIndex(dataset, queries, mode=mode)
        expected = {t: built.hits(t) for t in range(dataset.n)}
        path = tmp_path / "index.mmap"
        built.save(path, format="mmap")
        assert path.is_dir()
        loaded = SubdomainIndex.load(path, dataset, queries)
        assert {t: loaded.hits(t) for t in range(dataset.n)} == expected
        assert loaded.representative_evaluations == 0
        assert loaded.epoch == built.epoch

    def test_save_rejects_unknown_format(self, market, tmp_path):
        dataset, queries = market
        index = SubdomainIndex(dataset, queries)
        with pytest.raises(ValidationError, match="format"):
            index.save(tmp_path / "index", format="pickle")

    def test_loaded_maps_are_copy_on_write_safe(self, market, tmp_path):
        # The file on disk can never be modified through a loaded
        # index: read-only maps refuse in-place writes, and the one
        # array the update paths do write in place (subdomain_of) is
        # materialized as a private copy on load.
        dataset, queries = market
        SubdomainIndex(dataset, queries).save(tmp_path / "idx", format="mmap")
        normals_bytes = (tmp_path / "idx" / "normals.npy").read_bytes()
        renumber_bytes = (tmp_path / "idx" / "subdomain_of.npy").read_bytes()
        loaded = SubdomainIndex.load(tmp_path / "idx", dataset, queries)
        with pytest.raises(ValueError):
            loaded.normals[0, 0] = 99.0
        loaded.subdomain_of[:] = -1  # in-place renumber must stay private
        assert (tmp_path / "idx" / "normals.npy").read_bytes() == normals_bytes
        assert (
            tmp_path / "idx" / "subdomain_of.npy"
        ).read_bytes() == renumber_bytes

    def test_pool_shares_mmap_arrays_through_page_cache(self, market, tmp_path):
        # mmap-backed hot arrays must be skipped by the shared-memory
        # export (forked workers inherit the page-cache mapping) while
        # still producing byte-identical pooled answers.
        from repro.parallel import IQRequest, PersistentPool, run_batch

        dataset, queries = market
        ImprovementQueryEngine(dataset, queries).index.save(
            tmp_path / "idx", format="mmap"
        )
        engine = ImprovementQueryEngine.from_index(
            SubdomainIndex.load(tmp_path / "idx", dataset, queries)
        )
        batch = [IQRequest("min_cost", t, 5.0) for t in range(4)] + [
            IQRequest("max_hit", t, 0.8) for t in range(4)
        ]
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2) as pool:
            if pool.workers == 0:  # non-fork host: residency path inert
                pytest.skip("fork start method unavailable")
            assert pool.mmap_resident >= 1
            specs = {
                key for group in pool._specs.values() for key in group
            }
            assert "normals" not in specs  # the mmap-backed hot array
            pooled = pool.run(batch)
        for ours, theirs in zip(serial, pooled):
            assert ours.hits_after == theirs.hits_after
            assert ours.total_cost == theirs.total_cost
            assert np.array_equal(ours.strategy.vector, theirs.strategy.vector)


class TestFingerprints:
    def test_content_addressed(self, market, rng):
        dataset, queries = market
        same = Dataset(dataset.points.copy(), sense=dataset.sense)
        assert dataset_fingerprint(dataset) == dataset_fingerprint(same)
        moved = dataset.points.copy()
        moved[0, 0] += 1e-6
        assert dataset_fingerprint(dataset) != dataset_fingerprint(
            Dataset(moved, sense=dataset.sense)
        )
        assert queryset_fingerprint(queries) == queryset_fingerprint(
            QuerySet(queries.weights.copy(), queries.ks.copy())
        )
        other_ks = queries.ks.copy()
        other_ks[0] = other_ks[0] + 1
        assert queryset_fingerprint(queries) != queryset_fingerprint(
            QuerySet(queries.weights.copy(), other_ks)
        )
