"""Scoped refresh: a sharded pool re-shares only the mutated shard's segments."""

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.parallel import IQRequest, PersistentPool, run_batch


SHARDS = 3


@pytest.fixture
def sharded_engine(small_market):
    objects, queries, ks = small_market
    return ImprovementQueryEngine(
        Dataset(objects), QuerySet(queries, ks), shards=SHARDS, workers=0
    )


def requests_for(engine, count=5):
    targets = range(min(count, engine.dataset.n))
    return [IQRequest("min_cost", t, 5.0) for t in targets] + [
        IQRequest("max_hit", t, 0.8) for t in targets
    ]


def assert_results_match(serial, pooled):
    assert len(serial) == len(pooled)
    for ours, theirs in zip(serial, pooled):
        assert ours.hits_after == theirs.hits_after
        assert ours.total_cost == theirs.total_cost
        assert np.array_equal(ours.strategy.vector, theirs.strategy.vector)


class TestShardedPool:
    def test_sharded_pool_matches_serial_reference(self, sharded_engine):
        batch = requests_for(sharded_engine)
        serial = run_batch(sharded_engine, batch, workers=0)
        with PersistentPool(sharded_engine, workers=2) as pool:
            assert_results_match(serial, pool.run(batch))

    def test_routed_insert_reshares_only_the_owning_shard(self, sharded_engine):
        batch = requests_for(sharded_engine, count=3)
        with PersistentPool(sharded_engine, workers=2) as pool:
            pool.run(batch)
            assert pool.partial_refreshes == 0
            sharded_engine.add_query(np.array([0.5, 0.3, 0.2]), 2)
            pooled = pool.run(batch)
            assert pool.partial_refreshes == 1
            assert pool.shards_reshared == 1  # only the owner's group moved
        serial = run_batch(sharded_engine, batch, workers=0)
        assert_results_match(serial, pooled)

    def test_object_mutation_fans_out_to_every_shard(self, sharded_engine):
        batch = requests_for(sharded_engine, count=3)
        with PersistentPool(sharded_engine, workers=2) as pool:
            pool.run(batch)
            sharded_engine.add_object(np.array([0.4, 0.5, 0.6]))
            pooled = pool.run(batch)
            # every shard's epoch moved, so every shard group re-exports
            assert pool.shards_reshared == SHARDS
        serial = run_batch(sharded_engine, batch, workers=0)
        assert_results_match(serial, pooled)

    def test_monolithic_pool_never_counts_partial_refreshes(self, small_market):
        objects, queries, ks = small_market
        engine = ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))
        batch = requests_for(engine, count=3)
        with PersistentPool(engine, workers=2) as pool:
            pool.run(batch)
            engine.add_query(np.array([0.5, 0.3, 0.2]), 2)
            pool.run(batch)
            # the single global+shard:0 pair is fully stale — nothing kept
            assert pool.partial_refreshes == 0
