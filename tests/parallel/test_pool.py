"""Worker-count resolution and shared-memory plumbing."""

import os

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel import pool_start_method, resolve_workers
from repro.parallel.shm import SharedArrayStore, attach_array, chunk_bounds


def ceiling():
    """The clamp resolve_workers applies: cpu_count, never below 2."""
    return max(2, os.cpu_count() or 1)


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 0

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == min(3, ceiling())
        assert resolve_workers(0) == 0

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == min(5, ceiling())

    def test_serial_counts_pass_through_unclamped(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(1) == 1

    def test_oversized_request_clamped_to_cpu_ceiling(self):
        assert resolve_workers(10_000) == ceiling()

    def test_two_workers_always_allowed(self):
        # The clamp floor: explicit parallelism exercises the pool even
        # on a single-core host.
        assert resolve_workers(2) == 2

    def test_auto_means_all_cores(self, monkeypatch):
        cpus = os.cpu_count() or 1
        expected = cpus if cpus >= 2 else 0
        assert resolve_workers("auto") == expected
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers(None) == expected

    def test_string_integers_accepted(self):
        assert resolve_workers("0") == 0
        assert resolve_workers("2") == 2

    def test_bad_string_argument_rejected(self):
        with pytest.raises(ValidationError, match="auto"):
            resolve_workers("many")

    def test_negative_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with pytest.raises(ValidationError):
            resolve_workers(-1)

    def test_bad_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValidationError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_negative_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValidationError):
            resolve_workers(None)


class TestPoolStartMethod:
    def test_is_a_known_method(self):
        assert pool_start_method() in ("fork", "forkserver", "spawn")


class TestSharedArrayStore:
    def test_share_attach_round_trip(self, rng):
        array = rng.random((17, 3))
        with SharedArrayStore() as store:
            spec = store.share(array)
            assert tuple(spec.shape) == array.shape
            attached = attach_array(spec)
            assert np.array_equal(attached, array)
            assert not attached.flags.writeable

    def test_share_view_maps_the_segment(self, rng):
        array = rng.random((6, 4))
        with SharedArrayStore() as store:
            spec, view = store.share_view(array)
            assert np.array_equal(view, array)
            assert not view.flags.writeable
            # The view and a fresh attachment read the same pages.
            assert np.array_equal(attach_array(spec), view)

    def test_int8_and_intp_arrays(self, rng):
        signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(5, 9))
        pairs = np.array([[0, 1], [1, 2]], dtype=np.intp)
        with SharedArrayStore() as store:
            assert np.array_equal(attach_array(store.share(signs)), signs)
            assert np.array_equal(attach_array(store.share(pairs)), pairs)


class TestChunkBounds:
    def test_covers_range_contiguously(self):
        bounds = list(chunk_bounds(10, 3))
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 10
        for (__, stop), (start, __) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_more_chunks_than_items(self):
        bounds = list(chunk_bounds(2, 5))
        assert all(stop > start for start, stop in bounds)
        assert bounds[-1][1] == 2

    def test_empty_total(self):
        assert list(chunk_bounds(0, 4)) == []
