"""The parallel batch driver must reproduce the serial loop exactly."""

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import ReproError, ValidationError
from repro.parallel import IQRequest, run_batch
from repro.parallel import batch as batch_module


@pytest.fixture
def engine(small_market):
    objects, queries, ks = small_market
    return ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))


def requests_for(engine, count=6):
    targets = range(min(count, engine.dataset.n))
    return [IQRequest("min_cost", t, 5.0) for t in targets] + [
        IQRequest("max_hit", t, 0.8) for t in targets
    ]


def assert_results_match(serial, parallel):
    assert len(serial) == len(parallel)
    for ours, theirs in zip(serial, parallel):
        assert ours.hits_after == theirs.hits_after
        assert ours.total_cost == pytest.approx(theirs.total_cost)
        assert np.allclose(ours.strategy.vector, theirs.strategy.vector)


class TestParity:
    def test_parallel_matches_serial_loop(self, engine):
        batch = requests_for(engine)
        serial = run_batch(engine, batch, workers=0)
        parallel = run_batch(engine, batch, workers=2)
        assert_results_match(serial, parallel)

    def test_matches_direct_engine_calls(self, engine):
        batch = [IQRequest("min_cost", 0, 5.0), IQRequest("max_hit", 1, 0.5)]
        results = run_batch(engine, batch, workers=2)
        direct_min = engine.min_cost(0, tau=5)
        direct_max = engine.max_hit(1, budget=0.5)
        assert results[0].hits_after == direct_min.hits_after
        assert results[0].total_cost == pytest.approx(direct_min.total_cost)
        assert results[1].hits_after == direct_max.hits_after

    def test_methods_and_options_pass_through(self, engine):
        batch = [
            IQRequest("min_cost", 0, 5.0, method="greedy"),
            IQRequest("max_hit", 1, 0.8, method="random", options=(("seed", 7),)),
        ]
        serial = run_batch(engine, batch, workers=0)
        parallel = run_batch(engine, batch, workers=2)
        assert_results_match(serial, parallel)
        direct = engine.max_hit(1, budget=0.8, method="random", seed=7)
        assert serial[1].hits_after == direct.hits_after


class TestDispatch:
    def test_results_in_request_order(self, engine):
        batch = requests_for(engine)
        results = run_batch(engine, batch, workers=3)
        for request, result in zip(batch, results):
            if request.kind == "min_cost":
                assert result.hits_after >= request.goal or not result.satisfied

    def test_empty_batch(self, engine):
        assert run_batch(engine, [], workers=4) == []

    def test_single_request_runs_serially(self, engine):
        results = run_batch(engine, [IQRequest("min_cost", 0, 5.0)], workers=4)
        assert len(results) == 1

    def test_env_variable_selects_workers(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        batch = requests_for(engine, count=2)
        serial = run_batch(engine, batch, workers=0)
        from_env = run_batch(engine, batch)
        assert_results_match(serial, from_env)


class TestChunking:
    def test_batch_chunk_runs_a_contiguous_slice(self, engine, monkeypatch):
        batch = tuple(requests_for(engine, count=3))
        monkeypatch.setattr(batch_module, "_SHARED", (engine, batch))
        chunk = batch_module._batch_chunk((1, 4))
        reference = [batch_module._run_one(engine, request) for request in batch[1:4]]
        assert_results_match(reference, chunk)

    def test_batch_chunk_without_shared_state_raises(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_SHARED", None)
        with pytest.raises(ReproError, match="fork-shared"):
            batch_module._batch_chunk((0, 1))

    def test_chunks_cover_batch_once_per_worker(self, engine):
        # The fallback path dispatches ceil(len/workers)-sized slices —
        # one map task per worker, not one per request.
        from repro.parallel.shm import chunk_bounds

        batch = requests_for(engine, count=4)  # 8 requests
        bounds = list(chunk_bounds(len(batch), 2))
        assert bounds == [(0, 4), (4, 8)]


class TestValidation:
    def test_unknown_kind_rejected_before_pool(self, engine):
        with pytest.raises(ValidationError, match="kind"):
            run_batch(engine, [IQRequest("median", 0, 5.0)], workers=2)

    def test_unknown_method_rejected_before_pool(self, engine):
        with pytest.raises(ValidationError):
            run_batch(
                engine,
                [IQRequest("min_cost", 0, 5.0, method="quantum")] * 2,
                workers=2,
            )

    def test_not_reentrant(self, engine, monkeypatch):
        monkeypatch.setattr(batch_module, "_SHARED", (engine, ()))
        with pytest.raises(ReproError, match="reentrant"):
            run_batch(engine, requests_for(engine, count=2), workers=2)
