"""Shared-memory plumbing: attachment cache discipline and store lifecycle.

The attachment cache (``_ATTACHED``) is worker-side state keyed by
segment name; these tests pin the two bugs it used to have — serving a
stale wrong-layout view when a segment name is reused with a different
spec, and never evicting entries when the owning store closed."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel.shm import (
    ArraySpec,
    SharedArrayStore,
    attach_array,
    attached_segments,
    chunk_bounds,
    detach_all,
    detach_array,
)


@pytest.fixture(autouse=True)
def _clean_cache():
    """Each test starts and ends with an empty attachment cache."""
    detach_all()
    yield
    detach_all()


class TestAttachCache:
    def test_same_spec_hits_cache(self):
        with SharedArrayStore() as store:
            spec = store.share(np.arange(6.0))
            first = attach_array(spec)
            second = attach_array(spec)
            assert first is second
            assert attached_segments() == {spec.name}

    def test_spec_mismatch_evicts_and_reattaches(self):
        with SharedArrayStore() as store:
            spec = store.share(np.arange(4.0))
            stale = attach_array(spec)
            assert stale.shape == (4,)
            # The same segment name arriving under a different layout
            # must re-map, not serve the cached 1-D view of the bytes.
            reshaped = ArraySpec(spec.name, (2, 2), spec.dtype)
            fresh = attach_array(reshaped)
            assert fresh.shape == (2, 2)
            assert np.array_equal(fresh, np.arange(4.0).reshape(2, 2))

    def test_attached_views_are_read_only(self):
        with SharedArrayStore() as store:
            spec = store.share(np.arange(3.0))
            view = attach_array(spec)
            with pytest.raises(ValueError):
                view[0] = 99.0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValidationError):
            attach_array(ArraySpec("psm_nope", (-1,), "<f8"))


class TestEviction:
    def test_detach_array_reports_presence(self):
        with SharedArrayStore() as store:
            spec = store.share(np.arange(2.0))
            attach_array(spec)
            assert detach_array(spec.name) is True
            assert detach_array(spec.name) is False
            assert attached_segments() == frozenset()

    def test_store_close_evicts_same_process_attachments(self):
        store = SharedArrayStore()
        spec = store.share(np.arange(5.0))
        attach_array(spec)
        assert spec.name in attached_segments()
        store.close()
        # The cache may not keep serving views of an unlinked segment.
        assert spec.name not in attached_segments()

    def test_detach_all_counts_and_clears(self):
        with SharedArrayStore() as store:
            specs = [store.share(np.arange(float(n + 1))) for n in range(3)]
            for spec in specs:
                attach_array(spec)
            assert detach_all() == 3
            assert attached_segments() == frozenset()

    def test_close_survives_live_views(self):
        """A caller still holding a view must not break store.close()."""
        store = SharedArrayStore()
        spec = store.share(np.arange(8.0))
        view = attach_array(spec)
        store.close()  # BufferError path: parked, segment still unlinked
        assert spec.name not in attached_segments()
        assert view[3] == 3.0  # the mapping stays alive with the view


class TestChunkBounds:
    def test_covers_range_contiguously(self):
        bounds = list(chunk_bounds(10, 3))
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (__, stop), (start, __) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_empty_and_invalid(self):
        assert list(chunk_bounds(0, 4)) == []
        with pytest.raises(ValidationError):
            list(chunk_bounds(5, 0))
