"""The persistent pool must reproduce the serial reference exactly —
across batches, across index mutations, and across worker crashes."""

import os
import signal

import numpy as np
import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import ReproError, ValidationError
from repro.parallel import IQRequest, PersistentPool, run_batch


@pytest.fixture
def engine(small_market):
    objects, queries, ks = small_market
    return ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))


def requests_for(engine, count=6):
    targets = range(min(count, engine.dataset.n))
    return [IQRequest("min_cost", t, 5.0) for t in targets] + [
        IQRequest("max_hit", t, 0.8) for t in targets
    ]


def assert_results_match(serial, pooled):
    assert len(serial) == len(pooled)
    for ours, theirs in zip(serial, pooled):
        assert ours.target == theirs.target
        assert ours.hits_before == theirs.hits_before
        assert ours.hits_after == theirs.hits_after
        assert ours.total_cost == theirs.total_cost  # byte-identical, not approx
        assert ours.satisfied == theirs.satisfied
        assert np.array_equal(ours.strategy.vector, theirs.strategy.vector)


class TestParity:
    def test_pooled_matches_serial_reference(self, engine):
        batch = requests_for(engine)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2) as pool:
            assert_results_match(serial, pool.run(batch))

    def test_serial_mode_pool_matches_reference(self, engine):
        batch = requests_for(engine)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=0) as pool:
            assert pool.workers == 0
            assert_results_match(serial, pool.run(batch))

    def test_repeated_batches_stay_consistent(self, engine):
        batch = requests_for(engine, count=3)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2) as pool:
            first = pool.run(batch)
            second = pool.run(batch)
        assert_results_match(serial, first)
        assert_results_match(first, second)
        assert pool.generation == 1  # no refresh between clean batches

    def test_run_batch_delegates_to_pool(self, engine):
        batch = requests_for(engine, count=3)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2) as pool:
            assert_results_match(serial, run_batch(engine, batch, pool=pool))

    def test_run_batch_rejects_foreign_pool(self, engine, small_market):
        objects, queries, ks = small_market
        other = ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))
        with PersistentPool(other, workers=0) as pool:
            with pytest.raises(ValidationError, match="different engine"):
                run_batch(engine, requests_for(engine, count=2), pool=pool)

    def test_engine_pool_factory(self, engine):
        with engine.pool(workers=2) as pool:
            assert pool.engine is engine
            assert pool.workers == 2

    def test_unwarmed_pool_still_agrees(self, engine):
        batch = requests_for(engine, count=3)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2, warm=False) as pool:
            assert_results_match(serial, pool.run(batch))


class TestErrors:
    def test_bad_request_surfaces_and_pool_survives(self, engine):
        good = requests_for(engine, count=2)
        poisoned = good[:2] + [IQRequest("min_cost", 10_000, 5.0)] + good[2:]
        with PersistentPool(engine, workers=2) as pool:
            with pytest.raises(ReproError):
                pool.run(poisoned)
            # The worker that hit the error kept running; the pool is
            # still the same fork generation and still serves.
            assert pool.generation == 1
            assert_results_match(run_batch(engine, good, workers=0), pool.run(good))

    def test_run_outcomes_isolates_failures(self, engine):
        batch = [
            IQRequest("min_cost", 0, 5.0),
            IQRequest("min_cost", 10_000, 5.0),  # out of range
            IQRequest("max_hit", 1, 0.8),
        ]
        with PersistentPool(engine, workers=2) as pool:
            outcomes = pool.run_outcomes(batch)
        assert [ok for ok, __ in outcomes] == [True, False, True]
        assert isinstance(outcomes[1][1], Exception)

    def test_unknown_kind_rejected_before_dispatch(self, engine):
        with PersistentPool(engine, workers=0) as pool:
            with pytest.raises(ValidationError, match="kind"):
                pool.run([IQRequest("median", 0, 5.0)])

    def test_unknown_method_rejected_before_dispatch(self, engine):
        with PersistentPool(engine, workers=0) as pool:
            with pytest.raises(ValidationError):
                pool.run([IQRequest("min_cost", 0, 5.0, method="quantum")])

    def test_not_reentrant(self, engine):
        with PersistentPool(engine, workers=0) as pool:
            acquired = pool._lock.acquire(blocking=False)
            assert acquired
            try:
                with pytest.raises(ReproError, match="reentrant"):
                    pool.run(requests_for(engine, count=2))
            finally:
                pool._lock.release()


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, engine):
        pool = PersistentPool(engine, workers=2)
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(ReproError, match="closed"):
            pool.run(requests_for(engine, count=2))
        with pytest.raises(ReproError, match="closed"):
            pool.refresh()

    def test_context_manager_closes(self, engine):
        with PersistentPool(engine, workers=0) as pool:
            pass
        assert pool.closed

    def test_empty_batch(self, engine):
        with PersistentPool(engine, workers=2) as pool:
            assert pool.run([]) == []

    def test_manual_refresh_bumps_generation(self, engine):
        batch = requests_for(engine, count=2)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2) as pool:
            pool.refresh()
            assert pool.generation == 2
            assert_results_match(serial, pool.run(batch))


class TestEpoch:
    def test_mutation_marks_pool_stale(self, engine):
        with PersistentPool(engine, workers=2) as pool:
            assert not pool.stale
            engine.add_query(np.full(engine.dataset.dim, 0.5), 2)
            assert pool.stale

    def test_stale_pool_refreshes_and_serves_fresh_answers(self, engine):
        batch = requests_for(engine, count=3)
        with PersistentPool(engine, workers=2) as pool:
            pool.run(batch)
            engine.add_query(np.full(engine.dataset.dim, 0.5), 2)
            serial = run_batch(engine, batch, workers=0)
            pooled = pool.run(batch)  # must re-fork, not serve stale hits
            assert pool.generation == 2
            assert not pool.stale
            assert_results_match(serial, pooled)

    def test_direct_index_mutation_also_invalidates(self, engine):
        from repro.core import updates

        with PersistentPool(engine, workers=2) as pool:
            updates.remove_object(engine.index, engine.dataset.n - 1)
            assert pool.stale


class TestStartFailure:
    def test_failed_start_releases_shared_segments(self, engine, monkeypatch):
        """A generation that fails mid-start must not orphan segments.

        The exception's live traceback (held by ``excinfo``) references
        the half-built pool, so refcount-driven ``__del__`` cleanup
        cannot run before the leak check — without the explicit
        teardown in ``_start`` the segments really are still there.
        """
        from repro.check.sanitize import shm_segments
        from repro.parallel import persistent as persistent_mod

        def refuse(*args, **kwargs):
            raise RuntimeError("executor refused to start")

        monkeypatch.setattr(persistent_mod, "ProcessPoolExecutor", refuse)
        before = shm_segments()
        with pytest.raises(RuntimeError, match="refused") as excinfo:
            PersistentPool(engine, workers=2)
        leaked = shm_segments() - before
        assert leaked == frozenset(), sorted(leaked)
        assert excinfo.value.args == ("executor refused to start",)

    def test_failed_start_unregisters_engine(self, engine, monkeypatch):
        from repro.parallel import persistent as persistent_mod

        def refuse(*args, **kwargs):
            raise RuntimeError("no workers today")

        monkeypatch.setattr(persistent_mod, "ProcessPoolExecutor", refuse)
        with pytest.raises(RuntimeError):
            PersistentPool(engine, workers=2)
        assert engine not in persistent_mod._POOL_ENGINES.values()


class TestCrashRecovery:
    def test_killed_workers_are_replaced(self, engine):
        batch = requests_for(engine, count=3)
        serial = run_batch(engine, batch, workers=0)
        with PersistentPool(engine, workers=2) as pool:
            pool.run(batch)
            for pid in list(pool._executor._processes):
                os.kill(pid, signal.SIGKILL)
            pooled = pool.run(batch)  # detects the broken pool, re-forks
            assert pool.restarts == 1
            assert pool.generation == 2
            assert_results_match(serial, pooled)
