"""Parallel index construction must match the serial paths bit-for-bit."""

import numpy as np
import pytest

from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import SubdomainIndex, find_subdomains
from repro.errors import ValidationError
from repro.geometry.arrangement import group_by_signature, signature_matrix
from repro.parallel.construction import _group_rows, parallel_partition
from repro.parallel.pool import resolve_workers


def partition(index):
    """Order-independent (signature, members) view of an index partition."""
    return sorted((s.signature, s.query_ids.tolist()) for s in index.subdomains)


def market(rng, n=25, m=30, d=3):
    objects = rng.random((n, d))
    weights = rng.random((m, d))
    ks = rng.integers(1, 5, size=m)
    return Dataset(objects), QuerySet(weights, ks)


class TestIndexParity:
    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_parallel_matches_literal_and_vectorized(self, rng, mode):
        # The three construction paths — literal BSP loop, vectorized
        # sign-matrix, worker pool — must produce the identical
        # partition in BOTH index modes.
        dataset, queries = market(rng)
        literal = SubdomainIndex(
            dataset, queries, mode=mode, partition_method="literal"
        )
        vectorized = SubdomainIndex(dataset, queries, mode=mode)
        reference = partition(literal)
        assert partition(vectorized) == reference
        for workers in (2, 3):
            parallel = SubdomainIndex(dataset, queries, mode=mode, workers=workers)
            assert partition(parallel) == reference
            # Requests above the host's core count are clamped (floor 2).
            assert parallel.workers == resolve_workers(workers)
            assert [tuple(p) for p in parallel.pairs] == [
                tuple(p) for p in vectorized.pairs
            ]
            assert np.array_equal(parallel.normals, vectorized.normals)

    @pytest.mark.parametrize("mode", ["exact", "relevant"])
    def test_parallel_hits_match_serial(self, rng, mode):
        dataset, queries = market(rng)
        serial = SubdomainIndex(dataset, queries, mode=mode)
        parallel = SubdomainIndex(dataset, queries, mode=mode, workers=2)
        for target in range(dataset.n):
            assert serial.hits(target) == parallel.hits(target)

    def test_relevant_mode_literal_matches_vectorized_partition(self, rng):
        # The mode="relevant" pair subset runs through the same
        # partition machinery; the literal find_subdomains BSP over the
        # relevant normals must agree with the vectorized grouping.
        dataset, queries = market(rng, n=40)
        index = SubdomainIndex(dataset, queries, mode="relevant")
        literal = find_subdomains(
            index.normals, queries.weights, method="literal"
        )
        vectorized = find_subdomains(
            index.normals, queries.weights, method="vectorized"
        )
        assert {k: sorted(v) for k, v in literal.items()} == {
            k: sorted(v) for k, v in vectorized.items()
        }

    def test_duplicate_objects_keep_mask_matches_serial(self, rng):
        # Degenerate pairs (identical points) are dropped identically.
        objects = rng.random((12, 3))
        objects[5] = objects[2]
        objects[9] = objects[2]
        dataset = Dataset(objects)
        queries = QuerySet(rng.random((8, 3)), ks=2)
        serial = SubdomainIndex(dataset, queries, mode="exact")
        parallel = SubdomainIndex(dataset, queries, mode="exact", workers=2)
        assert parallel.pairs == serial.pairs
        assert partition(parallel) == partition(serial)

    def test_literal_method_forces_serial(self, rng):
        # The literal BSP loop is the spec; a worker pool never runs it.
        dataset, queries = market(rng)
        index = SubdomainIndex(
            dataset, queries, partition_method="literal", workers=4
        )
        assert index.workers == 0


class TestParallelPartitionFunction:
    def test_matches_serial_helpers(self, rng):
        points = rng.random((10, 3))
        weights = rng.random((15, 3))
        pairs = np.array(
            [(i, j) for i in range(10) for j in range(i + 1, 10)], dtype=np.intp
        )
        normals_all = points[pairs[:, 0]] - points[pairs[:, 1]]
        keep, normals, groups = parallel_partition(points, pairs, weights, 2)
        assert keep.all()
        assert np.array_equal(normals, normals_all)
        expected = group_by_signature(signature_matrix(weights, normals_all))
        assert set(groups) == set(expected)
        for key, members in expected.items():
            assert groups[key].tolist() == members.tolist()

    def test_empty_pairs_single_cell(self, rng):
        weights = rng.random((6, 3))
        keep, normals, groups = parallel_partition(
            rng.random((4, 3)), np.empty((0, 2), dtype=np.intp), weights, 2
        )
        assert keep.shape == (0,)
        assert normals.shape == (0, 3)
        assert list(groups) == [b""]
        assert groups[b""].tolist() == list(range(6))

    def test_rejects_serial_worker_count(self, rng):
        with pytest.raises(ValidationError, match="workers"):
            parallel_partition(
                rng.random((4, 3)), np.empty((0, 2), dtype=np.intp),
                rng.random((3, 3)), 1,
            )

    def test_rejects_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError, match="dimension"):
            parallel_partition(
                rng.random((4, 3)), np.empty((0, 2), dtype=np.intp),
                rng.random((3, 2)), 2,
            )

    def test_rejects_out_of_range_pairs(self, rng):
        with pytest.raises(ValidationError, match="pair"):
            parallel_partition(
                rng.random((4, 3)), np.array([[0, 9]], dtype=np.intp),
                rng.random((3, 3)), 2,
            )


class TestGroupRows:
    def test_matches_group_by_signature_content(self, rng):
        signatures = rng.choice(np.array([-1, 1], dtype=np.int8), size=(40, 7))
        fast = _group_rows(signatures)
        reference = group_by_signature(signatures)
        assert set(fast) == set(reference)
        for key, members in reference.items():
            assert fast[key].tolist() == members.tolist()

    def test_empty_inputs(self):
        assert _group_rows(np.empty((0, 4), dtype=np.int8)) == {}
        zero_cols = _group_rows(np.empty((3, 0), dtype=np.int8))
        assert list(zero_cols) == [b""]
        assert zero_cols[b""].tolist() == [0, 1, 2]
