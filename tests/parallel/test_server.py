"""The JSONL serving front end: protocol, admission, and lifecycle."""

import io
import json
import threading
import types

import pytest

from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import ReproError, ValidationError
from repro.parallel import IQServer, PersistentPool, serve_stream
from repro.parallel.server import _parse_request


@pytest.fixture
def engine(small_market):
    objects, queries, ks = small_market
    return ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))


def request_line(i, kind="min_cost", target=0, goal=5.0, **extra):
    return json.dumps({"id": i, "kind": kind, "target": target, "goal": goal, **extra})


def responses(out):
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestProtocol:
    def test_end_to_end_responses_in_order(self, engine):
        lines = [request_line(i, target=i) for i in range(4)]
        out = io.StringIO()
        stats = serve_stream(engine, lines, out, workers=0)
        answered = responses(out)
        assert [r["id"] for r in answered] == [0, 1, 2, 3]
        assert all(r["ok"] for r in answered)
        assert stats.served == 4 and stats.failed == 0
        direct = engine.min_cost(2, tau=5)
        assert answered[2]["result"]["hits_after"] == direct.hits_after
        assert answered[2]["result"]["total_cost"] == direct.total_cost
        assert answered[2]["result"]["satisfied"] == direct.satisfied

    def test_max_hit_and_options_over_the_wire(self, engine):
        lines = [
            request_line(0, kind="max_hit", target=1, goal=0.8),
            request_line(1, kind="max_hit", target=1, goal=0.8,
                         method="random", options={"seed": 7}),
        ]
        out = io.StringIO()
        serve_stream(engine, lines, out, workers=0)
        answered = responses(out)
        direct = engine.max_hit(1, budget=0.8, method="random", seed=7)
        assert answered[1]["result"]["hits_after"] == direct.hits_after

    def test_invalid_json_gets_error_response(self, engine):
        out = io.StringIO()
        stats = serve_stream(engine, ["this is not json"], out, workers=0)
        answered = responses(out)
        assert answered[0]["ok"] is False
        assert "invalid JSON" in answered[0]["error"]
        assert stats.failed == 1 and stats.served == 0

    def test_unknown_kind_rejected_per_request(self, engine):
        lines = [request_line(0, kind="median"), request_line(1, target=1)]
        out = io.StringIO()
        stats = serve_stream(engine, lines, out, workers=0)
        answered = {r["id"]: r for r in responses(out)}
        assert answered[0]["ok"] is False and "kind" in answered[0]["error"]
        assert answered[1]["ok"] is True
        assert stats.failed == 1 and stats.served == 1

    def test_execution_error_does_not_stop_the_stream(self, engine):
        lines = [request_line(0, target=10_000), request_line(1, target=1)]
        out = io.StringIO()
        stats = serve_stream(engine, lines, out, workers=0)
        answered = {r["id"]: r for r in responses(out)}
        assert answered[0]["ok"] is False
        assert answered[1]["ok"] is True
        assert stats.failed == 1 and stats.served == 1

    def test_unknown_op_rejected(self, engine):
        out = io.StringIO()
        serve_stream(engine, [json.dumps({"op": "reboot"})], out, workers=0)
        answered = responses(out)
        assert answered[0]["ok"] is False and "reboot" in answered[0]["error"]

    def test_non_object_line_rejected(self, engine):
        out = io.StringIO()
        serve_stream(engine, ["[1, 2, 3]"], out, workers=0)
        assert responses(out)[0]["ok"] is False

    def test_blank_lines_ignored(self, engine):
        out = io.StringIO()
        stats = serve_stream(engine, ["", "   ", request_line(0)], out, workers=0)
        assert stats.served == 1 and stats.failed == 0


class TestControlOps:
    def test_stats_op_reports_counters(self, engine):
        lines = [request_line(0), json.dumps({"op": "stats"})]
        out = io.StringIO()
        serve_stream(engine, lines, out, workers=0)
        stats_lines = [r for r in responses(out) if r.get("op") == "stats"]
        assert len(stats_lines) == 1
        assert "queued" in stats_lines[0]["stats"]
        assert stats_lines[0]["stats"]["workers"] == 0

    def test_mid_stream_stats_clock_is_running(self, engine):
        """Regression: ``seconds`` used to stay 0.0 until the stream ended.

        A stats op answered mid-stream must report the elapsed wall-clock
        at *read time* — and therefore a finite, non-zero throughput once
        anything has been served — not the stale field the old code only
        assigned after EOF.  The generator reader yields each stats op
        only after the preceding response has been emitted, so the
        ``served`` counts the snapshots must carry are deterministic.
        """
        import time

        out = io.StringIO()

        def answered(request_id):
            return any(r.get("id") == request_id for r in responses(out))

        def lines():
            yield request_line(0)
            while not answered(0):
                time.sleep(0.001)
            yield json.dumps({"op": "stats"})
            yield request_line(1, target=1)
            while not answered(1):
                time.sleep(0.001)
            yield json.dumps({"op": "stats"})

        serve_stream(engine, lines(), out, workers=0)
        stats_lines = [r["stats"] for r in responses(out) if r.get("op") == "stats"]
        assert len(stats_lines) == 2
        first, second = stats_lines
        assert first["seconds"] > 0.0
        assert second["seconds"] > first["seconds"]
        assert first["served"] == 1 and first["throughput"] > 0.0
        assert second["served"] == 2
        assert second["dispatch_seconds"] > 0.0
        assert second["avg_request_seconds"] > 0.0

    def test_stats_op_before_any_request_reports_zero_throughput(self, engine):
        # served == 0: the guarded division must yield 0.0, not a crash.
        out = io.StringIO()
        serve_stream(engine, [json.dumps({"op": "stats"})], out, workers=0)
        (reply,) = [r["stats"] for r in responses(out) if r.get("op") == "stats"]
        assert reply["served"] == 0
        assert reply["throughput"] == 0.0
        assert reply["avg_request_seconds"] == 0.0
        assert reply["seconds"] > 0.0

    def test_shutdown_drains_queued_requests(self, engine):
        lines = [request_line(i, target=i) for i in range(3)]
        lines.append(json.dumps({"op": "shutdown"}))
        lines.append(request_line(99))  # after shutdown: never read
        out = io.StringIO()
        stats = serve_stream(engine, lines, out, workers=0)
        answered = responses(out)
        ids = [r["id"] for r in answered if "id" in r]
        assert set(ids) == {0, 1, 2}  # 99 was not admitted
        assert any(r.get("op") == "shutdown" for r in answered)
        assert stats.served == 3


class _StubResult:
    """Duck-typed IQResult for driving the server without an engine."""

    def __init__(self, target):
        self.target = target
        self.strategy = types.SimpleNamespace(vector=[0.0])
        self.hits_before = 0
        self.hits_after = 1
        self.total_cost = 0.0
        self.satisfied = True
        self.evaluations = 1


class _BlockingPool:
    """A stand-in pool whose first dispatch blocks until released."""

    def __init__(self):
        self.workers = 0
        self.generation = 1
        self.restarts = 0
        self.mmap_resident = 0
        self.engine = types.SimpleNamespace(kernel_backend="python")
        self.started = threading.Event()
        self.release = threading.Event()

    def run_outcomes(self, requests):
        self.started.set()
        if not self.release.wait(timeout=10):
            raise ReproError("blocking stub was never released")
        return [(True, _StubResult(request.target)) for request in requests]


class TestAdmission:
    def test_queue_full_rejects_with_error(self):
        pool = _BlockingPool()
        server = IQServer(pool, batch_size=1, max_queue=1)

        def lines():
            yield request_line(0)
            # Wait until request 0 is being served (main loop blocked in
            # the stub), so admission decisions below are deterministic.
            if not pool.started.wait(timeout=10):
                raise AssertionError("server never dispatched request 0")
            yield request_line(1)  # fills the queue (max_queue=1)
            yield request_line(2)  # rejected
            yield request_line(3)  # rejected
            pool.release.set()

        out = io.StringIO()
        stats = server.serve(lines(), out)
        answered = {r["id"]: r for r in responses(out)}
        assert answered[0]["ok"] and answered[1]["ok"]
        assert not answered[2]["ok"] and "queue full" in answered[2]["error"]
        assert not answered[3]["ok"]
        assert stats.served == 2 and stats.rejected == 2

    def test_whole_batch_failure_answers_every_request(self):
        pool = _BlockingPool()
        pool.run_outcomes = lambda requests: (_ for _ in ()).throw(
            ReproError("workers died twice")
        )
        server = IQServer(pool, batch_size=4)
        out = io.StringIO()
        stats = server.serve([request_line(0), request_line(1)], out)
        answered = responses(out)
        assert all(not r["ok"] for r in answered)
        assert stats.failed == 2

    def test_bounds_validated(self, engine):
        with PersistentPool(engine, workers=0) as pool:
            with pytest.raises(ValidationError):
                IQServer(pool, batch_size=0)
            with pytest.raises(ValidationError):
                IQServer(pool, max_queue=0)


class TestLifecycle:
    def test_serve_not_reentrant(self):
        server = IQServer(_BlockingPool())
        server._serving = True
        with pytest.raises(ReproError, match="reentrant"):
            server.serve([], io.StringIO())

    def test_serve_borrows_the_pool(self, engine):
        lines = [request_line(0)]
        with PersistentPool(engine, workers=0) as pool:
            serve_stream(engine, lines, io.StringIO(), pool=pool)
            assert not pool.closed  # borrowed, not owned
            serve_stream(engine, lines, io.StringIO(), pool=pool)  # reusable

    def test_serve_rejects_foreign_pool(self, engine, small_market):
        objects, queries, ks = small_market
        other = ImprovementQueryEngine(Dataset(objects), QuerySet(queries, ks))
        with PersistentPool(other, workers=0) as pool:
            with pytest.raises(ValidationError, match="different engine"):
                serve_stream(engine, [], io.StringIO(), pool=pool)

    def test_stats_timing_and_throughput(self, engine):
        lines = [request_line(i, target=i) for i in range(3)]
        stats = serve_stream(engine, lines, io.StringIO(), workers=0)
        assert stats.seconds > 0
        assert stats.throughput > 0
        assert stats.batches >= 1
        payload = stats.as_dict()
        assert payload["served"] == 3 and payload["throughput"] == stats.throughput

    def test_pooled_serve_matches_serial_serve(self, engine):
        lines = [request_line(i, target=i) for i in range(4)] + [
            request_line(10 + i, kind="max_hit", target=i, goal=0.8) for i in range(4)
        ]
        serial_out, pooled_out = io.StringIO(), io.StringIO()
        serve_stream(engine, lines, serial_out, workers=0)
        serve_stream(engine, lines, pooled_out, workers=2)
        assert serial_out.getvalue() == pooled_out.getvalue()


class TestReaderFailure:
    def test_reader_exception_surfaces_after_drain(self, engine):
        """A dying client must not be silent: owed responses first, then raise."""

        def lines():
            yield request_line(0)
            raise OSError("client pipe vanished mid-stream")

        out = io.StringIO()
        with pytest.raises(ReproError, match="reader failed mid-stream"):
            serve_stream(engine, lines(), out, workers=0)
        answered = responses(out)
        assert [r["id"] for r in answered] == [0]
        assert answered[0]["ok"] is True

    def test_reader_kill_leaks_no_workers_or_segments(self, engine):
        """The owned pool shuts down even when the reader dies (forked leg)."""
        import gc
        import multiprocessing

        from repro.check.sanitize import shm_segments

        before_children = {p.pid for p in multiprocessing.active_children()}
        before_segments = shm_segments()

        def lines():
            yield request_line(0)
            raise OSError("client went away")

        with pytest.raises(ReproError, match="reader failed"):
            serve_stream(engine, lines(), io.StringIO(), workers=2)
        gc.collect()
        leaked = shm_segments() - before_segments
        assert leaked == frozenset(), sorted(leaked)
        survivors = {p.pid for p in multiprocessing.active_children()} - before_children
        assert survivors == set()

    def test_server_survives_for_the_next_stream(self, engine):
        """One failed stream must not wedge the server or its pool."""

        def poisoned():
            yield request_line(0)
            raise ValueError("boom")

        with PersistentPool(engine, workers=0) as pool:
            server = IQServer(pool)
            with pytest.raises(ReproError):
                server.serve(poisoned(), io.StringIO())
            out = io.StringIO()
            stats = server.serve([request_line(1, target=1)], out)
            assert stats.served == 1
            assert responses(out)[0]["ok"] is True


class TestParseRequest:
    def test_missing_fields_rejected(self):
        for payload in (
            {},
            {"kind": "min_cost"},
            {"kind": "min_cost", "target": 0},
            {"kind": "min_cost", "target": "zero", "goal": 5},
            {"kind": "min_cost", "target": 0, "goal": "five"},
            {"kind": "min_cost", "target": True, "goal": 5},
            {"kind": "min_cost", "target": 0, "goal": 5, "method": 3},
            {"kind": "min_cost", "target": 0, "goal": 5, "options": [1]},
        ):
            with pytest.raises(ValidationError):
                _parse_request(payload)

    def test_options_become_sorted_tuples(self):
        request = _parse_request(
            {"kind": "max_hit", "target": 1, "goal": 0.5,
             "options": {"seed": 7, "attempts": 2}}
        )
        assert request.options == (("attempts", 2), ("seed", 7))
