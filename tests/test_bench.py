"""Tests for the benchmark configuration and harness utilities."""

import json
import time

import pytest

from repro.bench.config import SCALES, load_config
from repro.bench.harness import (
    BenchRecord,
    Stopwatch,
    TableResult,
    summarize_records,
    time_call,
    write_bench_json,
)
from repro.errors import ValidationError


class TestConfig:
    def test_default_scale_is_bench(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert load_config().name == "bench"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert load_config().name == "tiny"

    def test_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert load_config("paper").name == "paper"

    def test_unknown_scale(self):
        with pytest.raises(ValidationError):
            load_config("galactic")

    def test_paper_scale_matches_table2(self):
        paper = SCALES["paper"]
        assert paper.num_objects == 100_000
        assert paper.object_sweep == (50_000, 100_000, 150_000, 200_000)
        assert paper.num_queries == 10_000
        assert paper.query_sweep == (5_000, 10_000, 15_000)
        assert paper.tau == 250
        assert paper.budget == 50.0
        assert paper.dimensions == 3
        assert paper.dim_sweep == (1, 2, 3, 4, 5)
        assert paper.k_range == (1, 50)

    def test_all_scales_consistent(self):
        for config in SCALES.values():
            assert config.num_objects in config.object_sweep
            assert config.num_queries in config.query_sweep
            assert config.tau >= 1 and config.budget >= 0


class TestHarness:
    def test_time_call_returns_result_and_duration(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first >= 0.005

    def test_table_result_roundtrip(self):
        table = TableResult("T", ["x", "y"], notes="y doubles x")
        table.add(1, 2.0)
        table.add(2, 4.0)
        assert table.column("y") == [2.0, 4.0]
        text = table.render()
        assert "T" in text and "expected shape" in text
        assert "4" in text

    def test_table_formatting_of_extremes(self):
        table = TableResult("T", ["v"])
        table.add(0.0)
        table.add(123456.789)
        table.add(0.000001)
        text = table.render()
        assert "0" in text and "1.23e+05" in text and "1e-06" in text


class TestBenchRecord:
    def test_speedup_and_serialization(self):
        record = BenchRecord(
            figure="fig4",
            case="|D|=100",
            config={"num_objects": 100},
            literal_seconds=2.0,
            vectorized_seconds=0.5,
        )
        assert record.speedup == pytest.approx(4.0)
        payload = record.to_dict()
        assert payload["figure"] == "fig4"
        assert payload["speedup"] == pytest.approx(4.0)

    def test_zero_time_does_not_divide_by_zero(self):
        record = BenchRecord("f", "c", {}, literal_seconds=1.0, vectorized_seconds=0.0)
        assert record.speedup > 0

    def test_summary_groups_by_figure(self):
        records = [
            BenchRecord("fig4", "a", {}, 2.0, 1.0),
            BenchRecord("fig4", "b", {}, 8.0, 1.0),
            BenchRecord("fig5", "c", {}, 3.0, 1.0),
        ]
        summary = summarize_records(records)
        assert summary["fig4"]["points"] == 2
        assert summary["fig4"]["min_speedup"] == pytest.approx(2.0)
        assert summary["fig4"]["max_speedup"] == pytest.approx(8.0)
        assert summary["fig5"]["points"] == 1

    def test_write_bench_json_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        records = [BenchRecord("fig7", "target=0", {"seed": 1}, 1.0, 0.25)]
        payload = write_bench_json(records, path, scale="tiny")
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == "repro-bench-regression/1"
        assert on_disk["scale"] == "tiny"
        assert on_disk["records"][0]["speedup"] == pytest.approx(4.0)
        assert "fig7" in on_disk["summary"]


class TestRegressionHarness:
    def test_smoke_run_checks_parity_and_writes_json(self, tmp_path):
        from repro.bench.regression import run_regression

        path = tmp_path / "BENCH_SMOKE.json"
        payload = run_regression(smoke=True, out=str(path))
        assert path.exists()
        assert payload["scale"] == "tiny"
        figures = {record["figure"] for record in payload["records"]}
        assert figures == {
            "fig4", "fig5", "fig7", "par_index", "par_batch", "serve", "persist",
            "shard_build", "shard_update", "native", "mmap_load",
            "analyze_overhead",
        }
        for record in payload["records"]:
            assert record["literal_seconds"] > 0
            assert record["vectorized_seconds"] > 0
        assert payload["cpus"] >= 1
        for record in payload["records"]:
            if record["figure"] == "par_batch":
                assert record["config"]["driver"] == "persistent"
                assert record["config"]["resolved_workers"] >= 2
            if record["figure"] == "serve":
                assert record["config"]["throughput"] > 0
                assert record["config"]["batches"] >= 1
            if record["figure"] == "shard_build":
                assert record["config"]["shards"] >= 2
                assert sum(record["config"]["shard_sizes"]) > 0
            if record["figure"] == "shard_update":
                assert record["config"]["touched_shards"] >= 1
            if record["figure"] == "native":
                assert record["config"]["resolved"] in ("python", "native")
            if record["figure"] == "mmap_load":
                assert record["config"]["mmap_bytes"] > record["config"]["npz_bytes"]
            if record["figure"] == "analyze_overhead":
                assert record["config"]["requests"] >= 2
        assert payload["kernel"] in ("python", "native")
        assert isinstance(payload["numba"], bool)

    def test_cli_entry_point(self, capsys):
        from repro.bench.regression import main

        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "speedup" in out


class TestFiguresTiny:
    """Each figure runner must produce a well-formed table quickly."""

    @pytest.fixture(scope="class")
    def config(self):
        return load_config("tiny")

    def test_fig4(self, config):
        from repro.bench.figures import fig4_indexing_objects

        table = fig4_indexing_objects(config)
        assert table.column("|D|") == list(config.object_sweep)

    def test_fig13(self, config):
        from repro.bench.figures import fig13_dimensionality

        table = fig13_dimensionality(config)
        assert table.column("variables") == list(config.dim_sweep)
        assert all(t > 0 for t in table.column("time (ms)"))

    def test_x1(self, config):
        from repro.bench.figures import x1_exhaustive_gap

        table = x1_exhaustive_gap(config)
        assert all(r >= 1 - 1e-6 for r in table.column("cost ratio (heur/exact)"))

    def test_x3_operations_complete(self, config):
        from repro.bench.figures import x3_updates_ablation

        table = x3_updates_ablation(config)
        assert len(table.rows) == 4


class TestPlanMetadata:
    def test_record_plan_serialized_when_set(self):
        record = BenchRecord(
            "fig7", "target=0", {}, 1.0, 0.5, plan={"kind": "min_cost"}
        )
        assert record.to_dict()["plan"] == {"kind": "min_cost"}
        bare = BenchRecord("fig4", "|D|=10", {}, 1.0, 0.5)
        assert "plan" not in bare.to_dict()

    def test_fig7_records_carry_plans(self, tmp_path):
        from repro.bench.regression import run_regression

        payload = run_regression(smoke=True)
        for record in payload["records"]:
            if record["figure"] == "fig7":
                plan = record["plan"]
                assert plan["kind"] == "min_cost"
                assert plan["solver"] == "efficient"
                assert plan["evaluator"] == "ese"
            elif record["figure"] == "par_index":
                if "routing" in record["config"]:
                    # The sharded case compares two sharded builds; no
                    # single monolithic plan describes it.
                    assert "plan" not in record
                    continue
                # The plan describes the parallel-built index, so its
                # worker count must match the record's *resolved* count
                # (requests above os.cpu_count() are clamped).
                assert record["plan"]["workers"] == record["config"]["resolved_workers"]
            elif record["figure"] == "par_batch":
                # The batch bench shares one serially-built index across
                # pool sizes; the plan reports that build.
                assert record["plan"]["workers"] == 0
                assert record["config"]["workers"] >= 2
            else:
                assert "plan" not in record


class TestRegressionCheck:
    def make_payload(self, median, scale="tiny"):
        return {
            "schema": "repro-bench-regression/1",
            "scale": scale,
            "summary": {"fig4": {"points": 1, "min_speedup": median,
                                 "median_speedup": median, "max_speedup": median}},
        }

    def test_no_regression(self):
        from repro.bench.regression import check_regression

        assert check_regression(self.make_payload(10.0), self.make_payload(10.0)) == []
        # Generous floor: half the baseline still passes.
        assert check_regression(self.make_payload(5.1), self.make_payload(10.0)) == []

    def test_regression_detected(self):
        from repro.bench.regression import check_regression

        problems = check_regression(self.make_payload(2.0), self.make_payload(10.0))
        assert problems and "fig4" in problems[0]

    def test_scale_mismatch_is_a_problem(self):
        from repro.bench.regression import check_regression

        problems = check_regression(
            self.make_payload(10.0, scale="bench"), self.make_payload(10.0, scale="tiny")
        )
        assert problems and "scale mismatch" in problems[0]

    def test_missing_figure_is_a_problem(self):
        from repro.bench.regression import check_regression

        run = self.make_payload(10.0)
        baseline = self.make_payload(10.0)
        baseline["summary"]["fig9"] = baseline["summary"]["fig4"]
        problems = check_regression(run, baseline)
        assert problems and "fig9" in problems[0]

    def test_unknown_schema_rejected(self):
        from repro.bench.regression import check_regression

        baseline = self.make_payload(10.0)
        baseline["schema"] = "something-else/9"
        problems = check_regression(self.make_payload(10.0), baseline)
        assert problems and "schema" in problems[0]

    def test_cli_check_exit_codes(self, tmp_path, capsys):
        from repro.bench.regression import main, run_regression

        baseline_path = tmp_path / "BASE.json"
        run_regression(smoke=True, out=str(baseline_path))
        assert main(["--smoke", "--check", str(baseline_path)]) == 0
        assert "no regression" in capsys.readouterr().out

        # An impossible baseline forces the regression exit code.
        inflated = json.loads(baseline_path.read_text())
        for stats in inflated["summary"].values():
            stats["median_speedup"] = 1e9
        bad_path = tmp_path / "INFLATED.json"
        bad_path.write_text(json.dumps(inflated))
        assert main(["--smoke", "--check", str(bad_path)]) == 3

    def test_cli_check_unreadable_baseline(self, tmp_path):
        from repro.bench.regression import main

        assert main(["--smoke", "--check", str(tmp_path / "missing.json")]) == 1

    def make_pooled_payload(self, median, cpus, scale="bench"):
        stats = {"points": 1, "min_speedup": median,
                 "median_speedup": median, "max_speedup": median}
        return {
            "schema": "repro-bench-regression/1",
            "scale": scale,
            "cpus": cpus,
            "summary": {"par_batch": dict(stats), "serve": dict(stats)},
        }

    def test_absolute_floor_enforced_on_multicore(self):
        from repro.bench.regression import check_regression

        # Both run and baseline slid under 1x: the relative ratio passes,
        # but the absolute pooled floor must still flag it.
        run = self.make_pooled_payload(0.6, cpus=4)
        baseline = self.make_pooled_payload(0.7, cpus=4)
        problems = check_regression(run, baseline)
        assert len(problems) == 2
        assert any("par_batch" in p and "absolute" in p for p in problems)
        assert any("serve" in p for p in problems)

    def test_absolute_floor_skipped_on_single_core(self):
        from repro.bench.regression import check_regression

        run = self.make_pooled_payload(0.6, cpus=1)
        baseline = self.make_pooled_payload(0.7, cpus=1)
        assert check_regression(run, baseline) == []

    def test_absolute_floor_skipped_at_tiny_scale(self):
        from repro.bench.regression import check_regression

        # Smoke runs fork a pool for micro-batches where IPC overhead
        # legitimately dominates, even on multi-core hosts.
        run = self.make_pooled_payload(0.6, cpus=4, scale="tiny")
        baseline = self.make_pooled_payload(0.7, cpus=4, scale="tiny")
        assert check_regression(run, baseline) == []

    def test_absolute_floor_passes_above_one(self):
        from repro.bench.regression import check_regression

        run = self.make_pooled_payload(1.8, cpus=4)
        baseline = self.make_pooled_payload(1.6, cpus=4)
        assert check_regression(run, baseline) == []
