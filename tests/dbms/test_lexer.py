import pytest

from repro.dbms.lexer import Token, tokenize
from repro.errors import SQLSyntaxError


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql) if t.kind != "EOF"]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "FROM"),
            ("KEYWORD", "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("myTable _col2") == [("IDENT", "myTable"), ("IDENT", "_col2")]

    def test_numbers(self):
        assert kinds("1 2.5 .5 1e3 2.5E-2") == [
            ("NUMBER", "1"),
            ("NUMBER", "2.5"),
            ("NUMBER", ".5"),
            ("NUMBER", "1e3"),
            ("NUMBER", "2.5E-2"),
        ]

    def test_strings_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0] == Token("STRING", "it's", 0)

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        assert kinds("a <= b <> c != d") == [
            ("IDENT", "a"),
            ("OP", "<="),
            ("IDENT", "b"),
            ("OP", "<>"),
            ("IDENT", "c"),
            ("OP", "!="),
            ("IDENT", "d"),
        ]

    def test_comments_skipped(self):
        assert kinds("SELECT -- this is a comment\n1") == [
            ("KEYWORD", "SELECT"),
            ("NUMBER", "1"),
        ]

    def test_bad_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_improvement_keywords(self):
        assert kinds("IMPROVE TARGET REACH BUDGET ADJUST FROZEN APPLY") == [
            ("KEYWORD", w)
            for w in ["IMPROVE", "TARGET", "REACH", "BUDGET", "ADJUST", "FROZEN", "APPLY"]
        ]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"
