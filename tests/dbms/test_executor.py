import pytest

from repro.dbms.executor import Database
from repro.errors import SQLCatalogError, SQLExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INT, b FLOAT, name TEXT)")
    database.execute(
        "INSERT INTO t VALUES (1, 1.5, 'one'), (2, 2.5, 'two'), (3, 3.5, 'three')"
    )
    return database


class TestDDL:
    def test_show_tables(self, db):
        db.execute("CREATE TABLE z (x INT)")
        assert db.execute("SHOW TABLES").column("table") == ["t", "z"]

    def test_describe(self, db):
        result = db.execute("DESCRIBE t")
        assert result.rows == [["a", "INT"], ["b", "FLOAT"], ["name", "TEXT"]]

    def test_duplicate_table(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("CREATE TABLE t (x INT)")

    def test_drop(self, db):
        db.execute("DROP TABLE t")
        with pytest.raises(SQLCatalogError):
            db.execute("SELECT * FROM t")


class TestInsertTypes:
    def test_int_column_rejects_fraction(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO t VALUES (1.5, 1.0, 'x')")

    def test_text_column_rejects_number(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO t VALUES (1, 1.0, 42)")

    def test_arity_checked(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO t VALUES (1, 2.0)")

    def test_null_allowed(self, db):
        db.execute("INSERT INTO t VALUES (NULL, NULL, NULL)")
        assert len(db.execute("SELECT * FROM t")) == 4


class TestSelect:
    def test_where_filters(self, db):
        result = db.execute("SELECT name FROM t WHERE a >= 2")
        assert result.column("name") == ["two", "three"]

    def test_arithmetic_in_where(self, db):
        result = db.execute("SELECT a FROM t WHERE a * 2 + 1 = 5")
        assert result.column("a") == [2]

    def test_order_and_limit(self, db):
        result = db.execute("SELECT a FROM t ORDER BY a DESC LIMIT 2")
        assert result.column("a") == [3, 2]

    def test_rowid_pseudo_column(self, db):
        result = db.execute("SELECT rowid, a FROM t WHERE rowid = 1")
        assert result.rows == [[1, 2]]

    def test_string_comparison(self, db):
        result = db.execute("SELECT a FROM t WHERE name = 'two'")
        assert result.column("a") == [2]

    def test_and_or_not(self, db):
        result = db.execute("SELECT a FROM t WHERE a = 1 OR NOT (a < 3)")
        assert result.column("a") == [1, 3]

    def test_null_comparisons_false(self, db):
        db.execute("INSERT INTO t VALUES (NULL, 9.0, 'n')")
        assert db.execute("SELECT a FROM t WHERE a < 100").column("a") == [1, 2, 3]

    def test_unknown_column(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("SELECT nope FROM t")

    def test_pretty_renders(self, db):
        text = db.execute("SELECT a, name FROM t").pretty()
        assert "name" in text and "three" in text


class TestUpdateDelete:
    def test_update_with_expression(self, db):
        db.execute("UPDATE t SET b = b * 10 WHERE a = 2")
        assert db.execute("SELECT b FROM t WHERE a = 2").column("b") == [25.0]

    def test_update_all_rows(self, db):
        db.execute("UPDATE t SET a = a + 100")
        assert db.execute("SELECT a FROM t").column("a") == [101, 102, 103]

    def test_delete_where(self, db):
        result = db.execute("DELETE FROM t WHERE a = 2")
        assert result.status == "DELETE 1"
        assert db.execute("SELECT a FROM t").column("a") == [1, 3]

    def test_division_by_zero(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT a FROM t WHERE a / 0 = 1")

    def test_type_error_in_arithmetic(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT a FROM t WHERE name + 1 = 2")


class TestScript:
    def test_run_script(self):
        db = Database()
        results = db.run_script(
            "CREATE TABLE s (x INT); INSERT INTO s VALUES (1), (2); SELECT x FROM s"
        )
        assert len(results) == 3
        assert results[2].column("x") == [1, 2]
