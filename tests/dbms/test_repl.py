import io

from repro.dbms.__main__ import run_repl


def run_session(script: str) -> str:
    stdin = io.StringIO(script)
    stdout = io.StringIO()
    code = run_repl(stdin=stdin, stdout=stdout)
    assert code == 0
    return stdout.getvalue()


class TestRepl:
    def test_basic_session(self):
        out = run_session(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "SELECT a FROM t;\n"
            ".quit\n"
        )
        assert "CREATE TABLE t" in out
        assert "INSERT 2" in out
        assert "a" in out and "2" in out

    def test_multiline_statement(self):
        out = run_session(
            "CREATE TABLE t\n(a INT);\nINSERT INTO t\nVALUES (7);\nSELECT a FROM t;\n"
        )
        assert "7" in out

    def test_error_recovery(self):
        out = run_session("SELECT * FROM missing;\nCREATE TABLE t (a INT);\n.quit\n")
        assert "error:" in out
        assert "CREATE TABLE t" in out  # session continues after an error

    def test_meta_commands(self):
        out = run_session("CREATE TABLE z (x INT);\n.tables\n.help\n.bogus\n.quit\n")
        assert "z" in out
        assert "IMPROVE" in out  # help text
        assert "unknown meta command" in out

    def test_improve_through_repl(self):
        out = run_session(
            "CREATE TABLE o (a FLOAT, b FLOAT);\n"
            "INSERT INTO o VALUES (0.9, 0.9), (0.1, 0.1);\n"
            "CREATE TABLE q (wa FLOAT, wb FLOAT, k INT);\n"
            "INSERT INTO q VALUES (0.5, 0.5, 1);\n"
            "CREATE IMPROVEMENT INDEX ix ON o (a, b) USING QUERIES q (wa, wb, k);\n"
            "IMPROVE o TARGET WHERE rowid = 0 USING ix REACH 1;\n"
            ".quit\n"
        )
        assert "hits_after" in out
        assert "error" not in out
