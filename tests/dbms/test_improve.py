import pytest

from repro.dbms.executor import Database
from repro.errors import SQLCatalogError, SQLExecutionError, SQLSyntaxError


@pytest.fixture
def db():
    """The camera scenario from the paper's Figure 1 (max-sense)."""
    database = Database()
    database.run_script(
        """
        CREATE TABLE cameras (resolution FLOAT, storage FLOAT, price FLOAT);
        INSERT INTO cameras VALUES
            (10, 2, 250), (12, 4, 340), (8, 8, 199), (14, 6, 410), (9, 3, 150);
        CREATE TABLE prefs (w_res FLOAT, w_sto FLOAT, w_pri FLOAT, k INT);
        INSERT INTO prefs VALUES
            (5.0, 3.5, -0.05, 1), (2.5, 7.0, -0.08, 1),
            (1.0, 1.0, -0.01, 2), (4.0, 1.0, -0.02, 2);
        CREATE IMPROVEMENT INDEX idx ON cameras (resolution, storage, price)
            USING QUERIES prefs (w_res, w_sto, w_pri, k) SENSE MAX;
        """
    )
    return database


class TestImproveReach:
    def test_min_cost_reaches_goal(self, db):
        result = db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3")
        assert result.column("satisfied") == [1]
        assert result.column("hits_after")[0] >= 3

    def test_result_schema(self, db):
        result = db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2")
        assert result.columns == [
            "rowid",
            "delta_resolution",
            "delta_storage",
            "delta_price",
            "cost",
            "hits_before",
            "hits_after",
            "satisfied",
        ]

    def test_apply_writes_back(self, db):
        before = db.execute("SELECT resolution FROM cameras WHERE rowid = 0").rows[0][0]
        result = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 APPLY"
        )
        delta = result.column("delta_resolution")[0]
        after = db.execute("SELECT resolution FROM cameras WHERE rowid = 0").rows[0][0]
        assert after == pytest.approx(before + delta)

    def test_without_apply_no_write(self, db):
        before = db.execute("SELECT * FROM cameras").rows
        db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3")
        assert db.execute("SELECT * FROM cameras").rows == before

    def test_adjust_frozen_column(self, db):
        result = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2 "
            "ADJUST resolution BETWEEN -100 AND 100, storage BETWEEN -100 AND 100, "
            "price FROZEN"
        )
        assert result.column("delta_price")[0] == pytest.approx(0.0, abs=1e-9)

    def test_unmentioned_columns_frozen(self, db):
        result = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2 "
            "ADJUST resolution BETWEEN -100 AND 100"
        )
        assert result.column("delta_storage")[0] == pytest.approx(0.0, abs=1e-9)
        assert result.column("delta_price")[0] == pytest.approx(0.0, abs=1e-9)

    def test_method_selection(self, db):
        efficient = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 METHOD efficient"
        )
        greedy = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 METHOD greedy"
        )
        assert efficient.column("cost")[0] <= greedy.column("cost")[0] * 1.2 + 1e-9


class TestImproveBudget:
    def test_budget_respected(self, db):
        result = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 2 USING idx BUDGET 4 COST L1"
        )
        assert result.column("cost")[0] <= 4 + 1e-9

    def test_zero_budget(self, db):
        result = db.execute("IMPROVE cameras TARGET WHERE rowid = 2 USING idx BUDGET 0")
        assert result.column("cost")[0] == 0
        assert result.column("hits_after")[0] == result.column("hits_before")[0]


class TestMultiTarget:
    def test_multi_target_rows(self, db):
        result = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 OR rowid = 2 USING idx REACH 3"
        )
        assert result.column("rowid") == [0, 2]
        assert result.column("hits_after")[0] >= 3

    def test_multi_target_budget(self, db):
        result = db.execute(
            "IMPROVE cameras TARGET WHERE price < 300 USING idx BUDGET 6"
        )
        assert sum(result.column("cost")) <= 6 + 1e-9


class TestIndexLifecycle:
    def test_index_refreshes_after_insert(self, db):
        first = db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3")
        db.execute("INSERT INTO prefs VALUES (9.0, 0.5, -0.01, 1)")
        second = db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3")
        # One more query in the workload: hit counts may change, and the
        # statement must not fail on the stale engine.
        assert second.column("hits_after")[0] >= 0
        assert first.columns == second.columns

    def test_drop_table_forgets_index(self, db):
        db.execute("DROP TABLE prefs")
        with pytest.raises(SQLCatalogError):
            db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2")

    def test_duplicate_index_name(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute(
                "CREATE IMPROVEMENT INDEX idx ON cameras (resolution, storage, price) "
                "USING QUERIES prefs (w_res, w_sto, w_pri, k)"
            )


class TestErrors:
    def test_unknown_index(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING nope REACH 2")

    def test_wrong_table_for_index(self, db):
        db.execute("CREATE TABLE other (x FLOAT)")
        with pytest.raises(SQLExecutionError):
            db.execute("IMPROVE other TARGET WHERE rowid = 0 USING idx REACH 2")

    def test_empty_target(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("IMPROVE cameras TARGET WHERE rowid = 99 USING idx REACH 2")

    def test_bad_cost_name(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2 COST L7")

    def test_bad_adjust_column(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute(
                "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2 "
                "ADJUST nonexistent FROZEN"
            )

    def test_text_attribute_rejected_at_improve(self):
        db = Database()
        db.run_script(
            """
            CREATE TABLE o (a FLOAT, label TEXT);
            INSERT INTO o VALUES (1.0, 'x'), (2.0, 'y');
            CREATE TABLE q (w FLOAT, k INT);
            INSERT INTO q VALUES (0.5, 1);
            CREATE IMPROVEMENT INDEX ix ON o (label) USING QUERIES q (w, k);
            """
        )
        with pytest.raises(SQLExecutionError):
            db.execute("IMPROVE o TARGET WHERE rowid = 0 USING ix REACH 1")

    def test_paper_figure1_example(self, db):
        """Applying s=(5,2,-50) to camera p1 overtakes p2 on q1 and q2 —
        the worked example of the paper's Figure 1, via SQL."""
        db.execute(
            "UPDATE cameras SET resolution = 15, storage = 4, price = 200 WHERE rowid = 0"
        )
        result = db.execute("IMPROVE cameras TARGET WHERE rowid = 0 USING idx BUDGET 0")
        assert result.column("hits_before")[0] >= 2  # hits q1 and q2 already


class TestExplainImprove:
    def test_one_plan_row_per_target(self, db):
        result = db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid < 2 USING idx REACH 3"
        )
        assert result.columns[0] == "rowid"
        assert result.column("rowid") == [0, 1]
        assert result.column("kind") == ["min_cost", "min_cost"]
        assert result.column("solver") == ["efficient", "efficient"]
        assert result.status == "EXPLAIN IMPROVE 2"

    def test_plan_fields_match_engine_explain(self, db):
        from repro.core.plan import PLAN_FIELDS

        result = db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 "
            "COST L1 METHOD rta ADJUST price BETWEEN -100 AND 0"
        )
        assert result.columns == ["rowid"] + list(PLAN_FIELDS)
        assert result.column("solver") == ["rta"]
        assert result.column("evaluator") == ["rta"]
        assert result.column("sense") == ["max"]
        # The index is max-sense, so EXPLAIN shows the internalized
        # (negated) adjustment interval the solver actually receives.
        assert result.column("space") == ["box(lower=[0, 0, 0], upper=[0, 0, 100])"]

    def test_kernel_clause_reported_requested_and_resolved(self, db):
        from repro.native import native_available

        result = db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 "
            "KERNEL native"
        )
        assert result.column("kernel") == ["native"]
        expected = "native" if native_available() else "python"
        assert result.column("kernel_backend") == [expected]

    def test_kernel_override_is_per_statement_not_sticky(self, db, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 "
            "KERNEL python"
        )
        # A following statement without the clause falls back to the
        # session default (auto), not the earlier override.
        result = db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3"
        )
        assert result.column("kernel") == ["auto"]

    def test_unknown_kernel_is_execution_error(self, db):
        with pytest.raises(SQLExecutionError, match="fortran"):
            db.execute(
                "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 "
                "KERNEL fortran"
            )

    def test_kernel_backends_agree_on_answers(self, db):
        python = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 KERNEL python"
        )
        native = db.execute(
            "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3 KERNEL native"
        )
        assert python.rows == native.rows

    def test_explain_does_not_execute(self, db):
        before = db.execute("SELECT * FROM cameras").rows
        db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING idx BUDGET 10"
        )
        assert db.execute("SELECT * FROM cameras").rows == before

    def test_explain_budget_kind(self, db):
        result = db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING idx BUDGET 10"
        )
        assert result.column("kind") == ["max_hit"]
        # A Max-Hit budget keeps its float-ness so it cannot be read as
        # a Min-Cost tau (which *does* render as an int).
        assert result.column("goal") == ["10.0"]

    def test_explain_validates_like_improve(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("EXPLAIN IMPROVE cameras TARGET WHERE rowid = 0 USING nope REACH 2")
        with pytest.raises(SQLExecutionError):
            db.execute("EXPLAIN IMPROVE cameras TARGET WHERE rowid = 99 USING idx REACH 2")

    def test_explain_multi_target_one_joint_plan_per_target(self, db):
        result = db.execute(
            "EXPLAIN IMPROVE cameras TARGET WHERE rowid < 2 USING idx REACH 2"
        )
        assert result.column("rowid") == [0, 1]
        notes = result.column("notes")
        assert all("joint greedy loop" in note for note in notes)

    def test_explain_multi_rejects_non_efficient_method(self, db):
        with pytest.raises(SQLExecutionError, match="METHOD efficient only"):
            db.execute(
                "EXPLAIN IMPROVE cameras TARGET WHERE rowid < 2 USING idx REACH 2"
                " METHOD greedy"
            )


class TestExplainAnalyze:
    def test_columns_extend_plan_fields(self, db):
        from repro.core.plan import ANALYZE_FIELDS, PLAN_FIELDS

        result = db.execute(
            "EXPLAIN ANALYZE IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2"
        )
        assert result.columns == ["rowid"] + list(PLAN_FIELDS) + list(ANALYZE_FIELDS)
        assert result.status == "EXPLAIN ANALYZE IMPROVE 1"

    def test_observations_filled(self, db):
        result = db.execute(
            "EXPLAIN ANALYZE IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 2"
        )
        assert float(result.column("total_seconds")[0]) > 0.0
        assert float(result.column("solve_seconds")[0]) > 0.0
        fingerprint = result.column("fingerprint")[0]
        assert fingerprint.startswith("kind=min_cost|")

    def test_analyze_never_perturbs(self, db):
        improve = "IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3"
        before = db.execute(improve).rows
        db.execute("EXPLAIN ANALYZE " + improve)
        assert db.execute(improve).rows == before
        assert db.execute("SELECT * FROM cameras").rows is not None

    def test_analyze_does_not_apply(self, db):
        before = db.execute("SELECT * FROM cameras").rows
        db.execute(
            "EXPLAIN ANALYZE IMPROVE cameras TARGET WHERE rowid = 0 USING idx REACH 3"
        )
        assert db.execute("SELECT * FROM cameras").rows == before

    def test_multi_target_shares_one_runs_timings(self, db):
        result = db.execute(
            "EXPLAIN ANALYZE IMPROVE cameras TARGET WHERE rowid < 2 USING idx REACH 2"
        )
        assert result.column("rowid") == [0, 1]
        totals = result.column("total_seconds")
        assert totals[0] == totals[1]  # the joint loop is one run
        assert float(totals[0]) > 0.0
