import pytest

from repro.dbms import ast_nodes as ast
from repro.dbms.parser import parse, parse_script
from repro.errors import SQLSyntaxError


class TestDDL:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
        assert stmt == ast.CreateTable("t", [("a", "INT"), ("b", "FLOAT"), ("c", "TEXT")])

    def test_drop_table(self):
        assert parse("DROP TABLE t") == ast.DropTable("t")

    def test_create_requires_type(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE TABLE t (a)")


class TestDML:
    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1, 2.5, 'x'), (3, 4.5, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2
        assert stmt.rows[0][2] == ast.Literal("x")

    def test_insert_negative_number(self):
        stmt = parse("INSERT INTO t VALUES (-5)")
        assert stmt.rows[0][0] == ast.Unary("-", ast.Literal(5))

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = 0 WHERE a > 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.columns is None

    def test_full_clause_stack(self):
        stmt = parse("SELECT a, b FROM t WHERE a >= 2 AND NOT b < 1 ORDER BY a DESC LIMIT 5")
        assert stmt.columns == ["a", "b"]
        assert stmt.order_by == ("a", False)
        assert stmt.limit == 5

    def test_expression_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a + b * 2 = 7")
        where = stmt.where
        assert where.op == "="
        assert where.left.op == "+"
        assert where.left.right.op == "*"

    def test_parentheses(self):
        stmt = parse("SELECT * FROM t WHERE (a + b) * 2 = 7")
        assert stmt.where.left.op == "*"
        assert stmt.where.left.left.op == "+"

    def test_or_and_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"


class TestImprovementExtension:
    def test_create_improvement_index(self):
        stmt = parse(
            "CREATE IMPROVEMENT INDEX idx ON cars (mpg, price) "
            "USING QUERIES prefs (w1, w2, k) SENSE MAX"
        )
        assert stmt == ast.CreateImprovementIndex(
            name="idx",
            object_table="cars",
            attribute_columns=["mpg", "price"],
            query_table="prefs",
            weight_columns=["w1", "w2"],
            k_column="k",
            sense="max",
        )

    def test_weight_arity_checked(self):
        with pytest.raises(SQLSyntaxError):
            parse(
                "CREATE IMPROVEMENT INDEX idx ON cars (mpg, price) "
                "USING QUERIES prefs (w1, k)"
            )

    def test_improve_reach(self):
        stmt = parse(
            "IMPROVE cars TARGET WHERE rowid = 3 USING idx REACH 250 COST L1 "
            "ADJUST mpg BETWEEN -5 AND 5, price FROZEN METHOD greedy APPLY"
        )
        assert stmt.reach == 250 and stmt.budget is None
        assert stmt.cost == "L1" and stmt.method == "greedy" and stmt.apply
        assert stmt.adjust == [
            ast.AdjustClause("mpg", lower=-5.0, upper=5.0),
            ast.AdjustClause("price", frozen=True),
        ]

    def test_improve_budget(self):
        stmt = parse("IMPROVE cars TARGET WHERE price > 100 USING idx BUDGET 50.5")
        assert stmt.budget == 50.5 and stmt.reach is None
        assert stmt.cost == "L2" and not stmt.apply

    def test_improve_kernel_clause(self):
        stmt = parse(
            "IMPROVE cars TARGET WHERE rowid = 0 USING idx REACH 5 KERNEL native"
        )
        assert stmt.kernel == "native"

    def test_kernel_defaults_to_session_resolution(self):
        stmt = parse("IMPROVE cars TARGET WHERE rowid = 0 USING idx REACH 5")
        assert stmt.kernel is None

    def test_reach_and_budget_mutually_exclusive(self):
        with pytest.raises(SQLSyntaxError):
            parse("IMPROVE cars TARGET WHERE rowid = 0 USING idx REACH 5 BUDGET 2")
        with pytest.raises(SQLSyntaxError):
            parse("IMPROVE cars TARGET WHERE rowid = 0 USING idx")

    def test_adjust_requires_shape(self):
        with pytest.raises(SQLSyntaxError):
            parse("IMPROVE cars TARGET WHERE rowid = 0 USING idx REACH 2 ADJUST mpg")


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);")
        assert len(statements) == 2

    def test_parse_rejects_multi(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t; SELECT * FROM t")

    def test_show_and_describe(self):
        assert isinstance(parse("SHOW TABLES"), ast.ShowTables)
        assert parse("DESCRIBE t") == ast.Describe("t")

    def test_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse("FLY ME TO THE MOON")


class TestExplain:
    def test_explain_improve_wraps_statement(self):
        stmt = parse("EXPLAIN IMPROVE cars TARGET WHERE rowid = 0 USING idx REACH 5")
        assert isinstance(stmt, ast.ExplainImprove)
        assert stmt.statement.reach == 5
        assert stmt.analyze is False

    def test_explain_analyze_sets_flag(self):
        stmt = parse(
            "EXPLAIN ANALYZE IMPROVE cars TARGET WHERE rowid = 0 USING idx BUDGET 2"
        )
        assert isinstance(stmt, ast.ExplainImprove)
        assert stmt.analyze is True
        assert stmt.statement.budget == 2

    def test_analyze_requires_improve(self):
        with pytest.raises(SQLSyntaxError):
            parse("EXPLAIN ANALYZE SELECT * FROM cars")

    def test_explain_requires_improve(self):
        with pytest.raises(SQLSyntaxError):
            parse("EXPLAIN SELECT * FROM cars")

    def test_explain_rejects_apply(self):
        with pytest.raises(SQLSyntaxError):
            parse("EXPLAIN IMPROVE cars TARGET WHERE rowid = 0 USING idx REACH 5 APPLY")
