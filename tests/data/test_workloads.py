import numpy as np
import pytest

from repro.data.workloads import (
    clustered_queries,
    generate_queries,
    polynomial_workload,
    uniform_queries,
)
from repro.errors import ValidationError


class TestUniform:
    def test_shape_and_k_range(self):
        qs = uniform_queries(200, 3, seed=1)
        assert qs.m == 200 and qs.dim == 3
        assert qs.ks.min() >= 1 and qs.ks.max() <= 50

    def test_custom_k_range(self):
        qs = uniform_queries(50, 2, seed=2, k_range=(3, 3))
        assert set(qs.ks.tolist()) == {3}

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            uniform_queries(0, 3)
        with pytest.raises(ValidationError):
            uniform_queries(10, 3, k_range=(0, 5))
        with pytest.raises(ValidationError):
            uniform_queries(10, 3, k_range=(5, 2))


class TestClustered:
    def test_weights_cluster(self):
        """CL weights must be much lumpier than UN: compare the average
        distance to the nearest other query."""
        un = uniform_queries(300, 3, seed=3).weights
        cl = clustered_queries(300, 3, seed=3, clusters=4, spread=0.03).weights

        def mean_nn_distance(w):
            dists = np.linalg.norm(w[:, None, :] - w[None, :, :], axis=2)
            np.fill_diagonal(dists, np.inf)
            return float(dists.min(axis=1).mean())

        assert mean_nn_distance(cl) < mean_nn_distance(un)

    def test_range_clipped(self):
        qs = clustered_queries(500, 4, seed=4, spread=0.5)
        assert qs.weights.min() >= 0 and qs.weights.max() <= 1

    def test_invalid_clusters(self):
        with pytest.raises(ValidationError):
            clustered_queries(10, 2, clusters=0)


class TestDispatch:
    def test_kinds(self):
        for kind in ("UN", "CL", "un", "cl"):
            assert generate_queries(kind, 20, 2, seed=0).m == 20

    def test_unknown(self):
        with pytest.raises(ValidationError):
            generate_queries("ZZ", 10, 2)


class TestPolynomialWorkload:
    def test_family_and_queries_align(self):
        family, qs = polynomial_workload("UN", 30, 4, seed=5)
        assert family.num_terms == 4
        assert qs.dim == 4 and qs.m == 30

    def test_degrees_in_range(self):
        family, __ = polynomial_workload("UN", 5, 6, seed=6, degree_range=(2, 3))
        for term in family.terms:
            ((__, power),) = term.exponents
            assert 2 <= power <= 3

    def test_augmented_values_stay_in_unit_box(self, rng):
        family, __ = polynomial_workload("CL", 5, 3, seed=7)
        augmented = family.augment(rng.random((50, 3)))
        assert augmented.min() >= 0 and augmented.max() <= 1

    def test_invalid_degree_range(self):
        with pytest.raises(ValidationError):
            polynomial_workload("UN", 5, 2, degree_range=(0, 2))

    def test_end_to_end_with_engine(self, rng):
        """Polynomial workload drives the full IQ pipeline (Fig. 13 path)."""
        from repro.core.engine import ImprovementQueryEngine
        from repro.core.objects import Dataset

        family, qs = polynomial_workload("UN", 15, 3, seed=8, k_range=(1, 3))
        points = rng.random((12, 3))
        engine = ImprovementQueryEngine(Dataset(family.augment(points)), qs)
        result = engine.min_cost(0, tau=5)
        assert result.hits_after >= 5 or not result.satisfied
