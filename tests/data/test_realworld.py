import numpy as np
import pytest

from repro.data.realworld import (
    HOUSE_ATTRIBUTES,
    VEHICLE_ATTRIBUTES,
    load_csv,
    normalize,
    simulate_house,
    simulate_vehicle,
)
from repro.errors import ValidationError


class TestNormalize:
    def test_unit_range(self, rng):
        data = normalize(rng.normal(size=(100, 3)) * 50 + 7)
        assert data.min() == pytest.approx(0.0)
        assert data.max() == pytest.approx(1.0)

    def test_constant_column_safe(self):
        data = normalize(np.array([[1.0, 5.0], [1.0, 9.0]]))
        assert np.all(np.isfinite(data))

    def test_validation(self):
        with pytest.raises(ValidationError):
            normalize(np.array([[1.0, 2.0]]))


class TestVehicle:
    def test_schema(self):
        data = simulate_vehicle(n=500, seed=1)
        assert data.names == VEHICLE_ATTRIBUTES
        assert data.n == 500 and data.dim == 5
        assert data.points.min() >= 0 and data.points.max() <= 1

    def test_correlation_structure(self):
        data = simulate_vehicle(n=5000, seed=2, normalized=False).points
        weight, horse_power, mpg = data[:, 1], data[:, 2], data[:, 3]
        assert np.corrcoef(weight, horse_power)[0, 1] > 0.5  # heavier => stronger
        assert np.corrcoef(weight, mpg)[0, 1] < -0.5  # heavier => thirstier
        annual_cost = data[:, 4]
        assert np.corrcoef(mpg, annual_cost)[0, 1] < -0.6  # efficient => cheaper

    def test_plausible_raw_ranges(self):
        data = simulate_vehicle(n=2000, seed=3, normalized=False).points
        assert data[:, 0].min() >= 1984 and data[:, 0].max() <= 2016
        assert data[:, 3].min() >= 8 and data[:, 3].max() <= 60  # MPG

    def test_reproducible(self):
        a = simulate_vehicle(n=50, seed=9).points
        b = simulate_vehicle(n=50, seed=9).points
        assert np.array_equal(a, b)


class TestHouse:
    def test_schema(self):
        data = simulate_house(n=500, seed=1)
        assert data.names == HOUSE_ATTRIBUTES
        assert data.n == 500 and data.dim == 4

    def test_value_income_link(self):
        data = simulate_house(n=5000, seed=2, normalized=False).points
        house_value, income = data[:, 0], data[:, 1]
        assert np.corrcoef(np.log(house_value), np.log(income))[0, 1] > 0.5

    def test_mortgage_tracks_value(self):
        data = simulate_house(n=5000, seed=3, normalized=False).points
        assert np.corrcoef(data[:, 0], data[:, 3])[0, 1] > 0.7

    def test_income_right_skewed(self):
        income = simulate_house(n=5000, seed=4, normalized=False).points[:, 1]
        assert float(np.mean(income)) > float(np.median(income))  # log-normal skew


class TestLoadCsv(object):
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cars.csv"
        path.write_text("year,mpg\n2000,30\n2010,35\nbad,row\n2005,28\n")
        data = load_csv(path, normalized=False)
        assert data.n == 3 and data.dim == 2
        assert data.names == ["year", "mpg"]

    def test_column_selection(self, tmp_path):
        path = tmp_path / "cars.csv"
        path.write_text("year,mpg,name\n2000,30,a\n2010,35,b\n")
        data = load_csv(path, columns=["mpg"], normalized=False)
        assert data.dim == 1
        assert data.points[:, 0].tolist() == [30.0, 35.0]

    def test_missing_column(self, tmp_path):
        path = tmp_path / "cars.csv"
        path.write_text("year\n2000\n2010\n")
        with pytest.raises(ValidationError):
            load_csv(path, columns=["mpg"])

    def test_too_few_rows(self, tmp_path):
        path = tmp_path / "cars.csv"
        path.write_text("year\n2000\n")
        with pytest.raises(ValidationError):
            load_csv(path)

    def test_engine_runs_on_simulated_vehicle(self):
        """Figure 6/12 path: simulated real data drives the engine."""
        from repro.core.engine import ImprovementQueryEngine
        from repro.data.workloads import uniform_queries

        data = simulate_vehicle(n=40, seed=5)
        queries = uniform_queries(30, 5, seed=5, k_range=(1, 4))
        engine = ImprovementQueryEngine(data, queries, mode="relevant")
        result = engine.min_cost(0, tau=8)
        assert result.hits_after >= 8 or not result.satisfied
