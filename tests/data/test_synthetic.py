import numpy as np
import pytest

from repro.data.synthetic import anticorrelated, correlated, generate, independent
from repro.errors import ValidationError


def corrcoef_mean(data):
    """Mean pairwise attribute correlation."""
    corr = np.corrcoef(data.T)
    off_diag = corr[~np.eye(corr.shape[0], dtype=bool)]
    return float(off_diag.mean())


class TestIndependent:
    def test_shape_and_range(self):
        data = independent(500, 4, seed=1)
        assert data.shape == (500, 4)
        assert data.min() >= 0 and data.max() <= 1

    def test_near_zero_correlation(self):
        data = independent(4000, 3, seed=2)
        assert abs(corrcoef_mean(data)) < 0.07

    def test_reproducible(self):
        assert np.array_equal(independent(10, 2, seed=5), independent(10, 2, seed=5))

    def test_validation(self):
        with pytest.raises(ValidationError):
            independent(0, 3)
        with pytest.raises(ValidationError):
            independent(5, 0)


class TestCorrelated:
    def test_positive_correlation(self):
        data = correlated(4000, 3, seed=3)
        assert corrcoef_mean(data) > 0.5

    def test_range(self):
        data = correlated(1000, 5, seed=4)
        assert data.min() >= 0 and data.max() <= 1


class TestAnticorrelated:
    def test_negative_correlation(self):
        data = anticorrelated(4000, 2, seed=5)
        assert corrcoef_mean(data) < -0.3

    def test_sums_concentrate(self):
        d = 3
        data = anticorrelated(4000, d, seed=6)
        sums = data.sum(axis=1)
        assert abs(float(sums.mean()) - d / 2) < 0.1
        assert float(sums.std()) < 0.45  # much tighter than uniform's ~0.5

    def test_larger_skyline_than_correlated(self):
        """The defining property: AC data has far more skyline points."""
        from repro.index.skyline import skyline

        ac = anticorrelated(300, 2, seed=7)
        co = correlated(300, 2, seed=7)
        assert len(skyline(ac)) > len(skyline(co))


class TestDispatch:
    def test_generate_kinds(self):
        for kind in ("IN", "CO", "AC", "in", "co", "ac"):
            assert generate(kind, 10, 2, seed=0).shape == (10, 2)

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            generate("XX", 10, 2)
