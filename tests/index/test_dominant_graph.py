import numpy as np
import pytest

from repro.errors import ValidationError
from repro.index.dominant_graph import DominantGraph
from repro.topk.evaluate import top_k


class TestConstruction:
    def test_validate_passes(self, rng):
        dg = DominantGraph(rng.random((60, 3)))
        dg.validate()

    def test_layers_and_edges_exist(self, rng):
        dg = DominantGraph(rng.random((80, 2)))
        assert len(dg.layers) >= 2
        assert dg.edge_count() > 0
        assert dg.memory_estimate() > 0

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            DominantGraph(np.array([1.0, 2.0]))


class TestTopK:
    def test_matches_brute_force_random(self, rng):
        objects = rng.random((70, 3))
        dg = DominantGraph(objects)
        for __ in range(20):
            weights = rng.random(3) + 0.05  # strictly positive
            k = int(rng.integers(1, 10))
            assert dg.top_k(weights, k) == top_k(objects, weights, k)

    def test_k_exceeds_n(self, rng):
        objects = rng.random((5, 2))
        dg = DominantGraph(objects)
        weights = np.array([0.3, 0.7])
        assert dg.top_k(weights, 50) == top_k(objects, weights, 5)

    def test_chain_data(self):
        objects = np.array([[float(i), float(i)] for i in range(6)])
        dg = DominantGraph(objects)
        assert dg.top_k(np.array([1.0, 1.0]), 3) == [0, 1, 2]

    def test_anticorrelated_data(self, rng):
        t = rng.random(40)
        objects = np.column_stack([t, 1 - t])
        dg = DominantGraph(objects)
        for __ in range(10):
            weights = rng.random(2) + 0.05
            assert dg.top_k(weights, 5) == top_k(objects, weights, 5)

    def test_invalid_inputs(self, rng):
        dg = DominantGraph(rng.random((10, 2)))
        with pytest.raises(ValidationError):
            dg.top_k(np.array([0.5]), 3)  # wrong shape
        with pytest.raises(ValidationError):
            dg.top_k(np.array([-0.5, 0.5]), 3)  # negative weight
        with pytest.raises(ValidationError):
            dg.top_k(np.array([0.5, 0.5]), 0)  # bad k

    def test_5d_correctness(self, rng):
        objects = rng.random((50, 5))
        dg = DominantGraph(objects)
        for __ in range(10):
            weights = rng.random(5) + 0.05
            assert dg.top_k(weights, 7) == top_k(objects, weights, 7)
