import numpy as np
import pytest

from repro.errors import ValidationError
from repro.index.rtree import Rect, RTree


class TestRect:
    def test_point_rect(self):
        r = Rect.point([1.0, 2.0])
        assert r.mins == r.maxs == (1.0, 2.0)
        assert r.area() == 0.0

    def test_union_and_area(self):
        a = Rect.from_arrays([0, 0], [1, 1])
        b = Rect.from_arrays([2, 2], [3, 4])
        u = a.union(b)
        assert u.mins == (0.0, 0.0) and u.maxs == (3.0, 4.0)
        assert u.area() == pytest.approx(12.0)

    def test_intersects_and_contains(self):
        a = Rect.from_arrays([0, 0], [2, 2])
        b = Rect.from_arrays([1, 1], [3, 3])
        c = Rect.from_arrays([0.5, 0.5], [1.5, 1.5])
        assert a.intersects(b) and b.intersects(a)
        assert a.contains(c) and not c.contains(a)
        assert not a.intersects(Rect.from_arrays([5, 5], [6, 6]))

    def test_touching_edges_intersect(self):
        a = Rect.from_arrays([0, 0], [1, 1])
        b = Rect.from_arrays([1, 0], [2, 1])
        assert a.intersects(b)

    def test_empty_rect_raises(self):
        with pytest.raises(ValidationError):
            Rect.from_arrays([1.0], [0.0])

    def test_min_dist_sq(self):
        r = Rect.from_arrays([0, 0], [1, 1])
        assert r.min_dist_sq((0.5, 0.5)) == 0.0
        assert r.min_dist_sq((2.0, 0.5)) == pytest.approx(1.0)
        assert r.min_dist_sq((2.0, 3.0)) == pytest.approx(1.0 + 4.0)


class TestInsertSearch:
    def test_insert_and_exact_search(self, rng):
        tree = RTree(dim=2, max_entries=4)
        points = rng.random((200, 2))
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        assert len(tree) == 200
        tree.validate()
        box = Rect.from_arrays([0.2, 0.2], [0.6, 0.7])
        got = sorted(tree.search(box))
        expected = sorted(
            i
            for i, p in enumerate(points)
            if 0.2 <= p[0] <= 0.6 and 0.2 <= p[1] <= 0.7
        )
        assert got == expected

    def test_search_where_predicate(self, rng):
        tree = RTree(dim=2)
        points = rng.random((100, 2))
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        box = Rect.from_arrays([0.0, 0.0], [1.0, 1.0])
        odd = tree.search_where(box, lambda rect, payload: payload % 2 == 1)
        assert sorted(odd) == [i for i in range(100) if i % 2 == 1]

    def test_high_dimensional(self, rng):
        tree = RTree(dim=5, max_entries=6)
        points = rng.random((150, 5))
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        tree.validate()
        box = Rect.from_arrays([0.0] * 5, [0.5] * 5)
        got = sorted(tree.search(box))
        expected = sorted(i for i, p in enumerate(points) if np.all(p <= 0.5))
        assert got == expected

    def test_duplicate_points_allowed(self):
        tree = RTree(dim=2)
        for i in range(10):
            tree.insert_point([0.5, 0.5], i)
        assert sorted(tree.search(Rect.point([0.5, 0.5]))) == list(range(10))

    def test_dim_mismatch_raises(self):
        tree = RTree(dim=2)
        with pytest.raises(ValidationError):
            tree.insert_point([1.0, 2.0, 3.0], 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            RTree(dim=0)
        with pytest.raises(ValidationError):
            RTree(dim=2, max_entries=1)
        with pytest.raises(ValidationError):
            RTree(dim=2, max_entries=4, min_entries=3)


class TestDelete:
    def test_delete_returns_false_for_missing(self):
        tree = RTree(dim=2)
        tree.insert_point([0.1, 0.1], "a")
        assert not tree.delete(Rect.point([0.9, 0.9]), "a")
        assert not tree.delete(Rect.point([0.1, 0.1]), "b")
        assert len(tree) == 1

    def test_delete_then_search(self, rng):
        tree = RTree(dim=3, max_entries=4)
        points = rng.random((120, 3))
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        removed = set()
        for i in range(0, 120, 3):
            assert tree.delete(Rect.point(points[i]), i)
            removed.add(i)
            tree.validate()
        assert len(tree) == 120 - len(removed)
        everything = Rect.from_arrays([0.0] * 3, [1.0] * 3)
        assert sorted(tree.search(everything)) == sorted(set(range(120)) - removed)

    def test_delete_everything(self, rng):
        tree = RTree(dim=2, max_entries=4)
        points = rng.random((50, 2))
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        for i, p in enumerate(points):
            assert tree.delete(Rect.point(p), i)
        assert len(tree) == 0
        tree.validate()
        assert tree.search(Rect.from_arrays([0, 0], [1, 1])) == []
        # The tree remains usable after being emptied.
        tree.insert_point([0.5, 0.5], "again")
        assert tree.search(Rect.point([0.5, 0.5])) == ["again"]


class TestNearest:
    def test_knn_matches_brute_force(self, rng):
        tree = RTree(dim=2, max_entries=5)
        points = rng.random((300, 2))
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        for __ in range(10):
            target = rng.random(2)
            got = tree.nearest(target, k=7)
            dists = np.sum((points - target) ** 2, axis=1)
            expected = set(np.argsort(dists, kind="stable")[:7])
            # Ties in distance allow permutations, so compare distances.
            got_d = sorted(dists[g] for g in got)
            exp_d = sorted(dists[e] for e in expected)
            assert np.allclose(got_d, exp_d)

    def test_knn_k_larger_than_size(self):
        tree = RTree(dim=1)
        tree.insert_point([0.1], "x")
        tree.insert_point([0.9], "y")
        assert set(tree.nearest([0.0], k=10)) == {"x", "y"}

    def test_invalid_k(self):
        tree = RTree(dim=1)
        with pytest.raises(ValidationError):
            tree.nearest([0.0], k=0)


class TestBulkLoad:
    def test_bulk_load_equals_incremental_contents(self, rng):
        points = rng.random((500, 3))
        tree = RTree.bulk_load(3, [(p, i) for i, p in enumerate(points)], max_entries=8)
        assert len(tree) == 500
        tree.validate()
        box = Rect.from_arrays([0.1, 0.1, 0.1], [0.4, 0.9, 0.6])
        expected = sorted(
            i
            for i, p in enumerate(points)
            if np.all(p >= [0.1, 0.1, 0.1]) and np.all(p <= [0.4, 0.9, 0.6])
        )
        assert sorted(tree.search(box)) == expected

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load(2, [])
        assert len(tree) == 0
        assert tree.search(Rect.from_arrays([0, 0], [1, 1])) == []

    def test_bulk_load_is_shallower_than_incremental(self, rng):
        points = rng.random((400, 2))
        inc = RTree(dim=2, max_entries=4)
        for i, p in enumerate(points):
            inc.insert_point(p, i)
        bulk = RTree.bulk_load(2, [(p, i) for i, p in enumerate(points)], max_entries=4)
        assert bulk.height() <= inc.height()


class TestBulkLoadPoints:
    def test_matches_tuple_bulk_load_results(self, rng):
        points = rng.random((500, 3))
        fast = RTree.bulk_load_points(3, points, max_entries=8)
        slow = RTree.bulk_load(3, [(p, i) for i, p in enumerate(points)], max_entries=8)
        assert len(fast) == 500
        fast.validate()
        box = Rect.from_arrays([0.2, 0.0, 0.1], [0.7, 0.5, 0.9])
        assert sorted(fast.search(box)) == sorted(slow.search(box))
        probe = rng.random(3)
        assert fast.nearest(probe, k=5) == slow.nearest(probe, k=5)

    def test_default_payloads_are_row_ids(self, rng):
        points = rng.random((30, 2))
        tree = RTree.bulk_load_points(2, points, max_entries=4)
        everything = Rect.from_arrays([-1, -1], [2, 2])
        assert sorted(tree.search(everything)) == list(range(30))

    def test_custom_payloads(self, rng):
        points = rng.random((10, 2))
        tree = RTree.bulk_load_points(2, points, payloads=[i * 7 for i in range(10)])
        everything = Rect.from_arrays([-1, -1], [2, 2])
        assert sorted(tree.search(everything)) == [i * 7 for i in range(10)]

    def test_empty_and_shape_checks(self, rng):
        tree = RTree.bulk_load_points(2, np.empty((0, 2)))
        assert len(tree) == 0
        with pytest.raises(ValidationError):
            RTree.bulk_load_points(3, rng.random((5, 2)))
        with pytest.raises(ValidationError):
            RTree.bulk_load_points(2, rng.random((5, 2)), payloads=[1, 2])

    def test_large_load_stays_valid_and_shallow(self, rng):
        points = rng.random((2000, 2))
        tree = RTree.bulk_load_points(2, points, max_entries=8)
        tree.validate()
        inc = RTree(dim=2, max_entries=8)
        for i, p in enumerate(points[:400]):
            inc.insert_point(p, i)
        assert tree.height() <= inc.height() + 1


class TestIntrospection:
    def test_height_and_node_count_grow(self, rng):
        tree = RTree(dim=2, max_entries=4)
        assert tree.height() == 1
        for i, p in enumerate(rng.random((100, 2))):
            tree.insert_point(p, i)
        assert tree.height() >= 2
        assert tree.node_count() > 10
        assert tree.memory_estimate() > 0

    def test_items_roundtrip(self, rng):
        tree = RTree(dim=2)
        pts = rng.random((20, 2))
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        items = tree.items()
        assert len(items) == 20
        assert sorted(payload for __, payload in items) == list(range(20))
