import numpy as np
import pytest

from repro.errors import ValidationError
from repro.index.rtree import Rect, RTree
from repro.index.xtree import XTree


def fill(tree, points):
    for i, p in enumerate(points):
        tree.insert_point(p, i)
    return tree


class TestBasicBehaviour:
    def test_search_matches_rtree(self, rng):
        points = rng.random((300, 4))
        xtree = fill(XTree(dim=4, max_entries=6), points)
        rtree = fill(RTree(dim=4, max_entries=6), points)
        xtree.validate()
        box = Rect.from_arrays([0.2] * 4, [0.7] * 4)
        assert sorted(xtree.search(box)) == sorted(rtree.search(box))

    def test_search_matches_brute_force(self, rng):
        points = rng.random((200, 3))
        xtree = fill(XTree(dim=3, max_entries=5), points)
        box = Rect.from_arrays([0.1, 0.3, 0.0], [0.5, 0.9, 0.6])
        expected = sorted(
            i
            for i, p in enumerate(points)
            if np.all(p >= box.mins) and np.all(p <= box.maxs)
        )
        assert sorted(xtree.search(box)) == expected

    def test_knn_matches_brute_force(self, rng):
        points = rng.random((150, 3))
        xtree = fill(XTree(dim=3, max_entries=5), points)
        target = rng.random(3)
        got = xtree.nearest(target, k=6)
        dists = np.sum((points - target) ** 2, axis=1)
        assert sorted(dists[g] for g in got) == pytest.approx(
            sorted(dists.tolist())[:6]
        )

    def test_delete_works(self, rng):
        points = rng.random((80, 2))
        xtree = fill(XTree(dim=2, max_entries=4), points)
        for i in range(0, 80, 2):
            assert xtree.delete(Rect.point(points[i]), i)
        xtree.validate()
        everything = Rect.from_arrays([0, 0], [1, 1])
        assert sorted(xtree.search(everything)) == list(range(1, 80, 2))


class TestSupernodes:
    def test_supernodes_appear_in_high_dimensions(self, rng):
        """Clustered high-dimensional data forces overlapping splits —
        exactly the regime supernodes are for."""
        centers = rng.random((4, 8))
        points = np.vstack(
            [c + rng.normal(0, 0.01, size=(120, 8)) for c in centers]
        ).clip(0, 1)
        xtree = fill(XTree(dim=8, max_entries=4, max_overlap=0.05), points)
        xtree.validate()
        assert xtree.supernode_count() >= 1

    def test_zero_threshold_extends_on_any_overlap(self, rng):
        points = rng.random((200, 5))
        xtree = fill(XTree(dim=5, max_entries=4, max_overlap=0.0), points)
        rtree = fill(RTree(dim=5, max_entries=4), points)
        xtree.validate()
        # With zero tolerance, internal splits are mostly refused, so
        # the directory is flatter than the plain R-tree's.
        assert xtree.height() <= rtree.height()

    def test_threshold_one_behaves_like_rtree(self, rng):
        points = rng.random((150, 3))
        xtree = fill(XTree(dim=3, max_entries=4, max_overlap=1.0), points)
        xtree.validate()
        assert xtree.supernode_count() == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            XTree(dim=2, max_overlap=1.5)


class TestInsideSubdomainIndex:
    def test_xtree_backed_index_gives_same_answers(self, rng):
        """§4.1: 'R-tree or X-tree' — both back the same index results."""
        from repro.core.objects import Dataset
        from repro.core.queries import QuerySet
        from repro.core.subdomain import SubdomainIndex

        dataset = Dataset(rng.random((12, 3)))
        queries = QuerySet(rng.random((25, 3)), ks=2)
        with_rtree = SubdomainIndex(dataset, queries)
        with_xtree = SubdomainIndex(dataset, queries, rtree_cls=XTree)
        with_xtree.validate()
        assert isinstance(with_xtree.rtree, XTree)
        for target in range(12):
            assert with_rtree.hits(target) == with_xtree.hits(target)
