"""The raw mmap persistence layer: manifest-first validation, typed
errors, and read-only zero-copy views (:mod:`repro.index.mmapio`)."""

import json

import numpy as np
import pytest

from repro.errors import IndexCorruptionError, ValidationError
from repro.index.mmapio import (
    MANIFEST_NAME,
    MMAP_SCHEMA,
    directory_schema,
    read_mmap_index,
    write_mmap_index,
)


@pytest.fixture
def saved(tmp_path, rng):
    metadata = {"mode": "exact", "epoch": 3, "dataset_fingerprint": "abc"}
    arrays = {
        "normals": rng.random((6, 3)),
        "ids": np.arange(7, dtype=np.intp),
        "flags": np.array([], dtype=np.int8),
    }
    root = tmp_path / "idx"
    write_mmap_index(root, metadata, arrays)
    return root, metadata, arrays


class TestRoundTrip:
    def test_metadata_and_arrays_survive_byte_exact(self, saved):
        root, metadata, arrays = saved
        got_meta, got_arrays = read_mmap_index(root)
        assert got_meta == metadata
        assert sorted(got_arrays) == sorted(arrays)
        for key, array in arrays.items():
            assert got_arrays[key].dtype == array.dtype
            assert np.array_equal(got_arrays[key], array)

    def test_arrays_come_back_as_readonly_maps(self, saved):
        root, __, __ = saved
        __, got = read_mmap_index(root)
        normals = got["normals"]
        assert isinstance(normals, np.memmap)
        assert not normals.flags.writeable
        with pytest.raises(ValueError):
            normals[0, 0] = 99.0

    def test_directory_schema_identifies_the_layout(self, saved, tmp_path):
        root, __, __ = saved
        assert directory_schema(root) == MMAP_SCHEMA
        # anything without a parseable manifest routes elsewhere
        assert directory_schema(tmp_path / "absent") is None
        garbage = tmp_path / "garbage"
        garbage.mkdir()
        (garbage / MANIFEST_NAME).write_text("not json {")
        assert directory_schema(garbage) is None


class TestTypedErrors:
    def test_missing_manifest_is_corruption(self, tmp_path):
        root = tmp_path / "bare"
        root.mkdir()
        with pytest.raises(IndexCorruptionError, match=MANIFEST_NAME):
            read_mmap_index(root)

    def test_unparseable_manifest_is_corruption(self, saved):
        root, __, __ = saved
        (root / MANIFEST_NAME).write_text("}{ not json")
        with pytest.raises(IndexCorruptionError, match="unreadable"):
            read_mmap_index(root)

    def test_schema_mismatch_is_validation_not_corruption(self, saved):
        root, __, __ = saved
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["schema"] = "repro-subdomain-index-mmap/999"
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="schema"):
            read_mmap_index(root)

    def test_missing_array_file_is_corruption(self, saved):
        root, __, __ = saved
        (root / "normals.npy").unlink()
        with pytest.raises(IndexCorruptionError, match="missing array file"):
            read_mmap_index(root)

    def test_truncated_array_file_is_corruption(self, saved):
        root, __, __ = saved
        path = root / "normals.npy"
        path.write_bytes(path.read_bytes()[:70])
        with pytest.raises(IndexCorruptionError, match="corrupt or truncated"):
            read_mmap_index(root)

    def test_header_manifest_disagreement_is_corruption(self, saved):
        # Validation happens against the catalog *before* any payload
        # page is trusted: a swapped file fails on dtype/shape.
        root, __, __ = saved
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["arrays"]["normals"]["dtype"] = "float32"
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(IndexCorruptionError, match="disagrees"):
            read_mmap_index(root)

    def test_malformed_catalog_entry_is_corruption(self, saved):
        root, __, __ = saved
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["arrays"]["normals"] = "normals.npy"
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(IndexCorruptionError, match="malformed"):
            read_mmap_index(root)
