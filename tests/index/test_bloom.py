import pytest

from repro.errors import ValidationError
from repro.index.bloom import BloomFilter, CountingBloomFilter, optimal_parameters


class TestParameters:
    def test_optimal_parameters_reasonable(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        assert bits > 1000  # ~9.6 bits per item at 1% FPR
        assert 5 <= hashes <= 10

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValidationError):
            optimal_parameters(100, 1.5)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        items = [("subdomain", i, "boundary", i * 7) for i in range(500)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(expected_items=1000, false_positive_rate=0.02)
        for i in range(1000):
            bloom.add(("present", i))
        false_hits = sum(1 for i in range(5000) if ("absent", i) in bloom)
        assert false_hits / 5000 < 0.06  # generous 3x headroom

    def test_len_counts_adds(self):
        bloom = BloomFilter()
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2

    def test_estimated_fpr_increases_with_fill(self):
        bloom = BloomFilter(expected_items=100)
        before = bloom.estimated_false_positive_rate()
        for i in range(100):
            bloom.add(i)
        assert bloom.estimated_false_positive_rate() > before


class TestCountingBloomFilter:
    def test_remove_restores_absence(self):
        bloom = CountingBloomFilter(expected_items=100)
        bloom.add("x")
        assert "x" in bloom
        assert bloom.remove("x")
        assert "x" not in bloom

    def test_remove_absent_returns_false(self):
        bloom = CountingBloomFilter(expected_items=100)
        assert not bloom.remove("never-added")

    def test_duplicate_adds_need_matching_removes(self):
        bloom = CountingBloomFilter(expected_items=100)
        bloom.add("dup")
        bloom.add("dup")
        assert bloom.remove("dup")
        assert "dup" in bloom  # one registration remains
        assert bloom.remove("dup")
        assert "dup" not in bloom

    def test_no_false_negatives_under_churn(self):
        bloom = CountingBloomFilter(expected_items=300)
        for i in range(300):
            bloom.add(("k", i))
        for i in range(0, 300, 2):
            bloom.remove(("k", i))
        for i in range(1, 300, 2):
            assert ("k", i) in bloom
