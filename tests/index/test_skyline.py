import numpy as np
import pytest

from repro.errors import ValidationError
from repro.index.skyline import (
    block_nested_loop_skyline,
    dominates,
    skyline,
    skyline_layers,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_incomparable(self):
        assert not dominates([1.0, 3.0], [3.0, 1.0])
        assert not dominates([3.0, 1.0], [1.0, 3.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            dominates([1.0], [1.0, 2.0])


def brute_force_skyline(objects):
    n = objects.shape[0]
    return sorted(
        i
        for i in range(n)
        if not any(dominates(objects[j], objects[i]) for j in range(n) if j != i)
    )


class TestSkyline:
    def test_known_example(self):
        objects = np.array(
            [
                [1.0, 5.0],
                [2.0, 2.0],
                [5.0, 1.0],
                [3.0, 3.0],  # dominated by (2, 2)
                [2.0, 6.0],  # dominated by (1, 5)
            ]
        )
        assert skyline(objects).tolist() == [0, 1, 2]

    def test_matches_brute_force(self, rng):
        for __ in range(10):
            objects = rng.random((40, 3))
            assert skyline(objects).tolist() == brute_force_skyline(objects)

    def test_bnl_matches_sfs(self, rng):
        for __ in range(10):
            objects = rng.random((40, 4))
            assert skyline(objects).tolist() == block_nested_loop_skyline(objects).tolist()

    def test_empty_input(self):
        assert skyline(np.empty((0, 3))).size == 0

    def test_single_point(self):
        assert skyline(np.array([[1.0, 2.0]])).tolist() == [0]

    def test_anticorrelated_data_has_large_skyline(self, rng):
        t = rng.random(50)
        objects = np.column_stack([t, 1 - t + rng.normal(0, 0.01, 50)])
        assert len(skyline(objects)) > 25


class TestSkylineLayers:
    def test_layers_partition(self, rng):
        objects = rng.random((60, 3))
        layers = skyline_layers(objects)
        combined = np.concatenate(layers)
        assert sorted(combined.tolist()) == list(range(60))

    def test_first_layer_is_skyline(self, rng):
        objects = rng.random((50, 2))
        layers = skyline_layers(objects)
        assert layers[0].tolist() == skyline(objects).tolist()

    def test_each_deeper_object_dominated_by_previous_layer(self, rng):
        objects = rng.random((50, 2))
        layers = skyline_layers(objects)
        for upper, lower in zip(layers, layers[1:]):
            for child in lower:
                assert any(dominates(objects[p], objects[child]) for p in upper)

    def test_chain_produces_singleton_layers(self):
        objects = np.array([[float(i), float(i)] for i in range(5)])
        layers = skyline_layers(objects)
        assert [layer.tolist() for layer in layers] == [[0], [1], [2], [3], [4]]
