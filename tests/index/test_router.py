"""Shard routers: determinism, purity, registry, and policy semantics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.index.router import (
    GridRouter,
    RendezvousRouter,
    ShardRouter,
    get_router,
    register_router,
    registered_routers,
)


def weights(m=40, d=3, seed=5):
    rng = np.random.default_rng(seed)
    w = rng.random((m, d))
    return w / w.sum(axis=1, keepdims=True)


class TestGridRouter:
    def test_bins_cover_the_domain(self):
        router = GridRouter()
        ids = router.assign(weights(), 4)
        assert ids.shape == (40,)
        assert ids.min() >= 0 and ids.max() <= 3

    def test_interior_edge_belongs_to_the_upper_bin(self):
        router = GridRouter()
        w = np.array([[0.25, 0.75], [0.5, 0.5], [0.75, 0.25]])
        assert router.assign(w, 4).tolist() == [1, 2, 3]

    def test_out_of_range_values_clamp_into_end_bins(self):
        router = GridRouter()
        w = np.array([[-0.5, 1.5], [1.5, -0.5]])
        assert router.assign(w, 4).tolist() == [0, 3]

    def test_assign_one_matches_batch_assign(self):
        router = GridRouter(axis=1)
        w = weights()
        batch = router.assign(w, 5)
        for i, row in enumerate(w):
            assert router.assign_one(row, 5) == batch[i]

    def test_pure_per_point(self):
        router = GridRouter()
        w = weights()
        full = router.assign(w, 4)
        shuffled = router.assign(w[::-1], 4)
        assert np.array_equal(full[::-1], shuffled)

    def test_describe_round_trips_through_get_router(self):
        router = GridRouter(axis=2, lo=0.1, hi=0.9)
        clone = get_router(**router.describe())
        assert isinstance(clone, GridRouter)
        assert (clone.axis, clone.lo, clone.hi) == (2, 0.1, 0.9)

    def test_rejects_bad_bounds_axis_and_vectors(self):
        with pytest.raises(ValidationError):
            GridRouter(lo=1.0, hi=0.0)
        with pytest.raises(ValidationError):
            GridRouter(axis=-1)
        with pytest.raises(ValidationError):
            GridRouter(axis=7).assign(weights(d=3), 4)
        with pytest.raises(ValidationError):
            GridRouter().assign(np.array([[np.nan, 0.5]]), 2)
        with pytest.raises(ValidationError):
            GridRouter().assign(weights(), 0)


class TestRendezvousRouter:
    def test_deterministic_across_instances(self):
        w = weights()
        a = RendezvousRouter(seed=3).assign(w, 4)
        b = RendezvousRouter(seed=3).assign(w, 4)
        assert np.array_equal(a, b)

    def test_seed_changes_the_assignment(self):
        w = weights(m=200)
        a = RendezvousRouter(seed=0).assign(w, 4)
        b = RendezvousRouter(seed=1).assign(w, 4)
        assert not np.array_equal(a, b)

    def test_roughly_balanced(self):
        counts = np.bincount(
            RendezvousRouter().assign(weights(m=400), 4), minlength=4
        )
        assert counts.min() > 0
        assert counts.max() < 400  # no shard swallows the workload

    def test_changing_k_moves_only_a_fraction(self):
        w = weights(m=400)
        router = RendezvousRouter()
        at4 = router.assign(w, 4)
        at5 = router.assign(w, 5)
        moved = int(np.count_nonzero(at4 != at5))
        # Rendezvous property: ~1/K of vectors move; allow slack.
        assert moved < 400 // 2

    def test_describe_round_trips(self):
        clone = get_router(**RendezvousRouter(seed=9).describe())
        assert isinstance(clone, RendezvousRouter)
        assert clone.seed == 9


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = registered_routers()
        assert "grid" in names and "rendezvous" in names
        assert names == tuple(sorted(names))

    def test_default_policy_is_grid(self):
        assert isinstance(get_router(), GridRouter)

    def test_instance_passes_through(self):
        router = GridRouter(axis=1)
        assert get_router(router) is router

    def test_instance_with_params_rejected(self):
        with pytest.raises(ValidationError):
            get_router(GridRouter(), axis=1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="unknown router policy"):
            get_router("no-such-policy")

    def test_third_party_registration(self):
        class EverythingToZero(ShardRouter):
            policy = "zero-test"

            def assign(self, w, shards):
                w = self._check(w, shards)
                return np.zeros(w.shape[0], dtype=np.intp)

        register_router("zero-test", EverythingToZero)
        try:
            router = get_router("zero-test")
            assert router.assign_one([0.9, 0.1], 4) == 0
            assert "zero-test" in registered_routers()
        finally:
            from repro.index.router import _ROUTERS

            _ROUTERS.pop("zero-test", None)
