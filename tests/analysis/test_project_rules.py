"""The project-wide concurrency rules (RPR008-011) and the native-backend
rule (RPR013): trigger and noqa fixtures per rule, cross-file
reachability, and the meta-test asserting ``src/repro`` itself carries
zero unsuppressed findings."""

import textwrap
from pathlib import Path

from repro.analysis import LintConfig, lint_file, lint_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_source(tmp_path, source, name="mod.py", **config):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path, LintConfig(**config))


def lint_tree(tmp_path, sources, **config):
    """Write several modules and lint them as one run (shared project)."""
    for name, source in sources.items():
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
    findings, __ = lint_paths([tmp_path], LintConfig(**config))
    return findings


def codes(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# RPR008: fork-shared mutable globals reachable from worker code
# ----------------------------------------------------------------------
class TestForkSafety:
    POOL_WITH_GLOBAL = """\
    from concurrent.futures import ProcessPoolExecutor

    _CACHE = {}

    def _init_worker(token):
        value = _CACHE.get(token)
        return value

    def start():
        return ProcessPoolExecutor(max_workers=2, initializer=_init_worker)
    """

    def test_triggers_on_global_in_initializer(self, tmp_path):
        findings = lint_source(
            tmp_path, self.POOL_WITH_GLOBAL, select=frozenset({"RPR008"})
        )
        assert codes(findings) == ["RPR008"]
        assert "_CACHE" in findings[0].message
        assert "_init_worker" in findings[0].message
        # Flagged at the textually-first reference so one noqa covers it.
        assert findings[0].line == 6

    def test_noqa_on_first_reference_suppresses(self, tmp_path):
        source = self.POOL_WITH_GLOBAL.replace(
            "value = _CACHE.get(token)",
            "value = _CACHE.get(token)  # repro: noqa[RPR008]",
        )
        assert lint_source(tmp_path, source, select=frozenset({"RPR008"})) == []

    def test_triggers_on_submitted_task_function(self, tmp_path):
        source = """\
        _RESULTS = []

        def task(chunk):
            _RESULTS.append(chunk)

        def dispatch(executor, chunks):
            return [executor.submit(task, chunk) for chunk in chunks]
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR008"}))
        assert codes(findings) == ["RPR008"]
        assert "task" in findings[0].message

    def test_triggers_transitively_through_helpers(self, tmp_path):
        source = """\
        from multiprocessing import Process

        _STATE = {}

        def helper():
            return _STATE

        def entry():
            return helper()

        def start():
            return Process(target=entry)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR008"}))
        assert codes(findings) == ["RPR008"]
        assert "helper" in findings[0].message

    def test_lambda_entry_is_flagged(self, tmp_path):
        source = """\
        from concurrent.futures import ProcessPoolExecutor

        def start():
            return ProcessPoolExecutor(initializer=lambda: None)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR008"}))
        assert codes(findings) == ["RPR008"]
        assert "lambda" in findings[0].message

    def test_attach_registry_is_exempt(self, tmp_path):
        source = """\
        from concurrent.futures import ProcessPoolExecutor

        _ARRAYS = {}

        def _init_worker(specs):
            for key, spec in specs.items():
                _ARRAYS[key] = attach_array(spec)

        def start():
            return ProcessPoolExecutor(initializer=_init_worker)
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR008"})) == []

    def test_global_unused_by_workers_passes(self, tmp_path):
        source = """\
        from concurrent.futures import ProcessPoolExecutor

        _PARENT_ONLY = {}

        def _init_worker(token):
            return token

        def start():
            _PARENT_ONLY["x"] = 1
            return ProcessPoolExecutor(initializer=_init_worker)
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR008"})) == []

    def test_cross_file_entry_point_reaches_worker_module(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "worker.py": """\
                _SEEN = []

                def init_worker(token):
                    _SEEN.append(token)
                """,
                "driver.py": """\
                from concurrent.futures import ProcessPoolExecutor

                from worker import init_worker

                def start():
                    return ProcessPoolExecutor(initializer=init_worker)
                """,
            },
            select=frozenset({"RPR008"}),
        )
        assert codes(findings) == ["RPR008"]
        assert findings[0].path.endswith("worker.py")


# ----------------------------------------------------------------------
# RPR009: shared-memory lifecycle on every control-flow path
# ----------------------------------------------------------------------
class TestShmLifecycle:
    def test_triggers_when_exception_edge_skips_close(self, tmp_path):
        source = """\
        from multiprocessing.shared_memory import SharedMemory

        def export(payload):
            segment = SharedMemory(create=True, size=8)
            segment.buf[: len(payload)] = payload
            segment.close()
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR009"}))
        assert codes(findings) == ["RPR009"]
        assert "'segment'" in findings[0].message

    def test_triggers_on_early_return(self, tmp_path):
        source = """\
        def build(flag):
            store = SharedArrayStore()
            if flag:
                return None
            store.close()
            return store
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR009"}))
        assert codes(findings) == ["RPR009"]

    def test_triggers_on_discarded_acquisition(self, tmp_path):
        source = """\
        def touch():
            SharedMemory(create=True, size=8)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR009"}))
        assert codes(findings) == ["RPR009"]
        assert "discarded" in findings[0].message

    def test_try_finally_passes(self, tmp_path):
        source = """\
        def export(payload):
            segment = SharedMemory(create=True, size=8)
            try:
                segment.buf[: len(payload)] = payload
            finally:
                segment.close()
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR009"})) == []

    def test_with_statement_passes(self, tmp_path):
        source = """\
        def export(payload):
            with SharedArrayStore() as store:
                return store.share(payload)
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR009"})) == []

    def test_ownership_transfer_passes(self, tmp_path):
        source = """\
        def adopt(registry):
            segment = SharedMemory(create=True, size=8)
            registry["segment"] = segment
            return registry
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR009"})) == []

    def test_attach_without_create_passes(self, tmp_path):
        source = """\
        def attach(name):
            segment = SharedMemory(name=name)
            return segment
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR009"})) == []

    def test_noqa_suppresses(self, tmp_path):
        source = """\
        def leak_on_purpose():
            store = SharedArrayStore()  # repro: noqa[RPR009]
            return store
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR009"})) == []


# ----------------------------------------------------------------------
# RPR010: epoch discipline for index-owned array writes
# ----------------------------------------------------------------------
class TestEpochDiscipline:
    def test_triggers_on_silent_rebinding(self, tmp_path):
        source = """\
        def clobber(index, fresh):
            index.normals = fresh
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR010"}))
        assert codes(findings) == ["RPR010"]
        assert "notify_mutation" in findings[0].message

    def test_triggers_on_element_store(self, tmp_path):
        source = """\
        def poke(index, row, value):
            index._weights[row] = value
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR010"}))
        assert codes(findings) == ["RPR010"]

    def test_triggers_on_setattr_rebinding(self, tmp_path):
        source = """\
        def swap(owner, name, array):
            setattr(owner, name, array)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR010"}))
        assert codes(findings) == ["RPR010"]

    def test_notify_mutation_in_scope_passes(self, tmp_path):
        source = """\
        def rebuild(index, fresh):
            index.normals = fresh
            notify_mutation(index)
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR010"})) == []

    def test_self_writes_pass(self, tmp_path):
        source = """\
        class Owner:
            def set_normals(self, fresh):
                self.normals = fresh
                self._weights[0] = 1.0
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR010"})) == []

    def test_updates_module_is_exempt(self, tmp_path):
        source = """\
        def apply(index, fresh):
            index.normals = fresh
        """
        findings = lint_source(
            tmp_path, source, name="updates.py", select=frozenset({"RPR010"})
        )
        assert findings == []

    def test_index_defining_module_is_exempt(self, tmp_path):
        source = """\
        class SubdomainIndex:
            pass

        def rebind(index, fresh):
            index.normals = fresh
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR010"})) == []

    def test_noqa_suppresses(self, tmp_path):
        source = """\
        def swap(owner, array):
            setattr(owner, "normals", array)  # repro: noqa[RPR010]
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR010"})) == []


# ----------------------------------------------------------------------
# RPR011: no blocking calls while holding a lock
# ----------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_triggers_on_io_under_lock(self, tmp_path):
        source = """\
        import threading

        _LOCK = threading.Lock()

        def emit(writer, text):
            with _LOCK:
                writer.write(text)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR011"}))
        assert codes(findings) == ["RPR011"]
        assert "write()" in findings[0].message

    def test_triggers_transitively_through_helper(self, tmp_path):
        source = """\
        import threading

        _LOCK = threading.Lock()

        def flush_out(writer):
            writer.flush()

        def emit(writer):
            with _LOCK:
                flush_out(writer)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR011"}))
        assert codes(findings) == ["RPR011"]
        assert "flush_out" in findings[0].message

    def test_condition_wait_is_sanctioned(self, tmp_path):
        source = """\
        def drain(cond, queue):
            with cond:
                while not queue:
                    cond.wait()
                cond.notify_all()
                return queue.popleft()
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR011"})) == []

    def test_compute_under_lock_passes(self, tmp_path):
        source = """\
        import threading

        _LOCK = threading.Lock()

        def admit(queue, item, bound):
            with _LOCK:
                if len(queue) < bound:
                    queue.append(item)
                    return True
            return False
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR011"})) == []

    def test_non_lock_context_managers_pass(self, tmp_path):
        source = """\
        def copy(src, dst):
            with open(src) as handle:
                dst.write(handle.read())
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR011"})) == []

    def test_noqa_suppresses(self, tmp_path):
        source = """\
        import threading

        _LOCK = threading.Lock()

        def emit(writer, text):
            with _LOCK:
                writer.write(text)  # repro: noqa[RPR011]
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR011"})) == []


# ----------------------------------------------------------------------
# RPR013: compiled backends confined to repro/native, with python twins
# ----------------------------------------------------------------------
class TestNativeBackend:
    def test_triggers_on_compiled_import_outside_native(self, tmp_path):
        source = """\
        import numba

        def hot(values):
            return numba.njit(lambda v: v)(values)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR013"}))
        assert codes(findings) == ["RPR013"]
        assert "numba" in findings[0].message
        assert "repro.native.kernel" in findings[0].message

    def test_triggers_on_from_import_of_compiled_root(self, tmp_path):
        source = """\
        from llvmlite import binding
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR013"}))
        assert codes(findings) == ["RPR013"]

    def test_noqa_suppresses_guarded_import(self, tmp_path):
        source = """\
        import numba  # repro: noqa[RPR013]
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR013"})) == []

    def test_compiled_import_allowed_inside_native(self, tmp_path):
        (tmp_path / "native").mkdir()
        source = """\
        from numba import njit
        """
        findings = lint_source(
            tmp_path, source, name="native/jit.py", select=frozenset({"RPR013"})
        )
        assert findings == []

    def test_jitted_def_without_registration_triggers(self, tmp_path):
        (tmp_path / "native").mkdir()
        source = """\
        from numba import njit

        @njit(cache=True)
        def rogue_kernel(values):
            return values
        """
        findings = lint_source(
            tmp_path, source, name="native/jit.py", select=frozenset({"RPR013"})
        )
        assert codes(findings) == ["RPR013"]
        assert "rogue_kernel" in findings[0].message
        assert "register_native" in findings[0].message

    def test_jit_alias_assignment_is_tracked(self, tmp_path):
        (tmp_path / "native").mkdir()
        source = """\
        from numba import njit

        _jit = njit(cache=True, fastmath=False)

        @_jit
        def aliased_kernel(values):
            return values
        """
        findings = lint_source(
            tmp_path, source, name="native/jit.py", select=frozenset({"RPR013"})
        )
        assert codes(findings) == ["RPR013"]
        assert "aliased_kernel" in findings[0].message

    def test_registered_jitted_kernel_is_clean(self, tmp_path):
        (tmp_path / "native").mkdir()
        source = """\
        from numba import njit

        from repro.native.registry import register_native

        @register_native("beats_batch")
        @njit(cache=True)
        def beats_batch_native(scores, theta, target, kth_ids, tie_tol):
            return scores < theta
        """
        findings = lint_source(
            tmp_path, source, name="native/jit.py", select=frozenset({"RPR013"})
        )
        assert findings == []

    def test_register_native_without_python_twin_triggers(self, tmp_path):
        (tmp_path / "native").mkdir()
        source = """\
        from numba import njit

        from repro.native.registry import register_native

        @register_native("made_up_kernel")
        @njit(cache=True)
        def made_up_kernel(values):
            return values
        """
        findings = lint_source(
            tmp_path, source, name="native/jit.py", select=frozenset({"RPR013"})
        )
        assert codes(findings) == ["RPR013"]
        assert "made_up_kernel" in findings[0].message
        assert "pure-python twin" in findings[0].message


# ----------------------------------------------------------------------
# Meta: the library itself holds the concurrency invariants
# ----------------------------------------------------------------------
class TestLibraryIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        findings, checked = lint_paths(
            [REPO_SRC],
            LintConfig(
                select=frozenset(
                    {"RPR008", "RPR009", "RPR010", "RPR011", "RPR013"}
                )
            ),
        )
        assert checked > 50  # the whole library, not a subset
        assert findings == [], "\n".join(f.format_human() for f in findings)
