"""Each RPR rule has a fixture that triggers it and one that suppresses it."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_file


def lint_source(tmp_path, source, name="mod.py", **config):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path, LintConfig(**config))


def codes(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# RPR001: literal tolerances
# ----------------------------------------------------------------------
class TestToleranceLiteral:
    def test_triggers_on_in_band_literal(self, tmp_path):
        findings = lint_source(tmp_path, "TOL = 1e-9\n", select=frozenset({"RPR001"}))
        assert codes(findings) == ["RPR001"]
        assert findings[0].line == 1

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "TOL = 1e-9  # repro: noqa[RPR001]\n",
            select=frozenset({"RPR001"}),
        )
        assert findings == []

    def test_bare_noqa_suppresses_every_rule(self, tmp_path):
        findings = lint_source(tmp_path, "TOL = 1e-9  # repro: noqa\n")
        assert findings == []

    def test_out_of_band_literals_pass(self, tmp_path):
        source = """\
        GUARD = 1e-300
        LIMIT = 1e18
        HALF = 0.5
        COUNT = 7
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR001"})) == []

    def test_constants_module_is_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path, "EPS = 1e-12\n", name="constants.py", select=frozenset({"RPR001"})
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR002: asserts / bare exceptions
# ----------------------------------------------------------------------
class TestRuntimeInvariant:
    def test_triggers_on_assert(self, tmp_path):
        findings = lint_source(
            tmp_path, "assert 1 + 1 == 2\n", select=frozenset({"RPR002"})
        )
        assert codes(findings) == ["RPR002"]

    def test_triggers_on_bare_exception_raise(self, tmp_path):
        source = """\
        def f() -> None:
            raise Exception("boom")
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR002"}))
        assert codes(findings) == ["RPR002"]

    def test_repro_error_raise_passes(self, tmp_path):
        source = """\
        from repro.errors import ValidationError

        def f() -> None:
            raise ValidationError("boom")
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR002"})) == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "assert True  # repro: noqa[RPR002]\n",
            select=frozenset({"RPR002"}),
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR003: unvalidated ndarray parameters
# ----------------------------------------------------------------------
class TestArrayValidation:
    def test_triggers_on_unvalidated_public_function(self, tmp_path):
        source = """\
        import numpy as np

        def total(values: np.ndarray) -> float:
            return float(values.sum())
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR003"}))
        assert codes(findings) == ["RPR003"]
        assert "values" in findings[0].message

    def test_asarray_counts_as_validation(self, tmp_path):
        source = """\
        import numpy as np

        def total(values: np.ndarray) -> float:
            values = np.asarray(values, dtype=float)
            return float(values.sum())
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR003"})) == []

    def test_delegating_to_a_validating_helper_counts(self, tmp_path):
        source = """\
        import numpy as np

        def _coerce(values: object) -> np.ndarray:
            return np.asarray(values, dtype=float)

        def total(values: np.ndarray) -> float:
            return float(_coerce(values).sum())
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR003"})) == []

    def test_private_and_nested_functions_are_exempt(self, tmp_path):
        source = """\
        import numpy as np

        def _helper(values: np.ndarray) -> float:
            return float(values.sum())

        def outer() -> float:
            def inner(values: np.ndarray) -> float:
                return float(values.sum())
            return inner(np.zeros(3))
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR003"}))
        assert [f for f in findings if f.rule == "RPR003"] == []

    def test_noqa_suppresses(self, tmp_path):
        source = """\
        import numpy as np

        def total(values: np.ndarray) -> float:  # repro: noqa[RPR003]
            return float(values.sum())
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR003"})) == []


# ----------------------------------------------------------------------
# RPR004: mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_triggers_on_list_literal_default(self, tmp_path):
        source = """\
        def collect(item: int, into: list = []) -> list:
            into.append(item)
            return into
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR004"}))
        assert codes(findings) == ["RPR004"]

    def test_triggers_on_dict_call_default(self, tmp_path):
        source = """\
        def collect(cache: dict = dict()) -> dict:
            return cache
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR004"}))
        assert codes(findings) == ["RPR004"]

    def test_none_default_passes(self, tmp_path):
        source = """\
        def collect(item: int, into: list | None = None) -> list:
            into = [] if into is None else into
            into.append(item)
            return into
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR004"})) == []

    def test_noqa_suppresses(self, tmp_path):
        source = """\
        def collect(into: list = []) -> list:  # repro: noqa[RPR004]
            return into
        """
        assert lint_source(tmp_path, source, select=frozenset({"RPR004"})) == []


# ----------------------------------------------------------------------
# RPR005: parity coverage for vectorized/literal pairs
# ----------------------------------------------------------------------
PARITY_SOURCE = """\
def find_subdomains(method: str = "vectorized") -> None:
    pass
"""


class TestParityCoverage:
    def write_project(self, tmp_path, test_text):
        src = tmp_path / "proj" / "src"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(PARITY_SOURCE)
        tests = tmp_path / "proj" / "tests"
        tests.mkdir()
        (tests / "test_mod.py").write_text(test_text)
        return src / "mod.py", tests

    def test_triggers_without_two_variant_test(self, tmp_path):
        mod, tests = self.write_project(
            tmp_path, "def test_only_one():\n    find_subdomains('vectorized')\n"
        )
        findings = lint_file(
            mod, LintConfig(select=frozenset({"RPR005"}), tests_root=tests)
        )
        assert codes(findings) == ["RPR005"]

    def test_two_variant_test_satisfies_the_rule(self, tmp_path):
        mod, tests = self.write_project(
            tmp_path,
            "def test_parity():\n"
            "    assert find_subdomains('literal') == find_subdomains('vectorized')\n",
        )
        findings = lint_file(
            mod, LintConfig(select=frozenset({"RPR005"}), tests_root=tests)
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        src = tmp_path / "proj" / "src"
        src.mkdir(parents=True)
        mod = src / "mod.py"
        mod.write_text(
            "def find_subdomains() -> None:  # repro: noqa[RPR005]\n    pass\n"
        )
        tests = tmp_path / "proj" / "tests"
        tests.mkdir()
        findings = lint_file(
            mod, LintConfig(select=frozenset({"RPR005"}), tests_root=tests)
        )
        assert findings == []

    def test_unrelated_symbols_are_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path, "def unrelated() -> None:\n    pass\n", select=frozenset({"RPR005"})
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR006: solver calls must go through the registry
# ----------------------------------------------------------------------
class TestSolverDispatch:
    def test_triggers_on_direct_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "result = min_cost_iq(evaluator, 0, 5, cost)\n",
            select=frozenset({"RPR006"}),
        )
        assert codes(findings) == ["RPR006"]
        assert "get_solver" in findings[0].message

    def test_triggers_on_attribute_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import repro.baselines.greedy as g\n"
            "result = g.greedy_max_hit_iq(evaluator, 0, 1.0, cost)\n",
            select=frozenset({"RPR006"}),
        )
        assert codes(findings) == ["RPR006"]

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "result = min_cost_iq(evaluator, 0, 5, cost)  # repro: noqa[RPR006]\n",
            select=frozenset({"RPR006"}),
        )
        assert findings == []

    def test_solvers_module_is_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "result = min_cost_iq(evaluator, 0, 5, cost)\n",
            name="solvers.py",
            select=frozenset({"RPR006"}),
        )
        assert findings == []

    def test_reference_without_call_is_fine(self, tmp_path):
        # reduction.py passes max_hit_iq as a default oracle argument;
        # only *calls* bypass the registry.
        findings = lint_source(
            tmp_path,
            "def reduce(oracle=max_hit_iq):\n    return oracle\n",
            select=frozenset({"RPR006"}),
        )
        assert findings == []

    def test_registry_dispatch_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "result = get_solver('efficient').min_cost(evaluator, 0, 5, cost)\n",
            select=frozenset({"RPR006"}),
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR007: multiprocessing stays inside repro/parallel/
# ----------------------------------------------------------------------
class TestParallelImport:
    def test_triggers_on_multiprocessing_import(self, tmp_path):
        findings = lint_source(
            tmp_path, "import multiprocessing\n", select=frozenset({"RPR007"})
        )
        assert codes(findings) == ["RPR007"]
        assert "repro.parallel" in findings[0].message

    def test_triggers_on_submodule_and_from_imports(self, tmp_path):
        source = """\
        import concurrent.futures
        from multiprocessing import shared_memory
        from concurrent.futures import ProcessPoolExecutor
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR007"}))
        assert codes(findings) == ["RPR007"]
        assert len(findings) == 3

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import multiprocessing  # repro: noqa[RPR007]\n",
            select=frozenset({"RPR007"}),
        )
        assert findings == []

    def test_parallel_package_is_exempt(self, tmp_path):
        package = tmp_path / "parallel"
        package.mkdir()
        findings = lint_source(
            package,
            "from concurrent.futures import ProcessPoolExecutor\n",
            name="pool.py",
            select=frozenset({"RPR007"}),
        )
        assert findings == []

    def test_importing_the_layer_api_is_fine(self, tmp_path):
        source = """\
        from repro.parallel import run_batch, resolve_workers
        import concurrentmap  # unrelated root sharing a prefix
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR007"}))
        assert findings == []


# ----------------------------------------------------------------------
# Framework behaviour
# ----------------------------------------------------------------------
class TestFramework:
    def test_syntax_error_becomes_rpr000_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert codes(findings) == ["RPR000"]

    def test_multi_code_noqa(self, tmp_path):
        findings = lint_source(
            tmp_path, "assert 1e-9  # repro: noqa[RPR001,RPR002]\n"
        )
        assert findings == []

    def test_noqa_for_another_rule_does_not_suppress(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "TOL = 1e-9  # repro: noqa[RPR002]\n",
            select=frozenset({"RPR001"}),
        )
        assert codes(findings) == ["RPR001"]

    def test_ignore_filter_disables_a_rule(self, tmp_path):
        findings = lint_source(tmp_path, "TOL = 1e-9\n", ignore=frozenset({"RPR001"}))
        assert findings == []

    def test_findings_sort_by_location(self, tmp_path):
        source = """\
        B = 1e-9
        assert True
        """
        findings = lint_source(tmp_path, source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)


# ----------------------------------------------------------------------
# RPR012: direct index construction outside the factory layers
# ----------------------------------------------------------------------
class TestIndexFactory:
    def test_direct_monolithic_construction_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "index = SubdomainIndex(dataset, queries, mode='exact')\n",
            select=frozenset({"RPR012"}),
        )
        assert codes(findings) == ["RPR012"]

    def test_direct_sharded_construction_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "index = ShardedSubdomainIndex(dataset, queries, shards=4)\n",
            select=frozenset({"RPR012"}),
        )
        assert codes(findings) == ["RPR012"]

    def test_factory_call_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "index = build_index(dataset, queries, shards=4)\n",
            select=frozenset({"RPR012"}),
        )
        assert findings == []

    def test_restore_classmethods_pass(self, tmp_path):
        source = """\
        a = SubdomainIndex.load(path, dataset, queries)
        b = ShardedSubdomainIndex.load(root, dataset, queries, lazy=True)
        c = SubdomainIndex.from_partition(dataset, queries, payload)
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR012"}))
        assert findings == []

    def test_class_passed_as_argument_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "result, seconds = time_call(SubdomainIndex, dataset, queries)\n",
            select=frozenset({"RPR012"}),
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "index = SubdomainIndex(d, q)  # repro: noqa[RPR012]\n",
            select=frozenset({"RPR012"}),
        )
        assert findings == []

    def test_test_files_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "index = SubdomainIndex(d, q)\n",
            name="test_fixture.py",
            select=frozenset({"RPR012"}),
        )
        assert findings == []

    def test_core_layer_exempt(self, tmp_path):
        (tmp_path / "core").mkdir()
        path = tmp_path / "core" / "builders.py"
        path.write_text("index = SubdomainIndex(d, q)\n")
        findings = lint_file(path, LintConfig(select=frozenset({"RPR012"})))
        assert findings == []

    def test_check_layer_exempt(self, tmp_path):
        (tmp_path / "check").mkdir()
        path = tmp_path / "check" / "differential.py"
        path.write_text("index = ShardedSubdomainIndex(d, q, shards=2)\n")
        findings = lint_file(path, LintConfig(select=frozenset({"RPR012"})))
        assert findings == []


# ----------------------------------------------------------------------
# RPR014: monotonic-clock reads confined to repro/observe
# ----------------------------------------------------------------------
class TestTimingSource:
    def test_triggers_on_perf_counter_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import time\nstart = time.perf_counter()\n",
            select=frozenset({"RPR014"}),
        )
        assert codes(findings) == ["RPR014"]
        assert findings[0].line == 2

    def test_triggers_on_from_time_import(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from time import perf_counter\n",
            select=frozenset({"RPR014"}),
        )
        assert codes(findings) == ["RPR014"]

    def test_triggers_on_monotonic_and_ns_variants(self, tmp_path):
        source = """\
        import time
        a = time.monotonic()
        b = time.perf_counter_ns()
        c = time.process_time()
        """
        findings = lint_source(tmp_path, source, select=frozenset({"RPR014"}))
        assert len(findings) == 3

    def test_observe_layer_exempt(self, tmp_path):
        (tmp_path / "observe").mkdir()
        path = tmp_path / "observe" / "clock.py"
        path.write_text("from time import perf_counter\nnow = perf_counter\n")
        findings = lint_file(path, LintConfig(select=frozenset({"RPR014"})))
        assert findings == []

    def test_wall_clock_time_time_passes(self, tmp_path):
        # time.time() is a wall clock, not a monotonic measurement seam;
        # RPR014 targets duration measurement only.
        findings = lint_source(
            tmp_path,
            "import time\nstamp = time.time()\n",
            select=frozenset({"RPR014"}),
        )
        assert findings == []

    def test_observe_clock_import_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.observe.clock import Stopwatch, now, time_call\n",
            select=frozenset({"RPR014"}),
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import time\nt = time.perf_counter()  # repro: noqa[RPR014]\n",
            select=frozenset({"RPR014"}),
        )
        assert findings == []


# ----------------------------------------------------------------------
# Self-application: the library obeys its own rules
# ----------------------------------------------------------------------
def test_repro_source_tree_is_lint_clean():
    """`repro lint src/repro` must exit clean on the shipped tree."""
    package_root = Path(__file__).resolve().parents[2] / "src" / "repro"
    if not package_root.is_dir():  # repro installed without sources
        pytest.skip("src/repro not present relative to the test tree")
    from repro.analysis import lint_paths

    findings, checked = lint_paths([package_root])
    assert checked > 0
    assert findings == [], "\n" + "\n".join(f.format_human() for f in findings)
