"""The `repro lint` command line: exit codes, formats, filters."""

import io
import json
import textwrap

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main


def run(argv, runner=lint_main):
    out = io.StringIO()
    code = runner(argv, out=out)
    return code, out.getvalue()


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def test_clean_file_exits_zero(tmp_path):
    path = write(tmp_path, "X = 1\n")
    code, output = run([path])
    assert code == 0
    assert "clean: 1 file checked" in output


def test_findings_exit_one_with_location(tmp_path):
    path = write(tmp_path, "TOL = 1e-9\n")
    code, output = run([path])
    assert code == 1
    assert f"{path}:1:" in output
    assert "RPR001" in output


def test_json_format(tmp_path):
    path = write(tmp_path, "assert True\n")
    code, output = run([path, "--format", "json"])
    assert code == 1
    payload = json.loads(output)
    assert payload["checked_files"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["RPR002"]
    assert {r["code"] for r in payload["rules"]} >= {"RPR001", "RPR005"}


def test_sarif_format(tmp_path):
    path = write(tmp_path, "assert True\n")
    code, output = run([path, "--format", "sarif"])
    assert code == 1
    payload = json.loads(output)
    assert payload["version"] == "2.1.0"
    run_record = payload["runs"][0]
    assert run_record["tool"]["driver"]["name"] == "repro-lint"
    assert run_record["properties"]["checkedFiles"] == 1
    rule_ids = {rule["id"] for rule in run_record["tool"]["driver"]["rules"]}
    assert rule_ids >= {"RPR001", "RPR008", "RPR009", "RPR010", "RPR011"}
    (result,) = run_record["results"]
    assert result["ruleId"] == "RPR002"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == path
    assert location["region"]["startLine"] == 1


def test_sarif_clean_run_exits_zero_with_empty_results(tmp_path):
    path = write(tmp_path, "X = 1\n")
    code, output = run([path, "--format", "sarif"])
    assert code == 0
    payload = json.loads(output)
    assert payload["runs"][0]["results"] == []


def test_sarif_output_is_deterministic(tmp_path):
    path = write(tmp_path, "TOL = 1e-9\nassert True\n")
    first = run([path, "--format", "sarif"])
    second = run([path, "--format", "sarif"])
    assert first == second


def test_human_and_json_formats_unchanged_by_sarif_support(tmp_path):
    path = write(tmp_path, "TOL = 1e-9\n")
    __, human = run([path, "--format", "human"])
    assert f"{path}:1:" in human and "finding(s)" in human
    __, as_json = run([path, "--format", "json"])
    payload = json.loads(as_json)
    assert set(payload) == {"checked_files", "findings", "rules"}
    assert payload["findings"][0]["rule"] == "RPR001"


def test_select_limits_rules(tmp_path):
    path = write(tmp_path, "TOL = 1e-9\nassert True\n")
    code, output = run([path, "--select", "RPR002"])
    assert code == 1
    assert "RPR002" in output and "RPR001" not in output


def test_ignore_skips_rules(tmp_path):
    path = write(tmp_path, "TOL = 1e-9\n")
    code, output = run([path, "--ignore", "RPR001"])
    assert code == 0


def test_unknown_rule_code_is_a_usage_error(tmp_path):
    path = write(tmp_path, "X = 1\n")
    code, __ = run([path, "--select", "RPR999"])
    assert code == 2


def test_missing_target_is_a_usage_error(tmp_path):
    code, __ = run([str(tmp_path / "nope.py")])
    assert code == 2


def test_list_rules():
    code, output = run(["--list-rules"])
    assert code == 0
    for expected in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert expected in output


def test_directory_target_recurses(tmp_path):
    (tmp_path / "pkg").mkdir()
    write(tmp_path, "TOL = 1e-9\n", name="pkg/inner.py")
    code, output = run([str(tmp_path / "pkg")])
    assert code == 1
    assert "RPR001" in output


def test_repro_cli_lint_subcommand(tmp_path):
    path = write(tmp_path, "TOL = 1e-9  # repro: noqa[RPR001]\n")
    code, output = run(["lint", path], runner=repro_main)
    assert code == 0
    assert "clean" in output

    code, output = run(["lint", "--list-rules"], runner=repro_main)
    assert code == 0
    assert "RPR003" in output
