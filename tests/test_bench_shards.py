"""Sharding bench figures and the single-core shard_update floor."""

import pytest

from repro.bench.config import load_config


@pytest.fixture(scope="module")
def config():
    return load_config("tiny")


class TestShardFigures:
    def test_shard_build_checks_parity_and_records_layout(self, config):
        from repro.bench.regression import bench_shard_build

        (record,) = bench_shard_build(config, shards=2)
        assert record.figure == "shard_build"
        assert record.literal_seconds > 0 and record.vectorized_seconds > 0
        assert record.config["shards"] == 2
        assert sum(record.config["shard_sizes"]) == config.num_queries

    def test_shard_update_times_inserts_against_a_rebuild(self, config):
        from repro.bench.regression import bench_shard_update

        (record,) = bench_shard_update(config, shards=2)
        assert record.figure == "shard_update"
        assert record.config["inserts"] == 3
        assert 1 <= record.config["touched_shards"] <= 2

    def test_par_index_includes_a_sharded_case(self, config):
        from repro.bench.regression import bench_par_index

        records = bench_par_index(config, workers=2, shards=2)
        sharded = [r for r in records if r.config.get("routing")]
        assert len(sharded) == 1
        assert sharded[0].case == "shards=2,workers=2"


class TestSingleCoreFloor:
    """shard_update's 1x floor gates any host — the win is work avoidance,
    not parallelism — with only the tiny (smoke) scale exempt."""

    def make_payload(self, median, cpus=1, scale="bench"):
        stats = {"points": 1, "min_speedup": median,
                 "median_speedup": median, "max_speedup": median}
        return {
            "schema": "repro-bench-regression/1",
            "scale": scale,
            "cpus": cpus,
            "summary": {"shard_update": stats},
        }

    def test_floor_enforced_even_on_one_cpu(self):
        from repro.bench.regression import check_regression

        run = self.make_payload(0.8, cpus=1)
        baseline = self.make_payload(0.9, cpus=1)
        problems = check_regression(run, baseline)
        assert len(problems) == 1
        assert "shard_update" in problems[0] and "work avoidance" in problems[0]

    def test_floor_enforced_on_multicore_too(self):
        from repro.bench.regression import check_regression

        problems = check_regression(
            self.make_payload(0.8, cpus=8), self.make_payload(0.9, cpus=8)
        )
        assert len(problems) == 1

    def test_tiny_scale_exempt(self):
        from repro.bench.regression import check_regression

        run = self.make_payload(0.8, scale="tiny")
        baseline = self.make_payload(0.9, scale="tiny")
        assert check_regression(run, baseline) == []

    def test_passing_update_clears_the_floor(self):
        from repro.bench.regression import check_regression

        run = self.make_payload(1.8)
        baseline = self.make_payload(1.9)
        assert check_regression(run, baseline) == []

    def test_relative_floor_still_applies_above_one(self):
        from repro.bench.regression import check_regression

        # 1.1x clears the absolute floor but is < half the 4x baseline.
        problems = check_regression(self.make_payload(1.1), self.make_payload(4.0))
        assert len(problems) == 1
        assert "shard_update" in problems[0]
