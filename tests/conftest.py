"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator; reseeded per test."""
    return np.random.default_rng(20170321)  # EDBT 2017 opening day


@pytest.fixture
def small_market(rng):
    """A small (objects, queries, ks) instance used across core tests."""
    objects = rng.random((30, 3))
    queries = rng.random((40, 3))
    ks = rng.integers(1, 6, size=40)
    return objects, queries, ks
