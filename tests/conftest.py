"""Shared fixtures for the test suite.

Setting ``REPRO_SANITIZE=1`` (the CI sanitizer job does) arms an
autouse fixture that snapshots the host's ``/dev/shm`` segment set
around every test and fails any test that leaves orphaned ``psm_*``
segments behind — the runtime complement to the RPR009 static rule.
"""

import gc
import os

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _shm_leak_guard(request):
    """Fail any test that orphans /dev/shm segments (REPRO_SANITIZE=1).

    Inactive (zero overhead beyond one env lookup) unless opted in, so
    the regular suite is unaffected; under the sanitizer leg every test
    — not just the parallel ones — carries the invariant, because leaks
    travel: an engine fixture leaking a store fails wherever it's used.
    """
    if not os.environ.get("REPRO_SANITIZE"):
        yield
        return
    from repro.check.sanitize import shm_segments

    before = shm_segments()
    yield
    gc.collect()  # settle refcount cleanup before judging
    leaked = shm_segments() - before
    if leaked:
        pytest.fail(
            f"test leaked {len(leaked)} /dev/shm segment(s): {sorted(leaked)}"
        )


@pytest.fixture
def rng():
    """A deterministic random generator; reseeded per test."""
    return np.random.default_rng(20170321)  # EDBT 2017 opening day


@pytest.fixture
def small_market(rng):
    """A small (objects, queries, ks) instance used across core tests."""
    objects = rng.random((30, 3))
    queries = rng.random((40, 3))
    ks = rng.integers(1, 6, size=40)
    return objects, queries, ks
