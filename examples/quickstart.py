"""Quickstart: the paper's Figure 1 camera example.

A camera maker wants its model ``p1`` to win more customers.  Each
customer's preference is a top-1 query over (resolution, storage,
price); an *improvement strategy* adjusts the camera's attributes to
hit more of those queries at minimal cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Dataset, ImprovementQueryEngine, QuerySet

# -- the data of Figure 1 (plus a couple of market competitors) -------
cameras = Dataset(
    np.array(
        [
            [10.0, 2.0, 250.0],  # p1 - our camera (the improvement target)
            [12.0, 4.0, 340.0],  # p2
            [8.0, 8.0, 199.0],
            [14.0, 6.0, 410.0],
            [9.0, 3.0, 150.0],
        ]
    ),
    names=["resolution", "storage", "price"],
    sense="max",  # higher utility wins (the paper's example convention)
)

# Customer preferences: utility = w . attributes, top-1 camera wins.
preferences = QuerySet(
    np.array(
        [
            [5.0, 3.5, -0.05],  # q1 of Figure 1
            [2.5, 7.0, -0.08],  # q2 of Figure 1
            [1.0, 1.0, -0.01],
            [4.0, 1.0, -0.02],
            [0.5, 6.0, -0.04],
        ]
    ),
    ks=1,
    normalized=False,
)

engine = ImprovementQueryEngine(cameras, preferences)
TARGET = 0  # p1

print(f"p1 currently wins {engine.hits(TARGET)} of {len(preferences)} customers")
print(f"  (queries hit: {engine.reverse_top_k(TARGET).tolist()})")

# -- Min-Cost IQ: cheapest way to win at least 3 customers -------------
result = engine.min_cost(TARGET, tau=3)
print("\nMin-Cost IQ (reach 3 customers):")
for name, delta in zip(cameras.names, result.strategy.vector):
    print(f"  adjust {name:<11} by {delta:+8.3f}")
print(f"  total cost {result.total_cost:.3f}  ->  wins {result.hits_after} customers")

# -- Max-Hit IQ: best use of a fixed improvement budget ---------------
result = engine.max_hit(TARGET, budget=5.0)
print("\nMax-Hit IQ (budget 5.0):")
for name, delta in zip(cameras.names, result.strategy.vector):
    print(f"  adjust {name:<11} by {delta:+8.3f}")
print(f"  spent {result.total_cost:.3f}  ->  wins {result.hits_after} customers")

# -- Verify by re-ranking the improved camera ---------------------------
improved = cameras.improved(TARGET, result.strategy.vector)
wins = 0
for j in range(len(preferences)):
    weights, k = preferences.query(j)
    scores = improved.points @ weights
    wins += int(np.argmax(scores) == TARGET)
print(f"\nindependent re-ranking confirms {wins} wins")
assert wins == result.hits_after
