"""Product marketing: improving a laptop against a synthetic market.

The intro scenario of the paper at a realistic scale: a vendor's laptop
competes in a market of 300 models; 500 shoppers each pick their top-3
by a personal linear utility.  The vendor asks:

* Min-Cost IQ — "what is the cheapest redesign that puts us in at least
  60 shoppers' top-3?"  (with engineering limits on each attribute)
* Max-Hit IQ — "what is the best redesign a fixed budget buys?"
* how much better is the paper's searcher than naive baselines?

Run:  python examples/product_marketing.py
"""

import numpy as np

from repro import (
    AsymmetricLinearCost,
    Dataset,
    ImprovementQueryEngine,
    StrategySpace,
)
from repro.data.synthetic import correlated
from repro.data.workloads import clustered_queries

rng = np.random.default_rng(42)

# -- market: 300 laptops over (battery, cpu, ram, screen) — higher is
#    better for shoppers, so sense="max" ------------------------------
ATTRIBUTES = ["battery_hours", "cpu_score", "ram_gb", "screen_nits"]
market = Dataset(correlated(300, 4, seed=42), names=ATTRIBUTES, sense="max")

# -- shoppers: clustered preferences (people share tastes), top-3 ------
shoppers = clustered_queries(500, 4, seed=43, k_range=(3, 3), clusters=6)

engine = ImprovementQueryEngine(market, shoppers, mode="relevant")

# Our laptop: a mid-pack model.
target = int(np.argsort([engine.hits(t) for t in range(60)])[30])
print(f"our laptop (id {target}) is in {engine.hits(target)} of 500 shoppers' top-3")

# -- engineering constraints: each attribute can only move so far, and
#    raising specs costs much more than trimming them ------------------
space = StrategySpace(
    4,
    lower=np.array([-0.05, -0.05, 0.0, -0.05]),  # RAM can't be lowered
    upper=np.array([0.3, 0.25, 0.4, 0.2]),
)
cost = AsymmetricLinearCost(
    4,
    up=[4.0, 6.0, 2.0, 3.0],  # upgrades are expensive (cpu most of all)
    down=[0.5, 0.5, 0.5, 0.5],  # downgrades still cost re-engineering
)

print("\n== Min-Cost IQ: reach 60 shoppers ==")
result = engine.min_cost(target, tau=60, cost=cost, space=space)
for name, delta in zip(ATTRIBUTES, result.strategy.vector):
    if abs(delta) > 1e-9:
        print(f"  {name:<13} {delta:+.4f}")
print(
    f"  cost {result.total_cost:.4f}, reached {result.hits_after} shoppers "
    f"(goal met: {result.satisfied})"
)

print("\n== Max-Hit IQ: spend a budget of 1.5 ==")
result = engine.max_hit(target, budget=1.5, cost=cost, space=space)
print(
    f"  spent {result.total_cost:.4f} -> {result.hits_after} shoppers "
    f"(was {result.hits_before})"
)

print("\n== method comparison (Min-Cost, reach 40, Euclidean cost) ==")
for method in ("efficient", "greedy", "random"):
    outcome = engine.min_cost(target, tau=40, method=method)
    per_hit = outcome.cost_per_hit
    print(
        f"  {method:<10} cost {outcome.total_cost:8.4f}  hits {outcome.hits_after:3d}"
        f"  cost/hit {per_hit:8.5f}"
    )

print("\n== improving a product line (combinatorial, two models) ==")
line = [target, (target + 7) % 300]
multi = engine.min_cost_multi(line, tau=80)
print(f"  targets {line}: joint hits {multi.hits_before} -> {multi.hits_after}")
for t in line:
    print(f"  model {t}: spent {multi.strategies[t].cost:.4f}")
print(f"  total cost {multi.total_cost:.4f} (goal met: {multi.satisfied})")
