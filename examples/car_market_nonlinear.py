"""Non-linear and heterogeneous utilities: the paper's car example.

Section 5.2-5.3 of the paper: buyers score cars with *non-linear*
utilities like

    u(c) = sqrt(w1 * price) + w2 * capacity / mpg          (Eq. 19)
    v(c) = mpg / (w1 * price) + w2 * capacity^2            (Eq. 26)

Variable substitution turns each into a linear function over augmented
attributes, and the *generic function* trick unifies both shapes into
one function space so a single index serves the heterogeneous workload.
(Here lower utility is better — both formulas grow with price for
u-buyers / shrink with mpg for v-buyers' denominators, i.e. they score
"cost-like" quantities.)

Run:  python examples/car_market_nonlinear.py
"""

import numpy as np

from repro import Dataset, GenericSpace, ImprovementQueryEngine, UtilityFamily
from repro.core.linearize import function_term, monomial
from repro.core.queries import QuerySet

rng = np.random.default_rng(7)

# -- the car dataset of Table 1, extended to a small market ------------
#    attributes: price ($), mpg, capacity (seats)
cars = np.array(
    [
        [15000.0, 30.0, 4.0],
        [20000.0, 28.0, 6.0],
        [8000.0, 35.0, 2.0],
        [12500.0, 33.0, 4.0],
        [28000.0, 22.0, 7.0],
        [17500.0, 26.0, 5.0],
        [9900.0, 38.0, 4.0],
        [23000.0, 25.0, 6.0],
    ]
)
CAR_NAMES = ["price", "mpg", "capacity"]

# -- family u (Eq. 19): sqrt(w1*price) + w2*capacity/mpg ----------------
#    sqrt(w1*price) = sqrt(w1)*sqrt(price): weight_map absorbs the sqrt.
family_u = UtilityFamily(
    [
        function_term("sqrt(price)", lambda p: np.sqrt(p[:, 0]), weight_map=np.sqrt),
        monomial({2: 1.0, 1: -1.0}, name="capacity/mpg"),
    ],
    name="u",
)

# -- family v (Eq. 26): mpg/(w1*price) + w2*capacity^2 ------------------
#    mpg/(w1*price) = (1/w1) * (mpg/price): weight_map is 1/w.
family_v = UtilityFamily(
    [
        monomial({1: 1.0, 0: -1.0}, name="mpg/price", weight_map=lambda w: 1.0 / w),
        monomial({2: 2.0}, name="capacity^2"),
    ],
    name="v",
)

# -- sanity: the linearized families reproduce the formulas -------------
w1, w2 = 0.3, 0.7
direct_u = np.sqrt(w1 * cars[:, 0]) + w2 * cars[:, 2] / cars[:, 1]
assert np.allclose(family_u.score(cars, [w1, w2]), direct_u)
direct_v = cars[:, 1] / (w1 * cars[:, 0]) + w2 * cars[:, 2] ** 2
assert np.allclose(family_v.score(cars, [w1, w2]), direct_v)
print("linearization check passed: u and v reproduced exactly")

# -- unify both shapes into one generic function space (§5.3) -----------
generic = GenericSpace([family_u, family_v])
print(f"generic function space has {generic.total_terms} terms "
      f"({family_u.num_terms} from u, {family_v.num_terms} from v)")

# -- a heterogeneous workload: 20 u-buyers, 15 v-buyers, top-2 ----------
workload = []
for __ in range(20):
    workload.append((0, rng.uniform(0.05, 1.0, size=2), 2))
for __ in range(15):
    workload.append((1, rng.uniform(0.05, 1.0, size=2), 2))
queries: QuerySet = generic.query_set(workload)

dataset = generic.augmented_dataset(cars)  # lower score is better here
engine = ImprovementQueryEngine(dataset, queries)

print("\ncurrent buyer coverage per car:")
for c in range(len(cars)):
    print(f"  car {c} (price={cars[c, 0]:>7.0f}, mpg={cars[c, 1]:>2.0f}, "
          f"seats={cars[c, 2]:.0f}): {engine.hits(c):2d} of 35 buyers")

TARGET = 4  # the expensive 7-seater
result = engine.min_cost(TARGET, tau=10)
print(f"\nMin-Cost IQ on car {TARGET} (reach 10 buyers):")
print(f"  augmented-space strategy: {np.round(result.strategy.vector, 4)}")
print(f"  cost {result.total_cost:.4f} -> {result.hits_after} buyers "
      f"(goal met: {result.satisfied})")

# The augmented coordinates are derived quantities; the first family's
# terms are not jointly invertible (sqrt(price) and capacity/mpg share
# attributes with v's terms), so the tool reports the augmented-space
# move — exactly the representation the paper's §5.2 stores and
# evaluates on the fly.
labels = [t.name for f in generic.families for t in f.terms]
print("  moves by augmented term:")
for label, delta in zip(labels, result.strategy.vector):
    if abs(delta) > 1e-6:
        print(f"    {label:<14} {delta:+.4f}")
