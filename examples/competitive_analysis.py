"""Competitive analysis: the full rank-aware question family.

The paper (§2) positions Improvement Queries against the existing
rank-aware queries: reverse top-k tells you *who* prefers your product
today, reverse k-ranks finds your most promising users when you hit
nobody's top-k, and the maximum rank query asks how well you could ever
do for *some* user without changing the product.  The IQ then answers
the question none of them can: what to *change*.  This example runs the
whole family over one market.

Run:  python examples/competitive_analysis.py
"""

import numpy as np

from repro import Dataset, ImprovementQueryEngine, QuerySet, euclidean_cost
from repro.core.reduction import min_cost_via_max_hit
from repro.rankaware import max_rank, reverse_k_ranks

rng = np.random.default_rng(2017)

# A market of 40 products over (price, delivery_days, defect_rate):
# lower is better on every axis, so the min-convention applies directly.
ATTRIBUTES = ["price", "delivery_days", "defect_rate"]
market = Dataset(rng.random((40, 3)), names=ATTRIBUTES)
# 60 buyers, each weighting the three pain points differently, top-3.
buyers = QuerySet(rng.random((60, 3)), ks=3)

engine = ImprovementQueryEngine(market, buyers, mode="relevant")
OURS = 17  # the product under analysis

print(f"== analysing product {OURS} against 39 competitors, 60 buyers ==\n")

# 1. Reverse top-k: who shortlists us today?
fans = engine.reverse_top_k(OURS)
print(f"reverse top-k: {len(fans)} buyers shortlist us today "
      f"({fans.tolist()[:8]}{'...' if len(fans) > 8 else ''})")

# 2. Reverse k-ranks: our most promising buyers, even if we hit nobody.
promising = reverse_k_ranks(market, buyers, OURS, k=5)
print(f"reverse 5-ranks: buyers {promising} rank us best — the first to court")

# 3. Maximum rank: our ceiling without changing the product at all.
ceiling = max_rank(market, OURS, samples=128)
print(f"maximum rank: position {ceiling.rank} is the best any buyer profile "
      f"could ever rank us (witness weights {np.round(ceiling.witness, 3)}; "
      f"exact={ceiling.exact})")

# 4. The improvement query: what should we actually change?
print("\n== improvement strategies ==")
result = engine.min_cost(OURS, tau=20)
print(f"to be shortlisted by 20 buyers (Min-Cost IQ):")
for name, delta in zip(ATTRIBUTES, result.strategy.vector):
    if abs(delta) > 1e-9:
        print(f"  change {name:<14} by {delta:+.4f}")
print(f"  cost {result.total_cost:.4f} -> {result.hits_after} buyers")

# 5. Cross-check via the paper's §4.2.2 reduction: binary-searching the
#    Max-Hit budget brackets the same answer.
reduced = min_cost_via_max_hit(engine.evaluator, OURS, 20, euclidean_cost(market.dim))
print(f"\nreduction cross-check (binary search over Max-Hit budgets): "
      f"cost {reduced.total_cost:.4f}, {reduced.hits_after} buyers")
