"""The analytic tool as a DBMS extension (paper §6.1).

The paper integrates improvement queries with a DBMS: "users can select
target objects manually from the object dataset or via an SQL select
statement" and specify adjustable attributes, ranges, and cost
functions.  This example drives the bundled mini DBMS end to end with
plain SQL plus the IMPROVE extension.

Run:  python examples/dbms_tool.py
"""

from repro.dbms import Database

db = Database()

print("-- loading the camera catalog and customer preferences --")
db.run_script(
    """
    CREATE TABLE cameras (model TEXT, resolution FLOAT, storage FLOAT, price FLOAT);
    INSERT INTO cameras VALUES
        ('A100', 10, 2, 250),
        ('B200', 12, 4, 340),
        ('C300',  8, 8, 199),
        ('D400', 14, 6, 410),
        ('E500',  9, 3, 150),
        ('F600', 11, 5, 289);

    CREATE TABLE prefs (w_res FLOAT, w_sto FLOAT, w_pri FLOAT, k INT);
    INSERT INTO prefs VALUES
        (5.0, 3.5, -0.05, 1),
        (2.5, 7.0, -0.08, 1),
        (1.0, 1.0, -0.01, 2),
        (4.0, 1.0, -0.02, 2),
        (0.5, 6.0, -0.04, 1),
        (3.0, 3.0, -0.03, 2);
    """
)

print(db.execute("SELECT rowid, model, resolution, storage, price FROM cameras").pretty())

print("\n-- building the improvement index (higher utility wins) --")
db.execute(
    "CREATE IMPROVEMENT INDEX camera_idx ON cameras (resolution, storage, price) "
    "USING QUERIES prefs (w_res, w_sto, w_pri, k) SENSE MAX"
)

print("\n-- Min-Cost IQ: cheapest redesign of A100 reaching 3 customers,")
print("--   resolution may move at most +/-6, price at most -80, storage frozen --")
result = db.execute(
    "IMPROVE cameras TARGET WHERE model = 'A100' USING camera_idx REACH 3 COST L2 "
    "ADJUST resolution BETWEEN -6 AND 6, price BETWEEN -80 AND 0"
)
print(result.pretty())

print("\n-- Max-Hit IQ with an L1 budget, applied back to the catalog --")
result = db.execute(
    "IMPROVE cameras TARGET WHERE model = 'A100' USING camera_idx BUDGET 8 COST L1 APPLY"
)
print(result.pretty())

print("\n-- the catalog after APPLY --")
print(db.execute("SELECT model, resolution, storage, price FROM cameras").pretty())

print("\n-- improving a whole product segment (every camera under $300) --")
result = db.execute(
    "IMPROVE cameras TARGET WHERE price < 300 USING camera_idx REACH 5"
)
print(result.pretty())

print("\n-- ordinary SQL keeps working alongside --")
print(
    db.execute(
        "SELECT model, price FROM cameras WHERE resolution >= 10 ORDER BY price LIMIT 3"
    ).pretty()
)
