"""Election campaign: positioning candidates to win more voters.

The paper's second motivating scenario: candidates are points in a
policy space; each voter ranks candidates by a personal weighting of
the issues and "votes" for their top choice.  A campaign has a limited
budget of credible position changes and wants to maximize appeal
(Max-Hit IQ); a party running two candidates coordinates both
(combinatorial Max-Hit).

Run:  python examples/election_campaign.py
"""

import numpy as np

from repro import Dataset, ImprovementQueryEngine, L1Cost, QuerySet, StrategySpace

rng = np.random.default_rng(1789)

ISSUES = ["economy", "healthcare", "environment", "security"]

# -- 12 candidates, positions scored 0..1 per issue (higher = stronger
#    platform on that issue, so sense="max") ---------------------------
candidates = Dataset(rng.random((12, 4)), names=ISSUES, sense="max")

# -- 600 voters; each weighs the issues differently and votes top-1.
#    Two ideological blocs plus a uniform middle. -----------------------
bloc_a = rng.normal([0.8, 0.6, 0.2, 0.4], 0.08, size=(250, 4))
bloc_b = rng.normal([0.3, 0.5, 0.9, 0.2], 0.08, size=(250, 4))
middle = rng.random((100, 4))
voters = QuerySet(np.clip(np.vstack([bloc_a, bloc_b, middle]), 0, 1), ks=1)

engine = ImprovementQueryEngine(candidates, voters, mode="relevant")

print("current support:")
for c in range(12):
    print(f"  candidate {c:2d}: {engine.hits(c):3d} voters")

underdog = min(range(12), key=engine.hits)
print(f"\nthe underdog is candidate {underdog} ({engine.hits(underdog)} voters)")

# -- position changes are costly per unit of platform shift, and no
#    issue position can move more than 0.25 in one campaign -------------
credibility = StrategySpace(4, lower=np.full(4, -0.25), upper=np.full(4, 0.25))
effort = L1Cost(4, weights=[2.0, 3.0, 1.5, 2.5])  # healthcare pivots cost most

print("\n== Max-Hit IQ: what does a campaign budget of 1.0 buy? ==")
result = engine.max_hit(underdog, budget=1.0, cost=effort, space=credibility)
for issue, delta in zip(ISSUES, result.strategy.vector):
    if abs(delta) > 1e-6:
        direction = "strengthen" if delta > 0 else "soften"
        print(f"  {direction} {issue:<12} by {abs(delta):.3f}")
print(f"  spent {result.total_cost:.3f} -> {result.hits_after} voters")

print("\n== Min-Cost IQ: cheapest way to 80 voters ==")
result = engine.min_cost(underdog, tau=80, cost=effort, space=credibility)
print(
    f"  cost {result.total_cost:.3f}, support {result.hits_before} -> "
    f"{result.hits_after} (goal met: {result.satisfied})"
)

print("\n== party strategy: two candidates, shared budget of 1.5 ==")
running_mates = [underdog, max(range(12), key=engine.hits)]
multi = engine.max_hit_multi(
    running_mates, budget=1.5, costs=effort, spaces=credibility
)
print(f"  candidates {running_mates}: joint support {multi.hits_before} -> {multi.hits_after}")
for c in running_mates:
    moved = multi.strategies[c].vector
    print(f"  candidate {c}: spent {multi.strategies[c].cost:.3f} on shifts {np.round(moved, 3)}")
