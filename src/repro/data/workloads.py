"""Top-k query workloads: UN / CL (paper §6.2).

Following Vlachou et al.'s reverse top-k methodology (the paper's
reference for query generation):

* **UN** — weight vectors uniform and independent on [0, 1]^d.
* **CL** — weights clustered: a few Gaussian preference clusters, each
  query drawn around a random cluster centroid (users share tastes).

Each query's ``k`` is drawn uniformly from [1, 50] (paper default); the
polynomial-utility experiments additionally draw a degree in [1, 5] per
term (§6.2), which :func:`polynomial_workload` provides via the
linearization machinery of §5.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.linearize import UtilityFamily, monomial
from repro.core.queries import QuerySet
from repro.errors import ValidationError

__all__ = [
    "uniform_queries",
    "clustered_queries",
    "generate_queries",
    "polynomial_workload",
    "WORKLOAD_KINDS",
    "DEFAULT_K_RANGE",
]

WORKLOAD_KINDS = ("UN", "CL")
DEFAULT_K_RANGE = (1, 50)  #: paper §6.2: k uniform in [1, 50]


def _draw_ks(rng, m: int, k_range) -> np.ndarray:
    lo, hi = k_range
    if not 1 <= lo <= hi:
        raise ValidationError(f"invalid k range {k_range}")
    return rng.integers(lo, hi + 1, size=m)


def uniform_queries(m: int, d: int, seed=None, k_range=DEFAULT_K_RANGE) -> QuerySet:
    """UN: weights i.i.d. uniform on [0, 1]."""
    if m <= 0 or d <= 0:
        raise ValidationError(f"m and d must be positive, got m={m}, d={d}")
    rng = np.random.default_rng(seed)
    return QuerySet(rng.random((m, d)), _draw_ks(rng, m, k_range))


def clustered_queries(
    m: int,
    d: int,
    seed=None,
    k_range=DEFAULT_K_RANGE,
    clusters: int = 5,
    spread: float = 0.08,
) -> QuerySet:
    """CL: weights drawn around ``clusters`` random preference centroids."""
    if m <= 0 or d <= 0:
        raise ValidationError(f"m and d must be positive, got m={m}, d={d}")
    if clusters <= 0:
        raise ValidationError(f"clusters must be positive, got {clusters}")
    rng = np.random.default_rng(seed)
    centroids = rng.random((clusters, d))
    assignment = rng.integers(0, clusters, size=m)
    weights = centroids[assignment] + rng.normal(0.0, spread, size=(m, d))
    return QuerySet(np.clip(weights, 0.0, 1.0), _draw_ks(rng, m, k_range))


def generate_queries(kind: str, m: int, d: int, seed=None, k_range=DEFAULT_K_RANGE) -> QuerySet:
    """Dispatch by the paper's workload code (``"UN"``/``"CL"``)."""
    kind = kind.upper()
    if kind == "UN":
        return uniform_queries(m, d, seed, k_range)
    if kind == "CL":
        return clustered_queries(m, d, seed, k_range)
    raise ValidationError(f"kind must be one of {WORKLOAD_KINDS}, got {kind!r}")


def polynomial_workload(
    kind: str,
    m: int,
    d: int,
    seed=None,
    k_range=DEFAULT_K_RANGE,
    degree_range=(1, 5),
):
    """A §6.2-style polynomial workload plus its linearizing family.

    One monomial term per original attribute, each with a random degree
    in ``degree_range`` (paper: [1, 5]).  Returns ``(family, queries)``
    where ``queries`` is a :class:`QuerySet` over the augmented term
    space — feed ``family.augment(points)`` to the same engine.
    """
    lo, hi = degree_range
    if not 1 <= lo <= hi:
        raise ValidationError(f"invalid degree range {degree_range}")
    rng = np.random.default_rng(seed)
    degrees = rng.integers(lo, hi + 1, size=d)
    family = UtilityFamily(
        [monomial({j: float(degrees[j])}) for j in range(d)],
        name=f"poly-deg{lo}-{hi}",
    )
    base = generate_queries(kind, m, d, seed=rng.integers(0, 2**31), k_range=k_range)
    # Weights stay in [0, 1]; the augmented attributes (powers of values
    # in [0, 1]) stay in [0, 1] as well, so the domain box is unchanged.
    return family, QuerySet(base.weights.copy(), base.ks.copy())
