"""Data generators: synthetic objects, query workloads, real-data substitutes."""

from repro.data.realworld import (
    HOUSE_ATTRIBUTES,
    VEHICLE_ATTRIBUTES,
    load_csv,
    normalize,
    simulate_house,
    simulate_vehicle,
)
from repro.data.synthetic import anticorrelated, correlated, generate, independent
from repro.data.workloads import (
    clustered_queries,
    generate_queries,
    polynomial_workload,
    uniform_queries,
)

__all__ = [
    "independent",
    "correlated",
    "anticorrelated",
    "generate",
    "uniform_queries",
    "clustered_queries",
    "generate_queries",
    "polynomial_workload",
    "simulate_vehicle",
    "simulate_house",
    "load_csv",
    "normalize",
    "VEHICLE_ATTRIBUTES",
    "HOUSE_ATTRIBUTES",
]
