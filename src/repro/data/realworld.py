"""Distribution-matched substitutes for the paper's real datasets.

The paper evaluates on two real-world datasets we cannot download in an
offline environment:

* **VEHICLE** — 37,051 vehicle models from fueleconomy.gov with year,
  weight, horse power, MPG, and annual (fuel) cost.
* **HOUSE** — 100,000 IPUMS household records with house value,
  household income, number of persons, and monthly mortgage payment.

``simulate_vehicle`` and ``simulate_house`` generate synthetic tables
with the same schemas and the cross-correlations that drive the
experiments' behaviour (heavier vehicles burn more fuel, horsepower
correlates with weight and against MPG; incomes and house values are
log-normal and mortgage tracks value).  The experiments only exercise
attribute-value *distributions* — subdomain counts and hit geometry —
so a distribution-matched generator preserves the relevant behaviour
(see DESIGN.md §5 for the substitution record).  Attributes are
normalized to [0, 1] exactly as the paper does.

``load_csv`` lets a user with the genuine files run the same pipeline.
"""

from __future__ import annotations

import csv

import numpy as np

from repro.core.objects import Dataset
from repro.errors import ValidationError

__all__ = [
    "simulate_vehicle",
    "simulate_house",
    "load_csv",
    "normalize",
    "VEHICLE_ATTRIBUTES",
    "HOUSE_ATTRIBUTES",
    "VEHICLE_SIZE",
    "HOUSE_SIZE",
]

VEHICLE_ATTRIBUTES = ["year", "weight", "horse_power", "mpg", "annual_cost"]
HOUSE_ATTRIBUTES = ["house_value", "household_income", "num_persons", "mortgage_payment"]
VEHICLE_SIZE = 37_051  #: rows in the paper's VEHICLE dataset
HOUSE_SIZE = 100_000  #: rows in the paper's HOUSE dataset


def normalize(raw: np.ndarray) -> np.ndarray:
    """Min-max normalize every column to [0, 1] (paper §6.2)."""
    raw = np.asarray(raw, dtype=float)
    if raw.ndim != 2 or raw.shape[0] < 2:
        raise ValidationError("need a 2-D array with at least two rows to normalize")
    lo = raw.min(axis=0)
    hi = raw.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (raw - lo) / span


def simulate_vehicle(n: int = VEHICLE_SIZE, seed=None, normalized: bool = True) -> Dataset:
    """Synthetic VEHICLE: correlated vehicle-model attributes.

    Correlation structure: weight up => horsepower up, MPG down, annual
    fuel cost up; year up => MPG modestly up (efficiency progress).
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    rng = np.random.default_rng(seed)
    year = rng.integers(1984, 2017, size=n).astype(float)
    # Weight in pounds: mixture of car/SUV/truck classes.
    klass = rng.choice([0, 1, 2], size=n, p=[0.6, 0.25, 0.15])
    weight = (
        np.where(klass == 0, rng.normal(3100, 380, n), 0)
        + np.where(klass == 1, rng.normal(4300, 450, n), 0)
        + np.where(klass == 2, rng.normal(5400, 600, n), 0)
    )
    weight = np.clip(weight, 1600, 9000)
    horse_power = np.clip(
        0.055 * weight + rng.normal(0, 45, n) + (year - 1984) * 2.2, 55, 900
    )
    mpg = np.clip(
        62.0 - 0.0075 * weight + 0.28 * (year - 1984) + rng.normal(0, 3.0, n), 8, 60
    )
    annual_cost = np.clip(
        (15000.0 / mpg) * rng.normal(2.6, 0.25, n).clip(1.8, 3.4) + rng.normal(0, 60, n),
        350,
        6500,
    )
    raw = np.column_stack([year, weight, horse_power, mpg, annual_cost])
    values = normalize(raw) if normalized else raw
    return Dataset(values, names=VEHICLE_ATTRIBUTES)


def simulate_house(n: int = HOUSE_SIZE, seed=None, normalized: bool = True) -> Dataset:
    """Synthetic HOUSE: log-normal values/incomes, mortgage tracks value."""
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    rng = np.random.default_rng(seed)
    income = np.clip(rng.lognormal(mean=10.9, sigma=0.65, size=n), 8_000, 1_200_000)
    house_value = np.clip(
        income * rng.normal(3.2, 0.9, n).clip(1.2, 6.5) * rng.lognormal(0, 0.25, n),
        25_000,
        4_000_000,
    )
    num_persons = np.clip(rng.poisson(1.6, size=n) + 1, 1, 12).astype(float)
    # 30-year mortgage at ~4-7%: payment approximately proportional to value.
    rate_factor = rng.uniform(0.004, 0.0065, size=n)
    mortgage = np.clip(house_value * rate_factor * rng.uniform(0.6, 1.0, n), 0, 25_000)
    raw = np.column_stack([house_value, income, num_persons, mortgage])
    values = normalize(raw) if normalized else raw
    return Dataset(values, names=HOUSE_ATTRIBUTES)


def load_csv(path, columns=None, normalized: bool = True, sense: str = "min") -> Dataset:
    """Load a real CSV (e.g. the genuine VEHICLE extract) as a Dataset.

    ``columns`` selects and orders numeric columns by header name;
    non-numeric cells make the row be skipped.
    """
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None:
            raise ValidationError(f"{path}: empty CSV")
        names = columns if columns is not None else list(reader.fieldnames)
        missing = [c for c in names if c not in reader.fieldnames]
        if missing:
            raise ValidationError(f"{path}: missing columns {missing}")
        rows = []
        for record in reader:
            try:
                rows.append([float(record[c]) for c in names])
            except (TypeError, ValueError):
                continue  # skip non-numeric rows
    if len(rows) < 2:
        raise ValidationError(f"{path}: fewer than two numeric rows")
    raw = np.asarray(rows)
    values = normalize(raw) if normalized else raw
    return Dataset(values, names=names, sense=sense)
