"""A counting Bloom filter.

The paper (§4.3) indexes subdomains by their boundary intersections with
a bloom filter so that, when an object is removed, the subdomains whose
boundary involves one of its intersections can be found quickly.  We use
a *counting* variant so boundary registrations can also be withdrawn
when subdomains are merged or rebuilt.

Hashing: double hashing over two independent 64-bit mixes of the item's
``repr`` bytes (Kirsch-Mitzenmacher), which gives ``k`` well-spread
index functions from two base hashes.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.errors import ValidationError

__all__ = ["BloomFilter", "CountingBloomFilter", "optimal_parameters"]


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """Classical optimal ``(num_bits, num_hashes)`` for the target rate."""
    if expected_items <= 0:
        raise ValidationError(f"expected_items must be positive, got {expected_items}")
    if not 0 < false_positive_rate < 1:
        raise ValidationError(f"false_positive_rate must be in (0, 1), got {false_positive_rate}")
    num_bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
    num_hashes = max(1, int(round(num_bits / expected_items * math.log(2))))
    return max(8, num_bits), num_hashes


def _base_hashes(item: object) -> tuple[int, int]:
    data = repr(item).encode("utf-8")
    digest = hashlib.blake2b(data, digest_size=16).digest()
    return int.from_bytes(digest[:8], "little"), int.from_bytes(digest[8:], "little")


class BloomFilter:
    """Standard (non-counting) Bloom filter over hashable items."""

    def __init__(self, expected_items: int = 1024, false_positive_rate: float = 0.01) -> None:
        self.num_bits, self.num_hashes = optimal_parameters(expected_items, false_positive_rate)
        self._bits = np.zeros(self.num_bits, dtype=bool)
        self._count = 0

    def _indices(self, item: object) -> np.ndarray:
        h1, h2 = _base_hashes(item)
        return (h1 + np.arange(self.num_hashes, dtype=np.uint64) * np.uint64(h2)) % np.uint64(
            self.num_bits
        )

    def add(self, item: object) -> None:
        """Register an item."""
        self._bits[self._indices(item).astype(np.intp)] = True
        self._count += 1

    def __contains__(self, item: object) -> bool:
        return bool(self._bits[self._indices(item).astype(np.intp)].all())

    def __len__(self) -> int:
        """Number of ``add`` calls (not distinct items)."""
        return self._count

    def estimated_false_positive_rate(self) -> float:
        """Rate predicted from the current fill factor."""
        fill = float(self._bits.mean())
        return fill**self.num_hashes

    def memory_estimate(self) -> int:
        """Approximate filter size in bytes (bit array + parameters)."""
        return int(self._bits.nbytes) + 32


class CountingBloomFilter(BloomFilter):
    """Bloom filter with 16-bit counters supporting removal."""

    def __init__(self, expected_items: int = 1024, false_positive_rate: float = 0.01) -> None:
        super().__init__(expected_items, false_positive_rate)
        self._counters = np.zeros(self.num_bits, dtype=np.uint16)
        del self._bits  # counters replace the bit array

    def add(self, item: object) -> None:
        """Register an item (counters saturate rather than overflow)."""
        idx = self._indices(item).astype(np.intp)
        # saturate rather than overflow
        self._counters[idx] = np.minimum(
            self._counters[idx].astype(np.uint32) + 1, np.iinfo(np.uint16).max
        ).astype(np.uint16)
        self._count += 1

    def remove(self, item: object) -> bool:
        """Withdraw one registration; False when the item (probably) absent."""
        idx = self._indices(item).astype(np.intp)
        if not (self._counters[idx] > 0).all():
            return False
        self._counters[idx] -= 1
        self._count -= 1
        return True

    def __contains__(self, item: object) -> bool:
        idx = self._indices(item).astype(np.intp)
        return bool((self._counters[idx] > 0).all())

    def estimated_false_positive_rate(self) -> float:
        fill = float((self._counters > 0).mean())
        return fill**self.num_hashes

    def memory_estimate(self) -> int:
        """Approximate filter size in bytes (counter array + parameters)."""
        return int(self._counters.nbytes) + 32
