"""Weight-space shard routing for the sharded subdomain index.

A :class:`ShardRouter` assigns every query weight vector to one of ``K``
shards.  Routing is the contract the whole sharded architecture leans
on, so routers obey two hard rules:

* **pure per-point** — a vector's shard depends only on the vector and
  the router's own frozen parameters, never on the rest of the workload.
  This is what lets :meth:`ShardedSubdomainIndex.load
  <repro.core.sharding.ShardedSubdomainIndex.load>` *recompute* the
  assignment from the manifest instead of persisting one id per query,
  and what keeps ``add_query`` routing consistent forever: the vector a
  query was built under is the vector it is found under.
* **deterministic** — byte-identical weights produce byte-identical
  assignments across processes and platforms (the rendezvous policy
  hashes the raw float bytes with :mod:`hashlib`, not :func:`hash`,
  which is salted per process).

Two policies ship, mirroring the two classic partitioning families:

* :class:`GridRouter` (``"grid"``, the default) — uniform bins along
  one axis of the weight domain, i.e. a weight-space *region* per shard
  (the per-region precomputation of Chester et al.'s reverse top-k
  index).  Neighbouring queries land in the same shard, which is what
  makes relevant-mode per-shard hyperplane sets small.
* :class:`RendezvousRouter` (``"rendezvous"``) — highest-random-weight
  hashing of the vector bytes; no spatial locality, but near-perfect
  balance on any workload shape and minimal movement when ``K`` changes.

Third-party policies register through :func:`register_router` and are
addressed by name everywhere a policy string is accepted (engine,
manifest, CLI ``--router``).
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "GridRouter",
    "RendezvousRouter",
    "ShardRouter",
    "get_router",
    "register_router",
    "registered_routers",
]


class ShardRouter:
    """Base class for shard-assignment policies.

    Subclasses implement :meth:`assign` as a pure function of the
    weight vectors and the router's constructor parameters, and
    :meth:`describe` so the persistence manifest can reconstruct the
    router with :func:`get_router`.
    """

    #: Registry name of the policy (set by subclasses).
    policy: str = ""

    def assign(self, weights: np.ndarray, shards: int) -> np.ndarray:
        """Shard id in ``[0, shards)`` for each ``(m, d)`` weight row."""
        raise NotImplementedError

    def assign_one(self, weights: np.ndarray, shards: int) -> int:
        """Shard id for a single ``(d,)`` weight vector."""
        return int(self.assign(np.asarray(weights, dtype=float)[None, :], shards)[0])

    def describe(self) -> dict[str, object]:
        """JSON-ready parameters; ``get_router(**describe())`` round-trips."""
        return {"policy": self.policy}

    @staticmethod
    def _check(weights: np.ndarray, shards: int) -> np.ndarray:
        if shards < 1:
            raise ValidationError(f"shards must be positive, got {shards}")
        weights = np.atleast_2d(np.asarray(weights, dtype=float))
        if not np.isfinite(weights).all():
            raise ValidationError("cannot route non-finite weight vectors")
        return weights


class GridRouter(ShardRouter):
    """Uniform bins along one weight axis over a fixed interval.

    ``shard = clip(floor((w[axis] - lo) / (hi - lo) * K))`` — a vector
    exactly on an interior bin edge belongs to the *upper* bin (floor
    semantics), mirroring the index's "ties count as above" rule for
    hyperplanes; vectors outside ``[lo, hi]`` clamp into the end bins.
    The bounds are frozen constructor parameters (defaults cover the
    paper's normalized ``[0, 1]`` weight domain), never derived from
    the workload — data-dependent bounds would change the assignment
    function under updates and break recompute-on-load.
    """

    policy = "grid"

    def __init__(self, axis: int = 0, lo: float = 0.0, hi: float = 1.0) -> None:
        if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
            raise ValidationError(f"grid bounds must satisfy lo < hi, got [{lo}, {hi}]")
        if axis < 0:
            raise ValidationError(f"grid axis must be non-negative, got {axis}")
        self.axis = int(axis)
        self.lo = float(lo)
        self.hi = float(hi)

    def assign(self, weights: np.ndarray, shards: int) -> np.ndarray:
        """Bin each row's ``axis`` coordinate into ``shards`` uniform bins."""
        weights = self._check(weights, shards)
        if self.axis >= weights.shape[1]:
            raise ValidationError(
                f"grid axis {self.axis} out of range for {weights.shape[1]}-D weights"
            )
        scaled = (weights[:, self.axis] - self.lo) / (self.hi - self.lo)
        bins = np.floor(scaled * shards).astype(np.intp)
        return np.clip(bins, 0, shards - 1)

    def describe(self) -> dict[str, object]:
        """Parameters for the persistence manifest."""
        return {"policy": self.policy, "axis": self.axis, "lo": self.lo, "hi": self.hi}


class RendezvousRouter(ShardRouter):
    """Highest-random-weight (rendezvous) hashing of the vector bytes.

    Every ``(vector, shard)`` pair gets a deterministic score from a
    keyed blake2b digest of the raw float bytes; the vector goes to the
    arg-max shard.  Balance is near-uniform for any workload shape and
    changing ``K`` moves only ``~1/K`` of the vectors — the standard
    rendezvous properties.  No spatial locality: use the grid policy
    when relevant-mode hyperplane locality matters more than balance.
    """

    policy = "rendezvous"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def assign(self, weights: np.ndarray, shards: int) -> np.ndarray:
        """Arg-max rendezvous score per row; pure function of the bytes."""
        weights = self._check(weights, shards)
        out = np.empty(weights.shape[0], dtype=np.intp)
        salt = self.seed.to_bytes(8, "little", signed=True)
        for i, row in enumerate(np.ascontiguousarray(weights)):
            row_bytes = row.tobytes()
            best_shard = 0
            best_score = b""
            for shard in range(shards):
                digest = hashlib.blake2b(
                    row_bytes + shard.to_bytes(8, "little"),
                    key=salt,
                    digest_size=8,
                ).digest()
                if shard == 0 or digest > best_score:
                    best_score = digest
                    best_shard = shard
            out[i] = best_shard
        return out

    def describe(self) -> dict[str, object]:
        """Parameters for the persistence manifest."""
        return {"policy": self.policy, "seed": self.seed}


#: Policy-name registry; third parties add entries via :func:`register_router`.
_ROUTERS: dict[str, Callable[..., ShardRouter]] = {}


def register_router(policy: str, factory: Callable[..., ShardRouter]) -> None:
    """Register a router factory under a policy name (last wins)."""
    if not policy:
        raise ValidationError("router policy name must be non-empty")
    _ROUTERS[policy] = factory


def registered_routers() -> tuple[str, ...]:
    """The registered policy names, sorted."""
    return tuple(sorted(_ROUTERS))


def get_router(policy: "str | ShardRouter | None" = None, **params: object) -> ShardRouter:
    """Resolve a policy name (or pass through a router instance).

    ``None`` yields the default :class:`GridRouter`; keyword parameters
    are forwarded to the policy factory, so a persistence manifest's
    ``describe()`` dict reconstructs the saved router exactly:
    ``get_router(**manifest["router"])``.
    """
    if isinstance(policy, ShardRouter):
        if params:
            raise ValidationError("cannot pass parameters alongside a router instance")
        return policy
    if policy is None:
        policy = GridRouter.policy
    factory = _ROUTERS.get(policy)
    if factory is None:
        raise ValidationError(
            f"unknown router policy {policy!r}; registered: {registered_routers()}"
        )
    return factory(**params)


register_router(GridRouter.policy, GridRouter)
register_router(RendezvousRouter.policy, RendezvousRouter)
