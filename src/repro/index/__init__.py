"""Index substrates: R-tree, bloom filters, skyline, dominant graph."""

from repro.index.bloom import BloomFilter, CountingBloomFilter, optimal_parameters
from repro.index.dominant_graph import DominantGraph
from repro.index.rtree import Rect, RTree
from repro.index.skyline import (
    block_nested_loop_skyline,
    dominates,
    skyline,
    skyline_layers,
)
from repro.index.xtree import XTree

__all__ = [
    "RTree",
    "Rect",
    "XTree",
    "BloomFilter",
    "CountingBloomFilter",
    "optimal_parameters",
    "DominantGraph",
    "dominates",
    "skyline",
    "skyline_layers",
    "block_nested_loop_skyline",
]
