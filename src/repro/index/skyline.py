"""Skyline (dominance) operators.

Substrate for the Dominant Graph index [Zou & Chen, ICDE'08] that the
paper benchmarks against in Figure 4, and for the related-work
discussion of object upgrading onto skylines [Lu & Jensen, ICDE'12].

Convention: the library ranks by **lower score is better** with
non-negative query weights, so object ``p`` *dominates* ``r`` iff
``p[j] <= r[j]`` in every dimension and ``p[j] < r[j]`` in at least one.
A dominated object can never out-rank its dominator under any
non-negative linear utility — the property both the skyline and the
dominant graph exploit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["dominates", "skyline", "skyline_layers", "block_nested_loop_skyline"]


def dominates(p: np.ndarray, r: np.ndarray, tol: float = 0.0) -> bool:
    """True iff ``p`` dominates ``r`` under the min-score convention."""
    p = np.asarray(p, dtype=float)
    r = np.asarray(r, dtype=float)
    if p.shape != r.shape:
        raise ValidationError(f"shape mismatch: {p.shape} vs {r.shape}")
    return bool(np.all(p <= r + tol) and np.any(p < r - tol))


def block_nested_loop_skyline(objects: np.ndarray) -> np.ndarray:
    """Indices of the skyline via the classic BNL algorithm [5].

    Quadratic worst case but with the window trick that keeps the
    candidate set small on typical data.
    """
    objects = np.asarray(objects, dtype=float)
    if objects.ndim != 2:
        raise ValidationError(f"objects must be 2-D, got shape {objects.shape}")
    window: list[int] = []
    for idx in range(objects.shape[0]):
        candidate = objects[idx]
        dominated = False
        survivors = []
        for kept in window:
            if dominates(objects[kept], candidate):
                dominated = True
                survivors.append(kept)
            elif not dominates(candidate, objects[kept]):
                survivors.append(kept)
        if not dominated:
            survivors.append(idx)
        window = survivors
    return np.asarray(sorted(window), dtype=np.intp)


def skyline(objects: np.ndarray) -> np.ndarray:
    """Indices of the skyline, sort-first-skyline (SFS) variant.

    Pre-sorting by the attribute sum guarantees no later object can
    dominate an earlier one, so a single filtering pass suffices.
    """
    objects = np.asarray(objects, dtype=float)
    if objects.ndim != 2:
        raise ValidationError(f"objects must be 2-D, got shape {objects.shape}")
    n = objects.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    order = np.argsort(objects.sum(axis=1), kind="stable")
    result: list[int] = []
    window = np.empty((0, objects.shape[1]))
    for idx in order:
        candidate = objects[idx]
        if window.shape[0]:
            dominated = np.all(window <= candidate, axis=1) & np.any(
                window < candidate, axis=1
            )
            if bool(dominated.any()):
                continue
            # In exact arithmetic the sum-order guarantees no later point
            # dominates an earlier one; with floating-point-tied sums it
            # can happen, so evict window members the candidate dominates.
            beats = np.all(candidate <= window, axis=1) & np.any(
                candidate < window, axis=1
            )
            if bool(beats.any()):
                keep = ~beats
                window = window[keep]
                result = [r for r, kept in zip(result, keep) if kept]
        result.append(int(idx))
        window = np.vstack([window, candidate[None, :]])
    return np.asarray(sorted(result), dtype=np.intp)


def skyline_layers(objects: np.ndarray) -> list[np.ndarray]:
    """Iterative skyline peeling: layer 0 is the skyline of all objects,
    layer 1 the skyline of the rest, and so on.

    Every object appears in exactly one layer; an object in layer ``i``
    is dominated by at least one object of layer ``i - 1``.  This is the
    layer structure the dominant graph is built on.
    """
    objects = np.asarray(objects, dtype=float)
    if objects.ndim != 2:
        raise ValidationError(f"objects must be 2-D, got shape {objects.shape}")
    remaining = np.arange(objects.shape[0], dtype=np.intp)
    layers: list[np.ndarray] = []
    while remaining.size:
        local = skyline(objects[remaining])
        layer = remaining[local]
        layers.append(layer)
        mask = np.ones(remaining.size, dtype=bool)
        mask[local] = False
        remaining = remaining[mask]
    return layers
