"""X-tree: an R-tree variant with supernodes (paper §4.1, ref. [3]).

The paper indexes query points "using multidimensional data structures
such as R-tree or X-tree".  The X-tree [Berchtold, Keim & Kriegel]
addresses the R-tree's high-dimensional degradation: when a node split
would produce heavily *overlapping* halves (which makes every later
search descend both), the X-tree refuses to split and instead extends
the node into a **supernode** with enlarged capacity, trading fanout
for overlap-free directories.

Implementation: :class:`XTree` subclasses :class:`~repro.index.rtree.RTree`
and intercepts the overflow handler — if Guttman's quadratic split of an
*internal* node yields group rectangles whose overlap exceeds
``max_overlap`` of the smaller group's area, the node's private capacity
doubles instead.  Leaf splits always proceed (leaf overlap does not
multiply search paths the same way, matching the original design's
emphasis on directory nodes).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.index.rtree import Rect, RTree, _Node

__all__ = ["XTree"]


def _overlap_area(a: Rect, b: Rect) -> float:
    out = 1.0
    for lo_a, hi_a, lo_b, hi_b in zip(a.mins, a.maxs, b.mins, b.maxs):
        span = min(hi_a, hi_b) - max(lo_a, lo_b)
        if span <= 0:
            return 0.0
        out *= span
    return out


class XTree(RTree):
    """R-tree with supernodes for overlap-heavy directory splits.

    Parameters
    ----------
    max_overlap:
        Split-rejection threshold: an internal split whose group MBRs
        overlap by more than this fraction of the smaller group's area
        is replaced by a supernode extension.
    """

    def __init__(self, dim: int, max_entries: int = 8, min_entries: int | None = None,
                 max_overlap: float = 0.2) -> None:
        super().__init__(dim, max_entries=max_entries, min_entries=min_entries)
        if not 0 <= max_overlap <= 1:
            raise ValidationError(f"max_overlap must be in [0, 1], got {max_overlap}")
        self.max_overlap = max_overlap
        self._capacity: dict[int, int] = {}  # id(node) -> private capacity

    def _node_capacity(self, node: _Node) -> int:
        return self._capacity.get(id(node), self.max_entries)

    def supernode_count(self) -> int:
        """How many directory nodes have extended capacity."""
        return len(self._capacity)

    # ------------------------------------------------------------------
    def _split_upward(self, node: _Node) -> None:
        while len(node.entries) > self._node_capacity(node):
            if not node.leaf and self._should_extend(node):
                # Supernode: double this node's private capacity and stop.
                self._capacity[id(node)] = 2 * self._node_capacity(node)
                break
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.entries = [(node.rect(), node), (sibling.rect(), sibling)]
                node.parent = sibling.parent = new_root
                self._root = new_root
                return
            self._refresh_entry(parent, node)
            parent.entries.append((sibling.rect(), sibling))
            sibling.parent = parent
            node = parent
        self._adjust_rects(node)

    def _should_extend(self, node: _Node) -> bool:
        """Would Guttman's split of this node overlap too much?"""
        probe = _Node(leaf=node.leaf)
        probe.entries = list(node.entries)
        sibling = self._quadratic_split(probe)
        rect_a, rect_b = probe.rect(), sibling.rect()
        # Re-attach children to the original node (the probe split moved
        # parents around for internal nodes).
        if not node.leaf:
            for __, child in node.entries:
                child.parent = node
        overlap = _overlap_area(rect_a, rect_b)
        smaller = min(rect_a.area(), rect_b.area())
        if smaller <= 0:
            return overlap > 0
        return overlap / smaller > self.max_overlap

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """R-tree invariants, with supernode capacities honoured."""
        from repro.errors import IndexCorruptionError

        leaf_depths: set[int] = set()
        counted = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            capacity = self._node_capacity(node)
            if len(node.entries) > capacity:
                raise IndexCorruptionError(
                    f"node holds {len(node.entries)} entries, capacity {capacity}"
                )
            if node is not self._root and len(node.entries) < self.min_entries:
                raise IndexCorruptionError(
                    f"node fill {len(node.entries)} below minimum {self.min_entries}"
                )
            if node.leaf:
                leaf_depths.add(depth)
                counted += len(node.entries)
            else:
                for rect, child in node.entries:
                    if child.parent is not node:
                        raise IndexCorruptionError("broken parent pointer")
                    if child.entries and not rect.contains(child.rect()):
                        raise IndexCorruptionError("parent rect does not cover child")
                    stack.append((child, depth + 1))
        if len(leaf_depths) > 1:
            raise IndexCorruptionError(f"leaves at different depths: {sorted(leaf_depths)}")
        if counted != self._size:
            raise IndexCorruptionError(f"size mismatch: counted {counted}, recorded {self._size}")
