"""Memory-mapped index persistence: raw ``.npy`` files + JSON manifest.

The ``.npz`` layout (PR 4) decompresses every matrix into fresh pages
on load — open time and resident memory both grow linearly with index
size, and every pool worker pays again unless the parent copies the
arrays into shared memory.  The mmap layout trades a directory for a
single file:

* one uncompressed ``.npy`` per persisted matrix, opened with
  ``np.load(..., mmap_mode="r")`` so the open itself is O(1) — pages
  fault in lazily and live in the OS page cache;
* a ``manifest.json`` carrying the schema tag, the index metadata, the
  dataset/workload fingerprints, and per-array ``{file, dtype, shape}``
  entries so corruption is detected *before* any matrix is touched.

Because the maps are read-only, forked ``PersistentPool`` workers share
the hot matrices through the page cache for free — the pool skips its
shared-memory export for mmap-backed arrays entirely.  Mutating code
never writes through the maps: update paths rebind index arrays (the
read-only mapping makes an accidental in-place write raise instead of
silently corrupting the file on disk).

Error typing follows the ``.npz`` convention: a missing / truncated /
unparseable file raises :class:`~repro.errors.IndexCorruptionError`; an
intact directory that belongs to different data or a different schema
version raises :class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import IndexCorruptionError, ValidationError

__all__ = [
    "MMAP_SCHEMA",
    "MANIFEST_NAME",
    "directory_schema",
    "write_mmap_index",
    "read_mmap_index",
]

#: Schema tag of the memory-mapped monolithic-index layout; bumped
#: whenever the on-disk layout changes so stale directories fail loudly.
MMAP_SCHEMA = "repro-subdomain-index-mmap/1"

#: Manifest file name shared with the sharded layout — the ``schema``
#: field inside distinguishes the two directory formats.
MANIFEST_NAME = "manifest.json"


def directory_schema(path: "str | Path") -> str | None:
    """The ``schema`` tag of a persisted-index directory, if readable.

    Returns ``None`` for anything that is not a directory carrying a
    parseable manifest — callers use this to route a ``--load-index``
    directory to the sharded or the mmap loader without guessing.
    """
    manifest = Path(path) / MANIFEST_NAME
    try:
        payload = json.loads(manifest.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    schema = payload.get("schema") if isinstance(payload, dict) else None
    return schema if isinstance(schema, str) else None


def write_mmap_index(
    path: "str | Path",
    metadata: Mapping[str, object],
    arrays: Mapping[str, np.ndarray],
) -> None:
    """Persist ``arrays`` as raw ``.npy`` files under a manifest.

    ``metadata`` is copied into the manifest verbatim next to the
    schema tag and the per-array catalog; keys may not collide with
    ``schema`` / ``arrays``.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    catalog: dict[str, dict[str, object]] = {}
    for key, array in arrays.items():
        filename = f"{key}.npy"
        np.save(root / filename, np.ascontiguousarray(array))
        catalog[key] = {
            "file": filename,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
        }
    manifest: dict[str, object] = {"schema": MMAP_SCHEMA, **metadata, "arrays": catalog}
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _manifest(root: Path) -> dict[str, object]:
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise IndexCorruptionError(f"mmap index {root} has no {MANIFEST_NAME}")
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise IndexCorruptionError(f"mmap index manifest {manifest_path} is unreadable: {exc}") from exc
    if not isinstance(payload, dict):
        raise IndexCorruptionError(f"mmap index manifest {manifest_path} is not an object")
    return payload


def read_mmap_index(
    path: "str | Path",
) -> tuple[dict[str, object], dict[str, np.ndarray]]:
    """Open a mmap-layout directory as ``(metadata, arrays)``.

    The manifest is validated first — schema tag, array catalog, and
    each catalog entry's dtype/shape against the ``.npy`` header — so
    every corruption surfaces as a typed error before a single matrix
    page is faulted in.  The returned arrays are read-only
    ``np.memmap`` views; the metadata dict is the manifest minus the
    ``schema``/``arrays`` bookkeeping keys.
    """
    root = Path(path)
    payload = _manifest(root)
    schema = payload.get("schema")
    if schema != MMAP_SCHEMA:
        raise ValidationError(
            f"unsupported mmap index schema {schema!r} (expected {MMAP_SCHEMA!r})"
        )
    catalog = payload.get("arrays")
    if not isinstance(catalog, dict):
        raise IndexCorruptionError(f"mmap index {root} manifest is missing the array catalog")
    arrays: dict[str, np.ndarray] = {}
    for key, entry in catalog.items():
        if not isinstance(entry, dict) or "file" not in entry:
            raise IndexCorruptionError(f"mmap index {root} catalog entry {key!r} is malformed")
        array_path = root / str(entry["file"])
        try:
            array = np.load(array_path, mmap_mode="r", allow_pickle=False)
        except FileNotFoundError as exc:
            raise IndexCorruptionError(f"mmap index {root} is missing array file {key!r}") from exc
        except (OSError, EOFError, ValueError) as exc:
            raise IndexCorruptionError(
                f"mmap index array {array_path} is corrupt or truncated: {exc}"
            ) from exc
        if str(array.dtype) != entry.get("dtype") or list(array.shape) != entry.get("shape"):
            raise IndexCorruptionError(
                f"mmap index array {key!r} disagrees with its manifest entry "
                f"(got {array.dtype}/{array.shape}, manifest says "
                f"{entry.get('dtype')}/{entry.get('shape')})"
            )
        arrays[key] = array
    metadata = {
        key: value for key, value in payload.items() if key not in ("schema", "arrays")
    }
    return metadata, arrays
