"""A dynamic R-tree (Guttman, 1984) built from scratch.

The paper indexes the top-k query points with an R-tree and uses it for

* range retrieval of the *affected subspace* of a strategy (§4.1),
* k-nearest-neighbour lookup when a new query point arrives and we want
  candidate subdomains from its neighbours (§4.3).

This implementation supports point and rectangle payloads, Guttman's
quadratic split, deletion with condense-tree reinsertion, range and
half-space filtered searches, best-first kNN, and STR bulk loading.  It
also exposes :meth:`RTree.validate` which checks every structural
invariant — the tests lean on it heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import count
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import IndexCorruptionError, ValidationError

__all__ = ["Rect", "RTree"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned d-dimensional rectangle ``[mins, maxs]``."""

    mins: tuple
    maxs: tuple

    @classmethod
    def from_arrays(cls, mins: "np.typing.ArrayLike", maxs: "np.typing.ArrayLike") -> "Rect":
        mins = tuple(float(v) for v in np.atleast_1d(mins))
        maxs = tuple(float(v) for v in np.atleast_1d(maxs))
        if len(mins) != len(maxs):
            raise ValidationError("mins and maxs must have the same length")
        if any(lo > hi for lo, hi in zip(mins, maxs)):
            raise ValidationError(f"empty rectangle: {mins} > {maxs}")
        return cls(mins, maxs)

    @classmethod
    def point(cls, coords: "np.typing.ArrayLike") -> "Rect":
        coords = tuple(float(v) for v in np.atleast_1d(coords))
        return cls(coords, coords)

    @property
    def dim(self) -> int:
        return len(self.mins)

    def area(self) -> float:
        """Hyper-volume of the rectangle."""
        out = 1.0
        for lo, hi in zip(self.mins, self.maxs):
            out *= hi - lo
        return out

    def margin(self) -> float:
        """Sum of edge lengths (the R*-style perimeter metric)."""
        return sum(hi - lo for lo, hi in zip(self.mins, self.maxs))

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    def intersects(self, other: "Rect") -> bool:
        """Do the (closed) rectangles overlap?"""
        return all(
            lo <= other_hi and other_lo <= hi
            for lo, hi, other_lo, other_hi in zip(self.mins, self.maxs, other.mins, other.maxs)
        )

    def contains(self, other: "Rect") -> bool:
        """Does this rectangle fully cover ``other``?"""
        return all(
            lo <= other_lo and other_hi <= hi
            for lo, hi, other_lo, other_hi in zip(self.mins, self.maxs, other.mins, other.maxs)
        )

    def enlargement(self, other: "Rect") -> float:
        """Extra area needed to cover ``other`` (Guttman's insert metric)."""
        return self.union(other).area() - self.area()

    # Hot path inside nearest(): callers pass pre-validated query points.
    def min_dist_sq(self, point: "tuple[float, ...] | np.ndarray") -> float:  # repro: noqa[RPR003]
        """Squared distance from ``point`` to the nearest point of the rect."""
        total = 0.0
        for value, lo, hi in zip(point, self.mins, self.maxs):
            if value < lo:
                total += (lo - value) ** 2
            elif value > hi:
                total += (value - hi) ** 2
        return total

    def center(self) -> tuple:
        """The rectangle's midpoint."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.mins, self.maxs))


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # Leaf entries: (Rect, payload).  Internal entries: (Rect, _Node).
        self.entries: list = []
        self.parent: _Node | None = None

    def rect(self) -> Rect:
        box = self.entries[0][0]
        for rect, _ in self.entries[1:]:
            box = box.union(rect)
        return box


class RTree:
    """Dynamic R-tree over d-dimensional rectangles/points.

    Parameters
    ----------
    dim:
        Dimensionality of indexed rectangles.
    max_entries:
        Node capacity ``M`` (>= 2); nodes split at ``M + 1`` entries.
    min_entries:
        Minimum fill ``m`` (defaults to ``ceil(M * 0.4)``); underfull
        nodes after deletion are dissolved and their entries reinserted.
    """

    def __init__(self, dim: int, max_entries: int = 8, min_entries: int | None = None) -> None:
        if dim <= 0:
            raise ValidationError(f"dim must be positive, got {dim}")
        if max_entries < 2:
            raise ValidationError(f"max_entries must be >= 2, got {max_entries}")
        self.dim = dim
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(1, (max_entries * 2) // 5)
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValidationError(
                f"min_entries must be in [1, {max_entries // 2}], got {self.min_entries}"
            )
        self._root = _Node(leaf=True)
        self._size = 0
        self._tiebreak = count()

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, rect: "Rect | np.typing.ArrayLike", payload: object) -> None:
        """Insert ``payload`` under ``rect`` (a :class:`Rect` or a point)."""
        rect = self._coerce(rect)
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, payload))
        self._split_upward(leaf)
        self._size += 1

    def insert_point(self, coords: "np.typing.ArrayLike", payload: object) -> None:
        """Convenience wrapper for point data (the query-point use case)."""
        self.insert(Rect.point(coords), payload)

    def _coerce(self, rect: "Rect | np.typing.ArrayLike") -> Rect:
        if not isinstance(rect, Rect):
            rect = Rect.point(rect)
        if rect.dim != self.dim:
            raise ValidationError(f"rect dim {rect.dim} != tree dim {self.dim}")
        return rect

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            best = None
            best_key = None
            for child_rect, child in node.entries:
                key = (child_rect.enlargement(rect), child_rect.area())
                if best_key is None or key < best_key:
                    best_key, best = key, child
            node = best
        return node

    def _split_upward(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.entries = [(node.rect(), node), (sibling.rect(), sibling)]
                node.parent = sibling.parent = new_root
                self._root = new_root
                return
            self._refresh_entry(parent, node)
            parent.entries.append((sibling.rect(), sibling))
            sibling.parent = parent
            node = parent
        self._adjust_rects(node)

    def _adjust_rects(self, node: _Node) -> None:
        parent = node.parent
        while parent is not None:
            self._refresh_entry(parent, node)
            node, parent = parent, parent.parent

    @staticmethod
    def _refresh_entry(parent: _Node, child: _Node) -> None:
        for i, (__, node) in enumerate(parent.entries):
            if node is child:
                parent.entries[i] = (child.rect(), child)
                return
        raise IndexCorruptionError("child missing from its parent's entry list")

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split; ``node`` keeps one group, returns the other."""
        entries = node.entries
        # Pick seeds: the pair wasting the most area when joined.
        worst = -np.inf
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).area()
                    - entries[i][0].area()
                    - entries[j][0].area()
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        rect_a, rect_b = group_a[0][0], group_b[0][0]
        rest = [e for k, e in enumerate(entries) if k not in seeds]

        while rest:
            # Forced assignment when one group must absorb all leftovers.
            if len(group_a) + len(rest) <= self.min_entries:
                group_a.extend(rest)
                rest = []
                break
            if len(group_b) + len(rest) <= self.min_entries:
                group_b.extend(rest)
                rest = []
                break
            # Pick the entry with the strongest preference.
            best_idx, best_diff, best_goes_a = 0, -np.inf, True
            for idx, (rect, __) in enumerate(rest):
                d_a = rect_a.enlargement(rect)
                d_b = rect_b.enlargement(rect)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_idx, best_diff, best_goes_a = idx, diff, d_a < d_b
            entry = rest.pop(best_idx)
            if best_goes_a:
                group_a.append(entry)
                rect_a = rect_a.union(entry[0])
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry[0])

        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not node.leaf:
            for __, child in group_b:
                child.parent = sibling
        return sibling

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, rect: "Rect | np.typing.ArrayLike", payload: object) -> bool:
        """Remove one entry matching ``(rect, payload)``; True on success."""
        rect = self._coerce(rect)
        leaf = self._find_leaf(self._root, rect, payload)
        if leaf is None:
            return False
        removed = False
        kept = []
        for entry_rect, entry_payload in leaf.entries:
            if not removed and entry_rect == rect and entry_payload == payload:
                removed = True
                continue
            kept.append((entry_rect, entry_payload))
        leaf.entries = kept
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(self, node: _Node, rect: Rect, payload: object) -> _Node | None:
        if node.leaf:
            for r, p in node.entries:
                if r == rect and p == payload:
                    return node
            return None
        for child_rect, child in node.entries:
            if child_rect.contains(rect) or child_rect.intersects(rect):
                hit = self._find_leaf(child, rect, payload)
                if hit is not None:
                    return hit
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[tuple[Rect, object, bool]] = []  # (rect, payload, is_leaf_entry)
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [(r, child) for r, child in parent.entries if child is not node]
                self._collect(node, orphans)
            else:
                self._refresh_entry(parent, node)
            node = parent
        # Shrink the root when it has a single internal child.
        while not self._root.leaf and len(self._root.entries) == 1:
            (__, only_child) = self._root.entries[0]
            only_child.parent = None
            self._root = only_child
        if not self._root.leaf and not self._root.entries:
            self._root = _Node(leaf=True)
        for rect, payload, is_leaf_entry in orphans:
            if is_leaf_entry:
                self._size -= 1  # insert() will add it back
                self.insert(rect, payload)
            else:  # pragma: no cover - only hit on deep trees
                self._reinsert_subtree(payload)

    def _collect(self, node: _Node, orphans: list) -> None:
        if node.leaf:
            for rect, payload in node.entries:
                orphans.append((rect, payload, True))
        else:
            for __, child in node.entries:
                self._collect(child, orphans)

    def _reinsert_subtree(self, node: _Node) -> None:
        for rect, payload in self._leaf_entries(node):
            self._size -= 1
            self.insert(rect, payload)

    def _leaf_entries(self, node: _Node) -> "Iterator[tuple[Rect, object]]":
        if node.leaf:
            yield from node.entries
        else:
            for __, child in node.entries:
                yield from self._leaf_entries(child)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, rect: "Rect | np.typing.ArrayLike") -> list:
        """Payloads of all entries whose rectangle intersects ``rect``."""
        rect = self._coerce(rect)
        out: list = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend(p for r, p in node.entries if r.intersects(rect))
            else:
                stack.extend(child for r, child in node.entries if r.intersects(rect))
        return out

    def search_where(
        self,
        rect: "Rect | np.typing.ArrayLike",
        predicate: "Callable[[Rect, object], bool]",
    ) -> list:
        """Range search with an extra payload/point predicate.

        Used for affected-subspace retrieval: the R-tree prunes with the
        bounding box of the slab between the old and new hyperplanes, and
        ``predicate`` applies the exact boundary conditions (Eq. 4-5).
        """
        rect = self._coerce(rect)
        out = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend(p for r, p in node.entries if r.intersects(rect) and predicate(r, p))
            else:
                stack.extend(child for r, child in node.entries if r.intersects(rect))
        return out

    def nearest(self, point: "np.typing.ArrayLike", k: int = 1) -> list:
        """Best-first k-nearest-neighbour search; returns up to ``k`` payloads."""
        point = tuple(float(v) for v in np.atleast_1d(point))
        if len(point) != self.dim:
            raise ValidationError(f"point dim {len(point)} != tree dim {self.dim}")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        heap: list = []
        heappush(heap, (0.0, next(self._tiebreak), False, self._root))
        out = []
        while heap and len(out) < k:
            dist, __, is_entry, item = heappop(heap)
            if is_entry:
                out.append(item)
                continue
            node = item
            if node.leaf:
                for rect, payload in node.entries:
                    heappush(heap, (rect.min_dist_sq(point), next(self._tiebreak), True, payload))
            else:
                for rect, child in node.entries:
                    heappush(heap, (rect.min_dist_sq(point), next(self._tiebreak), False, child))
        return out

    def items(self) -> list:
        """All ``(Rect, payload)`` entries (unspecified order)."""
        return list(self._leaf_entries(self._root))

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        dim: int,
        items: "Iterable[tuple[Rect | np.typing.ArrayLike, object]]",
        max_entries: int = 8,
    ) -> "RTree":
        """Build a packed tree from ``(point_or_rect, payload)`` pairs (STR)."""
        tree = cls(dim, max_entries=max_entries)
        entries = [(tree._coerce(rect), payload) for rect, payload in items]
        if not entries:
            return tree
        nodes = tree._str_pack([(r, p) for r, p in entries], leaf=True)
        while len(nodes) > 1:
            nodes = tree._str_pack([(n.rect(), n) for n in nodes], leaf=False)
        tree._root = nodes[0]
        tree._size = len(entries)
        return tree

    @classmethod
    def bulk_load_points(
        cls,
        dim: int,
        coords: "np.typing.ArrayLike",
        payloads: "Iterable[object] | None" = None,
        max_entries: int = 8,
    ) -> "RTree":
        """Build a packed tree from an ``(n, d)`` coordinate array (STR).

        The point-data fast path of :meth:`bulk_load`: the recursive
        sort-tile ordering runs on numpy index arrays (one ``argsort``
        per slab instead of Python tuple comparisons), so packing a
        whole query workload is a single vectorized pass.  ``payloads``
        defaults to ``0..n-1`` — the query-id convention of the
        subdomain index.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        tree = cls(dim, max_entries=max_entries)
        n = coords.shape[0]
        if n == 0:
            return tree
        if coords.shape[1] != dim:
            raise ValidationError(f"coords are {coords.shape[1]}-D, tree dim is {dim}")
        if payloads is None:
            payloads = range(n)
        payloads = list(payloads)
        if len(payloads) != n:
            raise ValidationError(f"{len(payloads)} payloads for {n} points")
        capacity = max_entries
        num_nodes = int(np.ceil(n / capacity))

        def tile(idx: np.ndarray, axis: int) -> list[np.ndarray]:
            if axis >= dim - 1 or idx.size <= capacity:
                idx = idx[np.argsort(coords[idx, min(axis, dim - 1)], kind="stable")]
                return [idx[i : i + capacity] for i in range(0, idx.size, capacity)]
            idx = idx[np.argsort(coords[idx, axis], kind="stable")]
            slabs_needed = int(np.ceil(num_nodes ** ((dim - axis - 1) / (dim - axis))))
            slab_size = max(capacity, int(np.ceil(idx.size / max(1, slabs_needed))))
            out: list[np.ndarray] = []
            for i in range(0, idx.size, slab_size):
                out.extend(tile(idx[i : i + slab_size], axis + 1))
            return out

        groups = [
            [(Rect.point(coords[i]), payloads[i]) for i in group]
            for group in tile(np.arange(n), 0)
        ]
        nodes = tree._nodes_from_groups(groups, leaf=True)
        while len(nodes) > 1:
            nodes = tree._str_pack([(node.rect(), node) for node in nodes], leaf=False)
        tree._root = nodes[0]
        tree._size = n
        return tree

    def _str_pack(self, entries: list, leaf: bool) -> list[_Node]:
        capacity = self.max_entries
        dim = self.dim
        num_nodes = int(np.ceil(len(entries) / capacity))
        # Recursively tile: sort by each axis in turn and slice.
        def tile(chunk: list, axis: int) -> list[list]:
            if axis >= dim - 1 or len(chunk) <= capacity:
                chunk.sort(key=lambda e: e[0].center()[min(axis, dim - 1)])
                return [chunk[i : i + capacity] for i in range(0, len(chunk), capacity)]
            chunk.sort(key=lambda e: e[0].center()[axis])
            slabs_needed = int(np.ceil(num_nodes ** ((dim - axis - 1) / (dim - axis)) ))
            slab_size = max(capacity, int(np.ceil(len(chunk) / max(1, slabs_needed))))
            out = []
            for i in range(0, len(chunk), slab_size):
                out.extend(tile(chunk[i : i + slab_size], axis + 1))
            return out

        groups = tile(list(entries), 0)
        return self._nodes_from_groups(groups, leaf)

    def _nodes_from_groups(self, groups: list[list], leaf: bool) -> list[_Node]:
        """Turn entry groups into nodes, enforcing the minimum fill.

        Slab boundaries can leave undersized tail groups; merge each
        into its predecessor (resplitting when the merge overflows) so
        every node respects the minimum fill invariant.
        """
        capacity = self.max_entries
        balanced: list[list] = []
        for group in groups:
            if len(group) >= self.min_entries or not balanced:
                balanced.append(group)
                continue
            merged = balanced.pop() + group
            if len(merged) <= capacity:
                balanced.append(merged)
            else:
                half = len(merged) // 2
                balanced.extend([merged[:half], merged[half:]])
        nodes = []
        for group in balanced:
            node = _Node(leaf=leaf)
            node.entries = group
            if not leaf:
                for __, child in group:
                    child.parent = node
            nodes.append(node)
        return nodes

    # ------------------------------------------------------------------
    # Introspection / invariants
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        h, node = 1, self._root
        while not node.leaf:
            node = node.entries[0][1]
            h += 1
        return h

    def node_count(self) -> int:
        """Total number of nodes."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.leaf:
                stack.extend(child for __, child in node.entries)
        return total

    def memory_estimate(self) -> int:
        """Rough index size in bytes (for the Figure 4/5 size metric)."""
        per_rect = 2 * self.dim * 8
        entry_count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            entry_count += len(node.entries)
            if not node.leaf:
                stack.extend(child for __, child in node.entries)
        return self.node_count() * 64 + entry_count * (per_rect + 16)

    def validate(self) -> None:
        """Raise :class:`IndexCorruptionError` if any invariant is broken."""
        leaf_depths: set[int] = set()
        counted = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if node is not self._root and not (
                self.min_entries <= len(node.entries) <= self.max_entries
            ):
                raise IndexCorruptionError(
                    f"node fill {len(node.entries)} outside [{self.min_entries}, {self.max_entries}]"
                )
            if len(node.entries) > self.max_entries:
                raise IndexCorruptionError("root overfull")
            if node.leaf:
                leaf_depths.add(depth)
                counted += len(node.entries)
            else:
                for rect, child in node.entries:
                    if child.parent is not node:
                        raise IndexCorruptionError("broken parent pointer")
                    if child.entries and not rect.contains(child.rect()):
                        raise IndexCorruptionError("parent rect does not cover child")
                    stack.append((child, depth + 1))
        if len(leaf_depths) > 1:
            raise IndexCorruptionError(f"leaves at different depths: {sorted(leaf_depths)}")
        if counted != self._size:
            raise IndexCorruptionError(f"size mismatch: counted {counted}, recorded {self._size}")
