"""Dominant Graph top-k index [Zou & Chen, ICDE 2008].

The paper's Figure 4 compares the indexing cost of the proposed
Efficient-IQ index against a Dominant Graph ("the state-of-the-art
indexing technique for top-k query with linear utility functions"), so
we build one.

Structure
---------
Objects are peeled into skyline layers (see
:mod:`repro.index.skyline`).  A directed edge runs from a *parent* in
layer ``i`` to a *child* in layer ``i + 1`` iff the parent dominates the
child.  Because any non-negative linear utility scores a dominator no
worse than its dominatee, the k objects with the lowest scores can be
found by a best-first traversal that only ever expands a child once all
of its parents have been popped — the "travel on the DG" procedure of
the original paper.

Children whose parent set is empty (possible after layer peeling when
domination skips a layer) are treated as roots of their layer and seeded
once the traversal reaches that layer.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from repro.errors import ValidationError
from repro.index.skyline import dominates, skyline_layers

__all__ = ["DominantGraph"]


class DominantGraph:
    """Layered dominance index answering linear top-k queries.

    Parameters
    ----------
    objects:
        ``(n, d)`` array; ranking convention is lower ``q . p`` wins,
        with non-negative weights ``q``.
    """

    def __init__(self, objects: np.ndarray) -> None:
        objects = np.asarray(objects, dtype=float)
        if objects.ndim != 2:
            raise ValidationError(f"objects must be 2-D, got shape {objects.shape}")
        self.objects = objects
        self.layers = skyline_layers(objects)
        self.layer_of = np.empty(objects.shape[0], dtype=np.intp)
        for depth, layer in enumerate(self.layers):
            self.layer_of[layer] = depth
        self.parents: dict[int, list[int]] = {int(i): [] for i in range(objects.shape[0])}
        self.children: dict[int, list[int]] = {int(i): [] for i in range(objects.shape[0])}
        self._link_layers()

    def _link_layers(self) -> None:
        for upper, lower in zip(self.layers, self.layers[1:]):
            upper_points = self.objects[upper]
            for child in lower:
                child = int(child)
                point = self.objects[child]
                mask = np.all(upper_points <= point, axis=1) & np.any(
                    upper_points < point, axis=1
                )
                for parent in upper[mask]:
                    parent = int(parent)
                    self.parents[child].append(parent)
                    self.children[parent].append(child)

    # ------------------------------------------------------------------
    def top_k(self, weights: np.ndarray, k: int) -> list[int]:
        """The ``k`` object ids with the lowest ``weights . p`` scores.

        Ties broken by object id (the library-wide convention).
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.objects.shape[1],):
            raise ValidationError(
                f"weights shape {weights.shape} != ({self.objects.shape[1]},)"
            )
        if np.any(weights < 0):
            raise ValidationError("dominant graph requires non-negative weights")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        n = self.objects.shape[0]
        k = min(k, n)
        scores = self.objects @ weights

        heap: list[tuple[float, int]] = []
        seeded_layers = 0
        popped_parents = {i: 0 for i in self.parents}
        in_heap = np.zeros(n, dtype=bool)

        def seed_layer(depth: int) -> None:
            if depth >= len(self.layers):
                return
            for obj in self.layers[depth]:
                obj = int(obj)
                if not self.parents[obj] and not in_heap[obj]:
                    heappush(heap, (float(scores[obj]), obj))
                    in_heap[obj] = True

        seed_layer(0)
        seeded_layers = 1
        out: list[int] = []
        while heap and len(out) < k:
            score, obj = heappop(heap)
            out.append(obj)
            for child in self.children[obj]:
                popped_parents[child] += 1
                if popped_parents[child] == len(self.parents[child]) and not in_heap[child]:
                    heappush(heap, (float(scores[child]), child))
                    in_heap[child] = True
            # If the heap ran low because a deeper layer has parentless
            # members, seed the next layer lazily.
            while len(heap) + len(out) < k and seeded_layers < len(self.layers):
                seed_layer(seeded_layers)
                seeded_layers += 1
        return out

    # ------------------------------------------------------------------
    def edge_count(self) -> int:
        """Number of parent->child domination edges."""
        return sum(len(c) for c in self.children.values())

    def memory_estimate(self) -> int:
        """Rough index size in bytes (layer arrays + adjacency lists)."""
        n, d = self.objects.shape
        return n * d * 8 + n * 8 + self.edge_count() * 16

    def validate(self) -> None:
        """Structural invariants: partition into layers, edges span layers."""
        seen = np.zeros(self.objects.shape[0], dtype=int)
        for layer in self.layers:
            seen[layer] += 1
        if not np.all(seen == 1):
            raise ValidationError("layers do not partition the object set")
        for child, parents in self.parents.items():
            for parent in parents:
                if self.layer_of[parent] != self.layer_of[child] - 1:
                    raise ValidationError("edge does not connect consecutive layers")
                if not dominates(self.objects[parent], self.objects[child]):
                    raise ValidationError("edge without domination")
