"""Reverse top-k evaluation via the Threshold Algorithm (RTA) [21].

The paper's RTA-IQ baseline plugs Vlachou et al.'s monochromatic RTA
into the same greedy strategy search instead of ESE: each candidate's
hit count ``H(p + s)`` is computed by a reverse top-k pass over the
workload.  RTA's trick is to avoid evaluating every query from scratch:
queries are processed in sequence and the *previous* query's top-k
result acts as a pruning buffer — if, under the current query's
weights, at least ``k`` buffered objects already score better than the
candidate point, the candidate cannot be in this query's top-k and the
full evaluation is skipped.  Workload queries are sorted so that
adjacent queries have similar weights, which keeps the buffer relevant
(the paper's query sets are normalized, so sorting by weight vector
works well).

RTA supports only linear utility functions — the reproduction keeps
that restriction, matching §6.1.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.results import IQResult
from repro.core.sharding import IndexProtocol
from repro.core.strategy import StrategySpace
from repro.errors import ValidationError

__all__ = ["ReverseTopK", "RTAEvaluator", "rta_min_cost_iq", "rta_max_hit_iq"]


class ReverseTopK:
    """Monochromatic reverse top-k over a fixed workload."""

    def __init__(self, dataset_matrix: np.ndarray, queries):
        dataset_matrix = np.asarray(dataset_matrix, dtype=float)
        if dataset_matrix.ndim != 2:
            raise ValidationError(f"dataset must be 2-D, got {dataset_matrix.shape}")
        self.matrix = dataset_matrix
        self.queries = queries
        # Sort the workload lexicographically by weights so neighbouring
        # queries have similar preferences (buffer reuse).
        self.order = np.lexsort(queries.weights.T[::-1])
        self.evaluated_queries = 0  #: full top-k evaluations performed
        self.pruned_queries = 0  #: queries skipped by the threshold test

    def count_hits(self, point: np.ndarray, exclude: int | None = None) -> int:
        """Number of workload queries whose top-k would contain ``point``.

        ``exclude`` removes one object id from the dataset (the target's
        original row) so the candidate replaces rather than duplicates
        it, matching Eq. 6 semantics.
        """
        point = np.asarray(point, dtype=float)
        matrix = self.matrix
        ids = np.arange(matrix.shape[0])
        if exclude is not None:
            keep = ids != exclude
            matrix = matrix[keep]
        hits = 0
        buffer: np.ndarray | None = None  # rows of the previous top-k
        for qi in self.order:
            weights, k = self.queries.query(int(qi))
            my_score = float(point @ weights)
            if buffer is not None and buffer.shape[0] >= k:
                buffered_scores = buffer @ weights
                if int(np.sum(buffered_scores < my_score)) >= k:
                    # Threshold test: k known objects already beat the
                    # candidate here; skip the full evaluation.
                    self.pruned_queries += 1
                    continue
            scores = matrix @ weights
            self.evaluated_queries += 1
            k_eff = min(k, scores.shape[0])
            top = np.argpartition(scores, k_eff - 1)[:k_eff]
            kth = float(np.max(scores[top]))
            buffer = matrix[top]
            if my_score < kth or scores.shape[0] < k:
                hits += 1
        return hits


class RTAEvaluator(StrategyEvaluator):
    """Drop-in :class:`StrategyEvaluator` whose hit counts come from RTA.

    Used by the RTA-IQ scheme: the greedy search (and therefore the
    strategies found) is identical to Efficient-IQ — only the
    per-candidate evaluation engine differs, which is exactly the
    comparison the paper's Figures 7-12 make.
    """

    def __init__(self, index: IndexProtocol):
        super().__init__(index)
        self.rta = ReverseTopK(index.dataset.matrix, index.queries)

    def _refresh(self) -> None:
        # The ReverseTopK snapshot holds the dataset matrix and workload
        # as of its construction; a moved index epoch means either may
        # have been replaced, so rebuild against the current state.
        self.rta = ReverseTopK(self.index.dataset.matrix, self.index.queries)

    def hits(self, target: int, position: np.ndarray | None = None) -> int:
        self._sync()
        if position is None:
            position = self.index.dataset.matrix[target]
        self.full_evaluations += 1
        return self.rta.count_hits(np.asarray(position, dtype=float), exclude=target)

    def evaluate_many(self, target: int, positions: np.ndarray) -> np.ndarray:
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        out = np.empty(positions.shape[0], dtype=np.intp)
        for i, position in enumerate(positions):
            out[i] = self.hits(target, position)
        return out

    # hits_mask (used for the unhit set and the applied-state refresh)
    # falls back to the exact threshold path of the parent class — RTA
    # only accelerates the *count*, membership listing still needs the
    # per-query test.  This mirrors the paper's setup where RTA-IQ and
    # Efficient-IQ share the searching code.


def rta_min_cost_iq(
    index: IndexProtocol,
    target: int,
    tau: int,
    cost: CostFunction,
    space: StrategySpace | None = None,
    **kwargs,
) -> IQResult:
    """Min-Cost IQ with RTA-based candidate evaluation (§6.1 RTA-IQ)."""
    from repro.core.solvers import get_solver

    return get_solver("rta").min_cost(
        RTAEvaluator(index), target, tau, cost, space, **kwargs
    )


def rta_max_hit_iq(
    index: IndexProtocol,
    target: int,
    budget: float,
    cost: CostFunction,
    space: StrategySpace | None = None,
    **kwargs,
) -> IQResult:
    """Max-Hit IQ with RTA-based candidate evaluation (§6.1 RTA-IQ)."""
    from repro.core.solvers import get_solver

    return get_solver("rta").max_hit(
        RTAEvaluator(index), target, budget, cost, space, **kwargs
    )
