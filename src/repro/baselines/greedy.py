"""The "Greedy" baseline scheme (paper §6.1).

Always hit the query that is cheapest to hit next, ignoring how many
other queries the move would bring along — i.e. Algorithm 3/4 with the
cost-per-hit ratio replaced by raw candidate cost.  Cheap to run, but
the found strategies waste budget compared with Efficient-IQ because a
slightly dearer candidate often drags several extra queries into the
hit set for free.
"""

from __future__ import annotations

import numpy as np

from repro.constants import EPS_FEASIBILITY
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.results import IQResult, IterationRecord
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import InfeasibleError, ValidationError
from repro.optimize.hit_cost import DEFAULT_MARGIN, min_cost_to_hit

__all__ = ["greedy_min_cost_iq", "greedy_max_hit_iq"]


def _cheapest_candidate(evaluator, target, position, mask, cost, space, margin):
    """The unhit query with the smallest single-hit cost, or ``None``."""
    weights = evaluator.index.queries.weights
    __, theta = evaluator.thresholds(target)
    best = None
    for j in np.flatnonzero(~mask):
        gap = float(theta[j] - weights[j] @ position)
        try:
            candidate = min_cost_to_hit(cost, weights[j], gap, space=space, margin=margin)
        except InfeasibleError:
            continue
        if best is None or candidate.cost < best[1].cost:
            best = (int(j), candidate)
    return best


def greedy_min_cost_iq(
    evaluator: StrategyEvaluator,
    target: int,
    tau: int,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
    max_iterations: int | None = None,
) -> IQResult:
    """Hit the cheapest query, repeat until ``tau`` queries are hit."""
    index = evaluator.index
    if not 1 <= tau <= index.queries.m:
        raise ValidationError(f"tau must be in [1, {index.queries.m}], got {tau}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    max_iterations = max_iterations if max_iterations is not None else 2 * tau + 16

    base = index.dataset.matrix[target].copy()
    applied = np.zeros(index.dataset.dim)
    spent = 0.0
    mask = evaluator.hits_mask(target)
    hits_before = int(mask.sum())
    records: list[IterationRecord] = []
    stalls = 0

    while int(mask.sum()) < tau and len(records) < max_iterations:
        best = _cheapest_candidate(
            evaluator, target, base + applied, mask, cost, space.shifted(applied), margin
        )
        if best is None:
            break
        j, candidate = best
        before = int(mask.sum())
        applied = applied + candidate.vector
        spent += candidate.cost
        mask = evaluator.hits_mask(target, base + applied)
        records.append(
            IterationRecord(
                query_id=j, cost=candidate.cost, hits_after=int(mask.sum()), candidates=1
            )
        )
        stalls = stalls + 1 if int(mask.sum()) <= before else 0
        if stalls >= 2:
            break

    hits_after = int(mask.sum())
    return IQResult(
        target=target,
        strategy=Strategy(applied, cost=spent),
        hits_before=hits_before,
        hits_after=hits_after,
        total_cost=spent,
        satisfied=hits_after >= tau,
        iterations=records,
    )


def greedy_max_hit_iq(
    evaluator: StrategyEvaluator,
    target: int,
    budget: float,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
    max_iterations: int | None = None,
) -> IQResult:
    """Hit cheapest queries until the budget is exhausted."""
    index = evaluator.index
    if budget < 0:
        raise ValidationError(f"budget must be non-negative, got {budget}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    max_iterations = max_iterations if max_iterations is not None else 2 * index.queries.m + 16

    base = index.dataset.matrix[target].copy()
    applied = np.zeros(index.dataset.dim)
    spent = 0.0
    mask = evaluator.hits_mask(target)
    hits_before = int(mask.sum())
    records: list[IterationRecord] = []
    stalls = 0

    while spent < budget and len(records) < max_iterations:
        best = _cheapest_candidate(
            evaluator, target, base + applied, mask, cost, space.shifted(applied), margin
        )
        if best is None or spent + best[1].cost > budget:
            break
        j, candidate = best
        before = int(mask.sum())
        applied = applied + candidate.vector
        spent += candidate.cost
        mask = evaluator.hits_mask(target, base + applied)
        records.append(
            IterationRecord(
                query_id=j, cost=candidate.cost, hits_after=int(mask.sum()), candidates=1
            )
        )
        stalls = stalls + 1 if int(mask.sum()) <= before else 0
        if stalls >= 2:
            break

    hits_after = int(mask.sum())
    return IQResult(
        target=target,
        strategy=Strategy(applied, cost=spent),
        hits_before=hits_before,
        hits_after=hits_after,
        total_cost=spent,
        satisfied=spent <= budget + EPS_FEASIBILITY,
        iterations=records,
    )
