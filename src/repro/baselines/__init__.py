"""Baseline IQ-processing schemes from the paper's evaluation (§6.1)."""

from repro.baselines.greedy import greedy_max_hit_iq, greedy_min_cost_iq
from repro.baselines.random_search import random_max_hit_iq, random_min_cost_iq
from repro.baselines.rta import (
    ReverseTopK,
    RTAEvaluator,
    rta_max_hit_iq,
    rta_min_cost_iq,
)

__all__ = [
    "ReverseTopK",
    "RTAEvaluator",
    "rta_min_cost_iq",
    "rta_max_hit_iq",
    "greedy_min_cost_iq",
    "greedy_max_hit_iq",
    "random_min_cost_iq",
    "random_max_hit_iq",
]
