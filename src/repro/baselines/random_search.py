"""The "Random" baseline scheme (paper §6.1).

Randomly generates improvement strategies until one satisfies the goal
(hits at least ``tau`` queries for Min-Cost; costs at most ``beta`` for
Max-Hit) and returns it.  Fast but with the worst strategy quality —
the reference floor in Figures 7-12.

Sampling: directions are uniform on the sphere; magnitudes are swept
over a geometric ladder so that both tiny and sweeping adjustments get
tried.  All samples respect the strategy box (rejection by clipping).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.results import IQResult, IterationRecord
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError

__all__ = ["random_min_cost_iq", "random_max_hit_iq"]

_DEFAULT_ATTEMPTS = 512
_MAGNITUDES = (0.05, 0.2, 0.5, 1.0, 2.0, 5.0)


def _sample(rng, dim, space) -> np.ndarray:
    direction = rng.normal(size=dim)
    norm = float(np.linalg.norm(direction))
    if norm == 0:
        return np.zeros(dim)
    direction /= norm
    magnitude = float(rng.choice(_MAGNITUDES)) * float(rng.random() + 0.5)
    return space.clip(direction * magnitude)


def random_min_cost_iq(
    evaluator: StrategyEvaluator,
    target: int,
    tau: int,
    cost: CostFunction,
    space: StrategySpace | None = None,
    attempts: int = _DEFAULT_ATTEMPTS,
    seed: int | None = 0,
) -> IQResult:
    """First random strategy achieving ``H >= tau`` (best found otherwise)."""
    index = evaluator.index
    if not 1 <= tau <= index.queries.m:
        raise ValidationError(f"tau must be in [1, {index.queries.m}], got {tau}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    rng = np.random.default_rng(seed)
    hits_before = evaluator.hits(target)

    best_vector = np.zeros(index.dataset.dim)
    best_hits = hits_before
    best_cost = 0.0
    used = 0
    for used in range(1, attempts + 1):
        vector = _sample(rng, index.dataset.dim, space)
        hits = evaluator.evaluate(target, vector)
        value = cost(vector)
        if hits >= tau:
            best_vector, best_hits, best_cost = vector, hits, value
            break
        if hits > best_hits or (hits == best_hits and value < best_cost):
            best_vector, best_hits, best_cost = vector, hits, value

    return IQResult(
        target=target,
        strategy=Strategy(best_vector, cost=best_cost),
        hits_before=hits_before,
        hits_after=best_hits,
        total_cost=best_cost,
        satisfied=best_hits >= tau,
        iterations=[
            IterationRecord(query_id=-1, cost=best_cost, hits_after=best_hits, candidates=used)
        ],
        evaluations=used,
    )


def random_max_hit_iq(
    evaluator: StrategyEvaluator,
    target: int,
    budget: float,
    cost: CostFunction,
    space: StrategySpace | None = None,
    attempts: int = _DEFAULT_ATTEMPTS,
    seed: int | None = 0,
) -> IQResult:
    """First random strategy whose cost fits the budget (paper-literal).

    §6.1: the Random scheme "randomly generates improvement strategies
    until it finds an improvement strategy that satisfies the
    improvement goal (... total cost less than the budget), and returns
    it" — no quality criterion beyond fitting the budget, which is why
    its strategies are the worst in Figures 7-12.  The improved object
    is kept only if it does not *lose* hits (a free sanity floor: the
    zero strategy always fits).
    """
    index = evaluator.index
    if budget < 0:
        raise ValidationError(f"budget must be non-negative, got {budget}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    rng = np.random.default_rng(seed)
    hits_before = evaluator.hits(target)

    vector = np.zeros(index.dataset.dim)
    value = 0.0
    hits = hits_before
    used = 0
    for used in range(1, attempts + 1):
        candidate = _sample(rng, index.dataset.dim, space)
        candidate_cost = cost(candidate)
        if candidate_cost > budget:
            continue  # outside the budget: not a valid answer
        candidate_hits = evaluator.evaluate(target, candidate)
        if candidate_hits >= hits_before:
            vector, value, hits = candidate, candidate_cost, candidate_hits
            break

    return IQResult(
        target=target,
        strategy=Strategy(vector, cost=value),
        hits_before=hits_before,
        hits_after=hits,
        total_cost=value,
        satisfied=True,
        iterations=[
            IterationRecord(query_id=-1, cost=value, hits_after=hits, candidates=used)
        ],
        evaluations=used,
    )
