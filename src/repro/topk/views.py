"""View-based top-k processing (PREFER-style, paper §2 related work).

PREFER [Hristidis et al., SIGMOD'01] materializes the object ranking
under a handful of *view* preference vectors; an incoming query is
answered by scanning the best-matching view's ranking in order and
stopping once a watermark guarantees the query's true top-k has been
seen.  This module implements the technique for non-negative linear
scores under the library's min-convention.

Watermark.  For non-negative attribute values, any query ``q`` and view
``v`` with positive weights satisfy::

    f_q(p) = sum_j q_j p_j >= (min_j q_j / v_j) * f_v(p)

so once ``f_v(p) * min_ratio`` exceeds the current k-th best query
score, no later object in the view order can enter the top-k — a sound
early-termination bound (the scan degrades to a full pass when a query
weight is zero on a dimension the view weights, making ``min_ratio``
zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["ViewIndex", "ViewAnswer"]


@dataclass
class ViewAnswer:
    """A view-answered top-k with its scan statistics."""

    ids: list[int]  #: top-k object ids, best first (ties by id)
    view: int  #: which materialized view served the query
    scanned: int  #: objects read from the view ranking


class ViewIndex:
    """Materialized-view top-k index over non-negative data.

    Parameters
    ----------
    objects:
        ``(n, d)`` matrix with non-negative entries (min-convention:
        lower score wins).
    views:
        ``(v, d)`` strictly positive view preference vectors.  Defaults
        to the uniform view plus one axis-leaning view per dimension.
    """

    def __init__(self, objects: np.ndarray, views: np.ndarray | None = None) -> None:
        objects = np.asarray(objects, dtype=float)
        if objects.ndim != 2 or objects.shape[0] == 0:
            raise ValidationError(f"objects must be non-empty 2-D, got {objects.shape}")
        if objects.min(initial=0.0) < 0:
            raise ValidationError("view-based processing requires non-negative values")
        self.objects = objects
        d = objects.shape[1]
        if views is None:
            views = [np.ones(d)]
            for j in range(d):
                lean = np.full(d, 0.25)
                lean[j] = 1.0
                views.append(lean)
            views = np.vstack(views)
        views = np.atleast_2d(np.asarray(views, dtype=float))
        if views.shape[1] != d:
            raise ValidationError(f"views must be (v, {d}), got {views.shape}")
        if views.min(initial=1.0) <= 0:
            raise ValidationError("view weights must be strictly positive")
        self.views = views
        # Materialize: object ids ordered ascending by each view score.
        self.rankings = [
            np.argsort(objects @ view, kind="stable") for view in views
        ]

    # ------------------------------------------------------------------
    def best_view(self, weights: np.ndarray) -> int:
        """The view maximizing the watermark ratio ``min_j q_j / v_j``.

        A larger ratio means a tighter bound and an earlier stop.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.views.shape[1],):
            raise ValidationError(
                f"weights shape {weights.shape} != ({self.views.shape[1]},)"
            )
        ratios = (weights[None, :] / self.views).min(axis=1)
        return int(np.argmax(ratios))

    def top_k(self, weights: np.ndarray, k: int) -> ViewAnswer:
        """Exact top-k (ties by id) by scanning one materialized view."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.objects.shape[1],):
            raise ValidationError(
                f"weights shape {weights.shape} != ({self.objects.shape[1]},)"
            )
        if np.any(weights < 0):
            raise ValidationError("view-based processing requires non-negative weights")
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        n = self.objects.shape[0]
        k = min(k, n)
        view_id = self.best_view(weights)
        order = self.rankings[view_id]
        view_scores = self.objects @ self.views[view_id]
        min_ratio = float((weights / self.views[view_id]).min())

        best: list[tuple[float, int]] = []  # (query score, id), size <= k
        scanned = 0
        for obj in order:
            obj = int(obj)
            scanned += 1
            score = float(self.objects[obj] @ weights)
            best.append((score, obj))
            best.sort()
            del best[k:]
            if len(best) == k and min_ratio > 0:
                # Watermark: everything later in the view order has
                # f_v >= this object's, hence f_q >= min_ratio * f_v.
                if min_ratio * float(view_scores[obj]) > best[-1][0]:
                    break
        return ViewAnswer(
            ids=[obj for __, obj in best], view=view_id, scanned=scanned
        )

    def memory_estimate(self) -> int:
        """Bytes spent on the materialized rankings."""
        return sum(r.size * 8 for r in self.rankings) + self.views.size * 8
