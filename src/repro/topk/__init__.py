"""Top-k evaluation substrates: direct, heap, Fagin's TA, views, onion."""

from repro.topk.evaluate import (
    kth_score,
    rank_of,
    ranking_prefix,
    scores,
    top_k,
    top_k_heap,
)
from repro.topk.onion import OnionIndex, convex_hull_2d
from repro.topk.threshold import SortedListsIndex, TAResult
from repro.topk.views import ViewAnswer, ViewIndex

__all__ = [
    "scores",
    "top_k",
    "top_k_heap",
    "ranking_prefix",
    "rank_of",
    "kth_score",
    "SortedListsIndex",
    "TAResult",
    "ViewIndex",
    "ViewAnswer",
    "OnionIndex",
    "convex_hull_2d",
]
