"""Direct top-k evaluation over linear scores.

The reference evaluator every other component is tested against.
Ranking convention (paper §3.2): each object ``p`` is the linear
function ``f_p(q) = q . p`` and a top-k query returns the ``k`` objects
with the **lowest** scores.  Ties are broken by object id, which makes
every ranking in the library deterministic.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ValidationError

__all__ = ["scores", "top_k", "rank_of", "ranking_prefix", "kth_score", "top_k_heap"]


def scores(objects: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Score vector ``objects @ weights`` with shape checks."""
    objects = np.asarray(objects, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if objects.ndim != 2:
        raise ValidationError(f"objects must be 2-D, got shape {objects.shape}")
    if weights.shape != (objects.shape[1],):
        raise ValidationError(f"weights shape {weights.shape} != ({objects.shape[1]},)")
    return objects @ weights


def top_k(objects: np.ndarray, weights: np.ndarray, k: int) -> list[int]:
    """Ids of the ``k`` lowest-scoring objects, ties by id (full sort)."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    vals = scores(objects, weights)
    k = min(k, vals.shape[0])
    # argsort is stable, so equal scores keep ascending-id order.
    order = np.argsort(vals, kind="stable")
    return [int(i) for i in order[:k]]


#: Below this many objects the heap's Python loop beats argpartition's
#: fixed numpy overhead.
_PARTITION_CUTOVER = 64


def top_k_heap(objects: np.ndarray, weights: np.ndarray, k: int) -> list[int]:
    """Selection-based top-k: ``O(n + k log k)``, same result as :func:`top_k`.

    Large inputs go through :func:`numpy.argpartition`; the tie-break by
    id is restored exactly by over-selecting every score equal to the
    k-th value and keeping the lowest ids among them.  Small inputs keep
    the original ``heapq.nsmallest`` path.
    """
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    vals = scores(objects, weights)
    n = vals.shape[0]
    if k >= n:
        return top_k(objects, weights, k)
    if n < _PARTITION_CUTOVER:
        # heapq.nsmallest on (score, id) pairs realizes the tie-break.
        return [int(i) for __, i in heapq.nsmallest(k, ((float(v), i) for i, v in enumerate(vals)))]
    part = np.argpartition(vals, k - 1)[:k]
    cutoff = vals[part].max()
    strict = np.flatnonzero(vals < cutoff)
    # Every score equal to the cutoff competes on id for the last slots.
    tied = np.flatnonzero(vals == cutoff)[: k - strict.size]
    chosen = np.concatenate([strict, tied])
    order = np.lexsort((chosen, vals[chosen]))
    return [int(i) for i in chosen[order]]


def ranking_prefix(objects: np.ndarray, weights: np.ndarray, depth: int) -> list[int]:
    """The first ``depth`` ids of the full ranking (= ``top_k`` with k=depth)."""
    return top_k(objects, weights, depth)


def rank_of(objects: np.ndarray, weights: np.ndarray, object_id: int) -> int:
    """1-based rank of ``object_id`` under the query (ties by id)."""
    vals = scores(objects, weights)
    if not 0 <= object_id < vals.shape[0]:
        raise ValidationError(f"object id {object_id} out of range")
    mine = vals[object_id]
    better = int(np.sum(vals < mine)) + int(np.sum((vals == mine)[:object_id]))
    return better + 1


def kth_score(
    objects: np.ndarray, weights: np.ndarray, k: int, exclude: int | None = None
) -> tuple[float, int]:
    """Score and id of the k-th ranked object, optionally excluding one.

    This is ``f_{q,k}`` of Eq. 6: the threshold an improved target must
    beat to enter the top-k.  With ``exclude`` set to the target's id the
    threshold refers to the k-th best *other* object, which is the exact
    membership condition for the improved target.

    Returns ``(score, object_id)``; when fewer than ``k`` objects remain
    the score is ``+inf`` and the id ``-1`` (any finite score enters).
    """
    objects = np.asarray(objects, dtype=float)
    vals = scores(objects, weights)
    ids = np.arange(vals.shape[0])
    if exclude is not None:
        mask = ids != exclude
        vals, ids = vals[mask], ids[mask]
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    if vals.shape[0] < k:
        return float("inf"), -1
    order = np.argsort(vals, kind="stable")
    pick = order[k - 1]
    return float(vals[pick]), int(ids[pick])
