"""Fagin's Threshold Algorithm (TA) for linear top-k.

A classic substrate: per-attribute sorted lists are scanned in parallel;
random access computes full scores; the scan stops once the *threshold*
(the score of a hypothetical object built from the current list
frontiers) can no longer beat the k-th best seen.  The reverse top-k RTA
baseline (:mod:`repro.baselines.rta`) is named after this family, and we
use TA here both as an alternative top-k engine and to report how many
sequential accesses a query needed.

Convention: lower ``q . p`` wins, weights non-negative, so each sorted
list is ascending by attribute value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["SortedListsIndex", "TAResult"]


@dataclass
class TAResult:
    """Outcome of a TA run."""

    ids: list[int]  #: the top-k object ids, best first (ties by id)
    sequential_accesses: int  #: rows consumed across all sorted lists
    random_accesses: int  #: full score computations performed


class SortedListsIndex:
    """Per-attribute ascending sorted lists supporting TA top-k."""

    def __init__(self, objects: np.ndarray) -> None:
        objects = np.asarray(objects, dtype=float)
        if objects.ndim != 2 or objects.shape[0] == 0:
            raise ValidationError(f"objects must be a non-empty 2-D array, got {objects.shape}")
        self.objects = objects
        # lists[j] = object ids ascending by attribute j
        self.lists = [np.argsort(objects[:, j], kind="stable") for j in range(objects.shape[1])]

    def top_k(self, weights: np.ndarray, k: int) -> TAResult:
        """TA with the early-termination threshold test."""
        weights = np.asarray(weights, dtype=float)
        n, d = self.objects.shape
        if weights.shape != (d,):
            raise ValidationError(f"weights shape {weights.shape} != ({d},)")
        if np.any(weights < 0):
            raise ValidationError("TA requires non-negative weights")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        k = min(k, n)

        seen: set[int] = set()
        best: list[tuple[float, int]] = []  # (score, id), kept sorted, size <= k
        sequential = 0
        random = 0
        # Attributes with zero weight contribute nothing to scores or the
        # threshold; skipping them is the standard optimization.
        active = [j for j in range(d) if weights[j] > 0]
        if not active:
            ids = list(range(k))  # all scores 0; tie-break by id
            return TAResult(ids=ids, sequential_accesses=0, random_accesses=0)

        for depth in range(n):
            frontier = 0.0
            for j in active:
                obj = int(self.lists[j][depth])
                sequential += 1
                frontier += weights[j] * self.objects[obj, j]
                if obj not in seen:
                    seen.add(obj)
                    random += 1
                    score = float(self.objects[obj] @ weights)
                    best.append((score, obj))
                    best.sort()
                    del best[k:]
            if len(best) == k and best[-1][0] <= frontier:
                # No unseen object can beat the current k-th: the
                # threshold is a lower bound on every unseen score.
                break
        ids = [obj for __, obj in sorted(best)]
        return TAResult(ids=ids, sequential_accesses=sequential, random_accesses=random)
