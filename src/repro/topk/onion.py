"""The Onion technique: convex-hull layers for linear top-k (§2, [6]).

Chang et al.'s layer-based index: peel the dataset into convex-hull
layers; for any *linear* utility, the best object lies on the outermost
hull, and more generally the i-th ranked object lies within the first
``i`` layers.  A top-k query therefore only evaluates the objects of
the first ``k`` layers.

This implementation covers the 2-D case with Andrew's monotone-chain
hull (the substrate the paper's related-work comparison needs); higher
dimensions fall back to a single layer containing everything, which is
correct (just not selective) and keeps the API total.

Unlike the dominance-based structures, hull layers support arbitrary
weight signs — minimization over a polytope attains its optimum at a
vertex regardless of the objective's direction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.topk.evaluate import top_k as brute_top_k

__all__ = ["convex_hull_2d", "OnionIndex"]


def convex_hull_2d(points: np.ndarray) -> np.ndarray:
    """Indices of the convex hull of 2-D points (monotone chain).

    Returns hull vertex indices in counter-clockwise order; collinear
    boundary points are *included* (they can win ties under some
    utility, so layer peeling must not bury them).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValidationError(f"points must be (n, 2), got {points.shape}")
    n = points.shape[0]
    if n <= 2:
        return np.arange(n, dtype=np.intp)
    order = np.lexsort((points[:, 1], points[:, 0]))

    def cross(o: int, a: int, b: int) -> float:
        return (points[a, 0] - points[o, 0]) * (points[b, 1] - points[o, 1]) - (
            points[a, 1] - points[o, 1]
        ) * (points[b, 0] - points[o, 0])

    def chain(indices: np.ndarray) -> list[int]:
        out: list[int] = []
        for idx in indices:
            # Keep collinear points: pop only on strict right turns.
            while len(out) >= 2 and cross(out[-2], out[-1], idx) < 0:
                out.pop()
            out.append(int(idx))
        return out

    lower = chain(order)
    upper = chain(order[::-1])
    hull = lower[:-1] + upper[:-1]
    if not hull:  # all points identical
        hull = [int(order[0])]
    return np.asarray(sorted(set(hull)), dtype=np.intp)


class OnionIndex:
    """Convex-hull layer index answering linear top-k queries."""

    def __init__(self, objects: np.ndarray) -> None:
        objects = np.asarray(objects, dtype=float)
        if objects.ndim != 2 or objects.shape[0] == 0:
            raise ValidationError(f"objects must be non-empty 2-D, got {objects.shape}")
        self.objects = objects
        self.layers: list[np.ndarray] = []
        if objects.shape[1] == 2:
            remaining = np.arange(objects.shape[0], dtype=np.intp)
            while remaining.size:
                local = convex_hull_2d(objects[remaining])
                self.layers.append(remaining[local])
                mask = np.ones(remaining.size, dtype=bool)
                mask[local] = False
                remaining = remaining[mask]
        else:
            # Higher dimensions: one all-encompassing layer (correct,
            # unselective); a d-dimensional hull is out of scope.
            self.layers.append(np.arange(objects.shape[0], dtype=np.intp))

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def candidates(self, k: int) -> np.ndarray:
        """Objects of the first ``k`` layers (the top-k candidate set)."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        chosen = self.layers[: min(k, len(self.layers))]
        return np.sort(np.concatenate(chosen))

    def top_k(self, weights: np.ndarray, k: int) -> list[int]:
        """Exact linear top-k (ties by id); weights may have any sign."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.objects.shape[1],):
            raise ValidationError(
                f"weights shape {weights.shape} != ({self.objects.shape[1]},)"
            )
        candidate_ids = self.candidates(k)
        local = brute_top_k(self.objects[candidate_ids], weights, min(k, candidate_ids.size))
        return [int(candidate_ids[i]) for i in local]

    def validate(self) -> None:
        """Layers partition the objects; each layer is hull of the rest."""
        seen = np.zeros(self.objects.shape[0], dtype=int)
        for layer in self.layers:
            seen[layer] += 1
        if not np.all(seen == 1):
            raise ValidationError("onion layers do not partition the object set")
