"""Signature-based bookkeeping for hyperplane arrangements.

Algorithm 1 of the paper partitions the indexed query points with one
intersection hyperplane at a time (binary space partitioning).  The
partition it produces is fully determined by the *sign vector* of every
query point over the hyperplane set: two points share a (non-empty)
subdomain iff they lie on the same side of every hyperplane.  This
module provides the vectorized signature machinery that both the literal
Algorithm 1 implementation and the fast path in
:mod:`repro.core.subdomain` are built on, plus standalone helpers for
counting/validating arrangement cells.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geometry.hyperplane import EPS
from repro.native import kernel as _kernel

__all__ = [
    "signature_matrix",
    "group_by_signature",
    "cells_touched",
    "max_cells_bound",
]


def signature_matrix(points: np.ndarray, normals: np.ndarray, tol: float = EPS) -> np.ndarray:
    """Side of every point w.r.t. every hyperplane.

    Parameters
    ----------
    points:
        ``(m, d)`` query points.
    normals:
        ``(h, d)`` hyperplane normals.

    Returns
    -------
    ``(m, h)`` ``int8`` matrix with entries ``+1`` (*above*:
    ``q . n <= 0``) or ``-1`` (*below*), matching the paper's convention
    that boundary points count as above.

    The float64 offset products are computed here once and the int8
    classification dispatches through the ``signature_matrix`` kernel
    (:mod:`repro.native`), so the python and native backends classify
    identical inputs — which is what keeps them bit-exact.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    normals = np.atleast_2d(np.asarray(normals, dtype=float))
    if normals.size == 0:
        return np.empty((points.shape[0], 0), dtype=np.int8)
    if points.shape[1] != normals.shape[1]:
        raise ValidationError(
            f"dimension mismatch: points are {points.shape[1]}-D, normals {normals.shape[1]}-D"
        )
    values = points @ normals.T
    return _kernel("signature_matrix")(values, tol)


def group_by_signature(signatures: np.ndarray) -> dict[bytes, np.ndarray]:
    """Group row indices by identical signature rows.

    Returns a dict mapping the signature's byte representation to the
    sorted array of row indices sharing it.  The byte key is stable and
    hashable, which is what the subdomain index stores.

    Grouping is a single ``np.unique`` over the rows plus a stable
    argsort of the inverse mapping, so the cost is ``O(m h + m log m)``
    vectorized work rather than a Python loop over every query point.
    """
    signatures = np.atleast_2d(np.asarray(signatures, dtype=np.int8))
    m, h = signatures.shape
    if m == 0:
        return {}
    if h == 0:
        # Zero hyperplanes: every point shares the one (empty) signature.
        return {b"": np.arange(m, dtype=np.intp)}
    uniq, inverse = np.unique(signatures, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy 2.x returns (m, 1) for axis=0
    order = np.argsort(inverse, kind="stable")  # members stay ascending
    starts = np.searchsorted(inverse[order], np.arange(uniq.shape[0]))
    bounds = np.append(starts, m)
    members = order.astype(np.intp, copy=False)
    return {
        uniq[g].tobytes(): members[bounds[g] : bounds[g + 1]]
        for g in range(uniq.shape[0])
    }


def cells_touched(points: np.ndarray, normals: np.ndarray) -> int:
    """Number of distinct arrangement cells containing at least one point."""
    return len(group_by_signature(signature_matrix(points, normals)))


def max_cells_bound(num_hyperplanes: int, dim: int) -> int:
    """Upper bound on the number of cells of a hyperplane arrangement.

    The classical bound (cited by the paper via Schlaefli) for ``h``
    hyperplanes in general position in ``R^d``:
    ``C(h,0) + C(h,1) + ... + C(h,d)``.  Our hyperplanes all pass
    through the origin, so within the positive orthant the true count is
    lower; this bound is used for sanity checks and capacity planning
    only.
    """
    if num_hyperplanes < 0 or dim < 0:
        raise ValidationError("counts must be non-negative")
    total = 0
    term = 1
    for i in range(min(dim, num_hyperplanes) + 1):
        total += term
        term = term * (num_hyperplanes - i) // (i + 1)
    return total
