"""Computational-geometry substrates used by the improvement-query index."""

from repro.geometry.arrangement import (
    cells_touched,
    group_by_signature,
    max_cells_bound,
    signature_matrix,
)
from repro.geometry.halfspace import HalfspaceRegion, chebyshev_center, region_is_empty
from repro.geometry.hyperplane import Hyperplane, pairwise_normals, side_of, sides_of
from repro.geometry.plane_sweep import (
    Segment,
    brute_force_intersections,
    find_intersections,
    segment_intersection,
)

__all__ = [
    "Hyperplane",
    "pairwise_normals",
    "side_of",
    "sides_of",
    "HalfspaceRegion",
    "chebyshev_center",
    "region_is_empty",
    "signature_matrix",
    "group_by_signature",
    "cells_touched",
    "max_cells_bound",
    "Segment",
    "find_intersections",
    "brute_force_intersections",
    "segment_intersection",
]
