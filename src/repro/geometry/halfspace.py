"""Halfspace systems over the query domain.

A subdomain (paper §3.2) is an intersection of halfspaces of the form
``q . normal <= 0`` (above) or ``q . normal > 0`` (below), clipped to the
query-domain box (weights normalized to ``[0, 1]^d``).  This module
answers the geometric questions the index needs:

* is a halfspace system empty inside the domain box?
* find a witness (interior point) of a non-empty system;
* does a hyperplane actually cut through a region (needed to decide
  whether a subdomain must be split in Algorithm 1)?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import EPS, STRICT_MARGIN
from repro.errors import InfeasibleError, UnboundedError, ValidationError
from repro.geometry.hyperplane import Hyperplane
from repro.optimize.simplex import linprog

__all__ = ["HalfspaceRegion", "region_is_empty", "chebyshev_center", "STRICT_MARGIN"]


@dataclass
class HalfspaceRegion:
    """A conjunction of closed/open halfspaces inside a domain box.

    Each constraint is ``(normal, side)`` with ``side=+1`` meaning
    ``q . normal <= 0`` (*above* the hyperplane, paper convention) and
    ``side=-1`` meaning ``q . normal > 0`` (*below*).
    """

    dim: int
    lower: np.ndarray = field(default=None)
    upper: np.ndarray = field(default=None)
    constraints: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValidationError(f"dimension must be positive, got {self.dim}")
        self.lower = np.zeros(self.dim) if self.lower is None else np.asarray(self.lower, float)
        self.upper = np.ones(self.dim) if self.upper is None else np.asarray(self.upper, float)
        if self.lower.shape != (self.dim,) or self.upper.shape != (self.dim,):
            raise ValidationError("domain box bounds must match the dimension")

    def copy(self) -> "HalfspaceRegion":
        """An independent copy (constraint list is duplicated)."""
        clone = HalfspaceRegion(self.dim, self.lower.copy(), self.upper.copy())
        clone.constraints = list(self.constraints)
        return clone

    def add(self, hyperplane: Hyperplane, side: int) -> "HalfspaceRegion":
        """Return a new region additionally constrained to ``side`` of ``hyperplane``."""
        if side not in (1, -1):
            raise ValidationError(f"side must be +1 or -1, got {side}")
        clone = self.copy()
        clone.constraints.append((hyperplane, side))
        return clone

    def contains(self, q: np.ndarray, tol: float = EPS) -> bool:
        """Membership test for a single point (box and all halfspaces).

        The default tolerance is the canonical :data:`repro.constants.EPS`
        used by ``signature_matrix`` and all other side tests, so a point
        classified into a subdomain by the partition signature is also
        ``contains``-positive for that subdomain's region.
        """
        q = np.asarray(q, dtype=float)
        if np.any(q < self.lower - tol) or np.any(q > self.upper + tol):
            return False
        for hyperplane, side in self.constraints:
            value = float(q @ hyperplane.normal)
            if side == 1 and value > tol:
                return False
            if side == -1 and value <= tol:
                return False
        return True

    def is_empty(self) -> bool:
        """LP feasibility: does any point of the box satisfy all halfspaces?"""
        return region_is_empty(self)

    def witness(self) -> np.ndarray | None:
        """An interior point of the region, or ``None`` when empty."""
        try:
            center, radius = chebyshev_center(self)
        except InfeasibleError:
            return None
        if radius < 0:
            return None
        return center


def _inequality_system(region: HalfspaceRegion) -> tuple[np.ndarray, np.ndarray]:
    """Stack the region's halfspaces as ``A q <= b`` rows (strict -> margin)."""
    rows, rhs = [], []
    for hyperplane, side in region.constraints:
        if side == 1:  # q . n <= 0
            rows.append(hyperplane.normal)
            rhs.append(0.0)
        else:  # q . n > 0  ->  -q . n <= -margin
            rows.append(-hyperplane.normal)
            rhs.append(-STRICT_MARGIN)
    if not rows:
        return np.empty((0, region.dim)), np.empty(0)
    return np.vstack(rows), np.asarray(rhs)


def region_is_empty(region: HalfspaceRegion) -> bool:
    """True iff the region contains no point of its domain box."""
    a, b = _inequality_system(region)
    bounds = list(zip(region.lower, region.upper))
    try:
        linprog(np.zeros(region.dim), a_ub=a, b_ub=b, bounds=bounds)
    except InfeasibleError:
        return True
    return False


def chebyshev_center(region: HalfspaceRegion) -> tuple[np.ndarray, float]:
    """Center and radius of the largest ball inscribed in the region.

    Solves ``max r`` s.t. ``a_i . q + ||a_i|| r <= b_i`` plus the box.
    Raises :class:`InfeasibleError` when the region is empty.  A radius
    of (near) zero means the region is a lower-dimensional sliver.
    """
    a, b = _inequality_system(region)
    d = region.dim
    rows = [np.concatenate([a[i], [float(np.linalg.norm(a[i]))]]) for i in range(a.shape[0])]
    rhs = list(b)
    for j in range(d):  # box faces: q_j <= upper, -q_j <= -lower
        upper_row = np.zeros(d + 1)
        upper_row[j], upper_row[d] = 1.0, 1.0
        rows.append(upper_row)
        rhs.append(region.upper[j])
        lower_row = np.zeros(d + 1)
        lower_row[j], lower_row[d] = -1.0, 1.0
        rows.append(lower_row)
        rhs.append(-region.lower[j])
    c = np.zeros(d + 1)
    c[d] = -1.0  # maximize r
    bounds = [(None, None)] * d + [(0.0, None)]
    try:
        result = linprog(c, a_ub=np.vstack(rows), b_ub=np.asarray(rhs), bounds=bounds)
    except UnboundedError:  # pragma: no cover - box always bounds r
        raise InfeasibleError("degenerate region (unbounded center problem)")
    return result.x[:d], float(result.x[d])
