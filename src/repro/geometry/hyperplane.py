"""Hyperplanes in the query-domain space.

The reproduction's central geometric object: the intersection of two
object functions ``f_a(q) = q . p_a`` and ``f_b(q) = q . p_b`` is the set
``{q : q . (p_a - p_b) = 0}`` — a homogeneous hyperplane through the
origin of the d-dimensional weight space (paper Eq. 2).  Applying an
improvement strategy ``s`` to ``p_a`` tilts it to
``{q : q . (p_a + s - p_b) = 0}`` (Eq. 3).

Side convention (paper §4.1): a query point ``q`` is *above* the
intersection of ``f_a`` and ``f_b`` iff ``f_a(q) - f_b(q) <= 0``, i.e.
``q . normal <= 0`` with ``normal = p_a - p_b``.  Points exactly on the
hyperplane count as above.  With the paper's "lower score is better"
ranking, *above* means ``p_a`` ranks at least as well as ``p_b`` at
``q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.constants import EPS
from repro.errors import ValidationError

__all__ = ["EPS", "Hyperplane", "side_of", "sides_of", "pairwise_normals"]


@dataclass(frozen=True)
class Hyperplane:
    """The homogeneous hyperplane ``{q : q . normal = 0}``.

    Stores the identities of the two objects whose function intersection
    it represents, so index maintenance (§4.3) can find all hyperplanes
    involving a given object.
    """

    normal: np.ndarray
    a: int = -1  #: id of the first object (f_a), -1 if anonymous
    b: int = -1  #: id of the second object (f_b), -1 if anonymous
    _key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        normal = np.asarray(self.normal, dtype=float)
        if normal.ndim != 1:
            raise ValidationError(f"hyperplane normal must be 1-D, got shape {normal.shape}")
        if not np.isfinite(normal).all():
            raise ValidationError("hyperplane normal contains non-finite values")
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "_key", (self.a, self.b, normal.tobytes()))

    @classmethod
    def between(cls, p_a: np.ndarray, p_b: np.ndarray, a: int = -1, b: int = -1) -> "Hyperplane":
        """Intersection hyperplane of the functions of objects ``p_a``, ``p_b``."""
        p_a = np.asarray(p_a, dtype=float)
        p_b = np.asarray(p_b, dtype=float)
        if p_a.shape != p_b.shape:
            raise ValidationError(f"object shapes differ: {p_a.shape} vs {p_b.shape}")
        return cls(p_a - p_b, a=a, b=b)

    @property
    def dim(self) -> int:
        return self.normal.shape[0]

    def involves(self, object_id: int) -> bool:
        """True if this hyperplane is an intersection involving ``object_id``."""
        return object_id in (self.a, self.b)

    def is_degenerate(self, tol: float = EPS) -> bool:
        """A zero normal: the two functions coincide and never separate."""
        return bool(np.abs(self.normal).max(initial=0.0) <= tol)

    def side(self, q: np.ndarray) -> int:
        """Side of a single query point: +1 above (f_a <= f_b), -1 below."""
        return side_of(self.normal, q)

    def sides(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`side` over an ``(m, d)`` array of points."""
        return sides_of(self.normal, points)

    def tilt(self, s: np.ndarray) -> "Hyperplane":
        """The hyperplane after applying strategy ``s`` to object ``a`` (Eq. 3)."""
        s = np.asarray(s, dtype=float)
        if s.shape != self.normal.shape:
            raise ValidationError(f"strategy shape {s.shape} != dim {self.normal.shape}")
        return Hyperplane(self.normal + s, a=self.a, b=self.b)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hyperplane):
            return NotImplemented
        return self._key == other._key


def side_of(normal: np.ndarray, q: np.ndarray, tol: float = EPS) -> int:
    """Side of point ``q`` w.r.t. the hyperplane with the given normal.

    Returns ``+1`` when ``q . normal <= tol`` (*above*: ``f_a`` ranks at
    least as well as ``f_b``) and ``-1`` otherwise (*below*).
    """
    value = float(np.dot(np.asarray(q, dtype=float), normal))
    return 1 if value <= tol else -1


def sides_of(normal: np.ndarray, points: np.ndarray, tol: float = EPS) -> np.ndarray:
    """Vectorized side test: ``(m, d)`` points -> ``(m,)`` array of +/-1."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    values = points @ normal
    return np.where(values <= tol, 1, -1)


def pairwise_normals(
    objects: np.ndarray, pairs: Iterable[tuple[int, int]] | None = None
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Normals of all pairwise intersection hyperplanes of ``objects``.

    Parameters
    ----------
    objects:
        ``(n, d)`` array of object attribute vectors.
    pairs:
        Optional iterable of ``(a, b)`` index pairs; defaults to all
        ``a < b`` pairs.

    Returns
    -------
    ``(P, pairs)`` where ``P`` is a ``(len(pairs), d)`` array with row
    ``p_a - p_b`` and ``pairs`` the corresponding index pairs.
    Degenerate (duplicate-object) pairs are skipped.
    """
    objects = np.asarray(objects, dtype=float)
    if objects.ndim != 2:
        raise ValidationError(f"objects must be a 2-D array, got shape {objects.shape}")
    n = objects.shape[0]
    if pairs is None:
        pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    else:
        pairs = list(pairs)
    kept_pairs: list[tuple[int, int]] = []
    rows = []
    for a, b in pairs:
        normal = objects[a] - objects[b]
        if np.abs(normal).max(initial=0.0) <= EPS:
            continue  # identical objects never switch rank
        rows.append(normal)
        kept_pairs.append((a, b))
    if not rows:
        return np.empty((0, objects.shape[1])), []
    return np.vstack(rows), kept_pairs
