"""Plane-sweep segment intersection (Bentley-Ottmann).

The paper (§4.1) points to plane-sweep algorithms [Nievergelt &
Preparata] for discovering function intersections.  For two-variable
utility domains, the restriction of the intersection hyperplanes to the
domain box is a set of line segments, and their crossings are exactly
the points where the subdomain structure changes incidence.  This module
implements the classical sweep, plus a quadratic brute-force reference
used by the tests and as a fallback for degenerate inputs.

The sweep assumes *general position* (no vertical segments, no three
segments through one point, distinct endpoints); ``find_intersections``
detects violations and transparently falls back to the brute-force
routine so callers always get a correct answer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.constants import EPS as _EPS, EPS_EVENT
from repro.errors import ValidationError

__all__ = ["Segment", "find_intersections", "brute_force_intersections", "segment_intersection"]


@dataclass(frozen=True)
class Segment:
    """A 2-D closed line segment, stored with its left endpoint first."""

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if (self.x1, self.y1) == (self.x2, self.y2):
            raise ValidationError("degenerate segment (both endpoints equal)")
        if (self.x2, self.y2) < (self.x1, self.y1):
            left = (self.x2, self.y2)
            right = (self.x1, self.y1)
            object.__setattr__(self, "x1", left[0])
            object.__setattr__(self, "y1", left[1])
            object.__setattr__(self, "x2", right[0])
            object.__setattr__(self, "y2", right[1])

    @classmethod
    def make(cls, p1: "Sequence[float]", p2: "Sequence[float]") -> "Segment":
        """Build a segment from two points, normalizing endpoint order."""
        a = (float(p1[0]), float(p1[1]))
        b = (float(p2[0]), float(p2[1]))
        if a == b:
            raise ValidationError("degenerate segment (both endpoints equal)")
        left, right = (a, b) if a <= b else (b, a)
        return cls(left[0], left[1], right[0], right[1])

    @property
    def left(self) -> tuple[float, float]:
        return (self.x1, self.y1)

    @property
    def right(self) -> tuple[float, float]:
        return (self.x2, self.y2)

    def is_vertical(self) -> bool:
        """True when both endpoints share an x coordinate."""
        return abs(self.x2 - self.x1) <= _EPS

    def y_at(self, x: float) -> float:
        """Height of the (non-vertical) segment's supporting line at ``x``."""
        if self.is_vertical():
            raise ValidationError("y_at is undefined for vertical segments")
        t = (x - self.x1) / (self.x2 - self.x1)
        return self.y1 + t * (self.y2 - self.y1)


def segment_intersection(
    s: Segment, t: Segment, tol: float = _EPS
) -> tuple[float, float] | None:
    """Proper intersection point of two segments, or ``None``.

    Returns the crossing point when the interiors (or an endpoint lying
    on the other segment) intersect in exactly one point; collinear
    overlaps return ``None`` (reported separately by callers that care).
    """
    d1x, d1y = s.x2 - s.x1, s.y2 - s.y1
    d2x, d2y = t.x2 - t.x1, t.y2 - t.y1
    denom = d1x * d2y - d1y * d2x
    if abs(denom) <= tol:
        return None  # parallel or collinear
    qpx, qpy = t.x1 - s.x1, t.y1 - s.y1
    u = (qpx * d2y - qpy * d2x) / denom
    v = (qpx * d1y - qpy * d1x) / denom
    if -tol <= u <= 1 + tol and -tol <= v <= 1 + tol:
        return (s.x1 + u * d1x, s.y1 + u * d1y)
    return None


def brute_force_intersections(
    segments: "Iterable[Segment]",
) -> list[tuple[float, float, int, int]]:
    """All pairwise proper intersections as ``(x, y, i, j)`` with ``i < j``."""
    segments = list(segments)
    out: list[tuple[float, float, int, int]] = []
    for i in range(len(segments)):
        for j in range(i + 1, len(segments)):
            point = segment_intersection(segments[i], segments[j])
            if point is not None:
                out.append((point[0], point[1], i, j))
    return out


# Event kinds, ordered so that at equal x we process LEFT endpoints
# before CROSS events before RIGHT endpoints.
_LEFT, _CROSS, _RIGHT = 0, 1, 2


def find_intersections(
    segments: "Iterable[Segment]",
) -> list[tuple[float, float, int, int]]:
    """Bentley-Ottmann sweep over ``segments``.

    Returns ``(x, y, i, j)`` tuples like
    :func:`brute_force_intersections` (same set, possibly different
    order).  Falls back to brute force when the input violates the
    general-position assumptions the sweep relies on.
    """
    segments = list(segments)
    if len(segments) < 2:
        return []
    if any(s.is_vertical() for s in segments):
        return brute_force_intersections(segments)
    endpoints = [s.left for s in segments] + [s.right for s in segments]
    if len(set(endpoints)) != len(endpoints):  # shared endpoints
        return brute_force_intersections(segments)
    try:
        return _sweep(segments)
    except _GeneralPositionViolation:
        return brute_force_intersections(segments)


class _GeneralPositionViolation(Exception):
    """Raised internally when the sweep detects a degeneracy."""


def _sweep(segments: list[Segment]) -> list[tuple[float, float, int, int]]:
    events: list[tuple[float, int, float, int, int]] = []
    for i, s in enumerate(segments):
        heapq.heappush(events, (s.x1, _LEFT, s.y1, i, -1))
        heapq.heappush(events, (s.x2, _RIGHT, s.y2, i, -1))

    status: list[int] = []  # segment ids ordered bottom-to-top at sweep x
    found: dict[tuple[int, int], tuple[float, float]] = {}

    def order_key(seg_id: int, x: float) -> float:
        return segments[seg_id].y_at(x)

    def check(lower_pos: int, x: float) -> None:
        """Schedule the crossing of status[lower_pos] and its upper neighbour."""
        if lower_pos < 0 or lower_pos + 1 >= len(status):
            return
        i, j = status[lower_pos], status[lower_pos + 1]
        pair = (min(i, j), max(i, j))
        if pair in found:
            return
        point = segment_intersection(segments[i], segments[j])
        if point is not None and point[0] > x - _EPS:
            found[pair] = point
            heapq.heappush(events, (point[0], _CROSS, point[1], pair[0], pair[1]))

    emitted: set[tuple[int, int]] = set()
    out: list[tuple[float, float, int, int]] = []
    while events:
        x, kind, y, i, j = heapq.heappop(events)
        if kind == _LEFT:
            key = order_key(i, x)
            pos = 0
            while pos < len(status):
                other = order_key(status[pos], x)
                if abs(other - key) <= EPS_EVENT:
                    raise _GeneralPositionViolation
                if other > key:
                    break
                pos += 1
            status.insert(pos, i)
            check(pos - 1, x)
            check(pos, x)
        elif kind == _RIGHT:
            try:
                pos = status.index(i)
            except ValueError:  # pragma: no cover - defensive
                raise _GeneralPositionViolation
            status.pop(pos)
            check(pos - 1, x)
        else:  # _CROSS
            pair = (i, j)
            if pair in emitted:
                continue
            emitted.add(pair)
            point = found[pair]
            out.append((point[0], point[1], i, j))
            try:
                pos_i, pos_j = status.index(i), status.index(j)
            except ValueError:  # pragma: no cover - defensive
                raise _GeneralPositionViolation
            if abs(pos_i - pos_j) != 1:
                raise _GeneralPositionViolation
            status[pos_i], status[pos_j] = status[pos_j], status[pos_i]
            lower = min(pos_i, pos_j)
            check(lower - 1, point[0] + _EPS)
            check(lower + 1, point[0] + _EPS)
    return out
