"""Command-line analytic tool (``python -m repro``).

The paper ships its techniques as "an analytic tool integrated with the
DBMS" driven by a GUI (Fig. 3): pick target objects, choose which
attributes may be adjusted and in what range, pick a cost function, and
run a Min-Cost or Max-Hit improvement query.  This module is that tool
as a CLI over CSV files.

Subcommands
-----------
``improve``   run an IQ against object/query CSVs::

    python -m repro improve objects.csv queries.csv --target 3 \\
        --reach 25 --cost L2 --sense max --adjust "price:-80:0" \\
        --freeze storage

``explain``   print the :class:`~repro.core.plan.ExecutionPlan` an
              equivalent ``improve`` call would run, without running it
              (the CLI face of ``engine.explain`` / SQL
              ``EXPLAIN IMPROVE``).
``hits``      report H(target) and the reverse top-k for each object.
``serve``     long-lived batched IQ server: JSONL requests in (stdin or
              ``--input`` file), JSONL responses out, served by a
              persistent worker pool holding the built index.
``demo``      a self-contained run on generated data (no files needed).
``sql``       start the interactive mini-DBMS shell.
``bench``     run the literal-vs-vectorized benchmark-regression harness
              (also available as ``python -m repro.bench``).
``check``     run the differential correctness harness — invariant
              oracles, update-vs-rebuild differentials, ESE parity, and
              a seeded fuzz driver with counterexample shrinking (also
              available as ``python -m repro.check``).

Object CSVs have one numeric column per attribute.  Query CSVs have the
matching weight columns plus a final ``k`` column.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.constants import EPS_FEASIBILITY
from repro.core.cost import L1Cost, L2Cost, LInfCost
from repro.core.engine import ImprovementQueryEngine
from repro.core.queries import QuerySet
from repro.core.solvers import registered_solvers
from repro.core.sharding import ShardedSubdomainIndex
from repro.core.strategy import StrategySpace
from repro.core.subdomain import INDEX_FORMATS, SubdomainIndex
from repro.data.realworld import load_csv
from repro.index.mmapio import MMAP_SCHEMA, directory_schema
from repro.index.router import registered_routers
from repro.native import KERNEL_BACKENDS
from repro.errors import ReproError, ValidationError

__all__ = ["main", "build_parser"]

_COSTS = {"L1": L1Cost, "L2": L2Cost, "LINF": LInfCost}


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line interface of the analytic tool."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Improvement queries over top-k preference workloads (EDBT'17).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_iq_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument("objects", help="object CSV (numeric attribute columns)")
        command.add_argument("queries", help="query CSV (weight columns + final k column)")
        command.add_argument("--target", type=int, required=True, action="append",
                             help="object row id to improve (repeatable)")
        goal = command.add_mutually_exclusive_group(required=True)
        goal.add_argument("--reach", type=int, help="Min-Cost goal tau")
        goal.add_argument("--budget", type=float, help="Max-Hit budget beta")
        command.add_argument("--cost", default="L2", choices=sorted(_COSTS))
        command.add_argument("--sense", default="min", choices=["min", "max"])
        # Choices come from the solver registry, so a third-party solver
        # registered before main() is immediately addressable; "auto"
        # defers the choice to the recorded-stats feedback planner.
        command.add_argument("--method", default="efficient",
                             choices=list(registered_solvers()) + ["auto"])
        command.add_argument("--adjust", action="append", default=[],
                             metavar="COL:LO:HI",
                             help="bound a column's adjustment, e.g. price:-80:0")
        command.add_argument("--freeze", action="append", default=[], metavar="COL",
                             help="forbid adjusting a column")
        add_index_arguments(command)

    def add_index_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument("--workers", default=None, metavar="N",
                             help="worker pool size: an integer, or 'auto' for "
                                  "all cores (default: REPRO_WORKERS env var, "
                                  "else serial)")
        command.add_argument("--shards", default=None, metavar="K",
                             help="shard the index over K weight-space regions "
                                  "('auto' picks from workload size and workers; "
                                  "default: monolithic)")
        command.add_argument("--router", default=None,
                             choices=sorted(registered_routers()),
                             help="shard routing policy (default: grid)")
        command.add_argument("--kernel", default=None, choices=list(KERNEL_BACKENDS),
                             help="hot-path kernel backend: 'native' uses the "
                                  "jitted kernels when numba is importable, "
                                  "'auto' prefers native with a python fallback "
                                  "(default: REPRO_KERNEL env var, else auto)")
        command.add_argument("--save-index", default=None, metavar="PATH",
                             help="persist the built index (.npz file, or a "
                                  "directory when sharded or --index-format mmap)")
        command.add_argument("--index-format", default="npz",
                             choices=list(INDEX_FORMATS),
                             help="--save-index layout: compressed .npz, or a "
                                  "memory-mappable directory of raw .npy files "
                                  "(O(1) open, zero-copy pool residency)")
        command.add_argument("--load-index", default=None, metavar="PATH",
                             help="restore a saved index instead of rebuilding: "
                                  "a .npz file, a sharded index directory, or an "
                                  "mmap index directory "
                                  "(fingerprints must match the CSVs)")
        command.add_argument("--stats", default=None, metavar="PATH",
                             help="persist per-run EXPLAIN ANALYZE stats in this "
                                  "JSON file; METHOD/KERNEL 'auto' consult it "
                                  "(default: REPRO_STATS env var, else in-memory)")

    improve = sub.add_parser("improve", help="run a Min-Cost or Max-Hit IQ")
    add_iq_arguments(improve)

    explain = sub.add_parser(
        "explain", help="show the execution plan of an improve call, without running it"
    )
    add_iq_arguments(explain)
    explain.add_argument("--analyze", action="store_true",
                         help="EXPLAIN ANALYZE: actually run the query (results "
                              "discarded, byte-identical to improve) and append "
                              "the observed per-stage timings and counters")

    hits = sub.add_parser("hits", help="report current hits per object")
    hits.add_argument("objects")
    hits.add_argument("queries")
    hits.add_argument("--sense", default="min", choices=["min", "max"])
    hits.add_argument("--top", type=int, default=10, help="rows to print")
    add_index_arguments(hits)

    serve = sub.add_parser(
        "serve", help="long-lived JSONL improvement-query server (stdin -> stdout)"
    )
    serve.add_argument("objects")
    serve.add_argument("queries")
    serve.add_argument("--sense", default="min", choices=["min", "max"])
    serve.add_argument("--input", default=None, metavar="PATH",
                       help="read JSONL requests from this file instead of stdin")
    serve.add_argument("--batch-size", type=int, default=None, metavar="N",
                       help="max requests coalesced into one pool dispatch")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission bound; requests beyond it are rejected")
    add_index_arguments(serve)

    demo = sub.add_parser("demo", help="self-contained demo on generated data")
    demo.add_argument("--seed", type=int, default=0)

    sub.add_parser("sql", help="interactive mini-DBMS shell")

    bench = sub.add_parser("bench", help="benchmark-regression harness")
    bench.add_argument("--scale", default=None,
                       help="bench scale (tiny/bench/paper; default: env or bench)")
    bench.add_argument("--smoke", action="store_true",
                       help="CI mode: tiny scale, truncated sweeps")
    bench.add_argument("--out", default=None,
                       help="write the JSON payload to this path (e.g. BENCH_PR1.json)")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="compare against a baseline BENCH_*.json; exit 3 on regression")
    bench.add_argument("--workers", type=int, default=None, metavar="N",
                       help="pool size for the parallel bench figures (default 4)")
    bench.add_argument("--shards", type=int, default=None, metavar="K",
                       help="shard count for the sharding bench figures (default 4)")
    bench.add_argument("--kernel", default=None, choices=list(KERNEL_BACKENDS),
                       help="kernel backend the timed figures run under "
                            "(default: REPRO_KERNEL env var, else auto)")

    check = sub.add_parser(
        "check", help="differential correctness harness (oracles + seeded fuzz)"
    )
    check.add_argument("--fuzz", type=int, default=25, metavar="N",
                       help="random fuzz scenarios to run (default 25; 0 disables)")
    check.add_argument("--seed", type=int, default=0, metavar="S",
                       help="base seed; cases derive deterministically from it")
    check.add_argument("--mode", choices=["exact", "relevant", "both"],
                       default="both", help="index mode(s) to exercise")
    check.add_argument("--skip-battery", action="store_true",
                       help="skip the deterministic IN/CO/AC battery, only fuzz")
    check.add_argument("--skip-pooled", action="store_true",
                       help="skip the pooled-vs-serial batch parity check")
    check.add_argument("--sanitize", action="store_true",
                       help="run under the runtime resource sanitizer "
                            "(faulthandler, ResourceWarning as error, "
                            "zero leaked /dev/shm segments)")
    check.add_argument("--shards", type=int, default=None, metavar="K",
                       help="also hold a K-shard index to monolithic parity "
                            "(K=1 checks byte parity of the degenerate case)")
    check.add_argument("--kernel", default=None, choices=list(KERNEL_BACKENDS),
                       help="run the whole harness under this kernel backend "
                            "and add a python-vs-backend parity phase")
    check.add_argument("--analyze", action="store_true",
                       help="also hold EXPLAIN ANALYZE runs byte-identical to "
                            "their plain counterparts (engine, SQL, CLI, pooled)")

    lint = sub.add_parser("lint", help="project static analysis (rules RPR001-RPR014)")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=["human", "json", "sarif"], default="human")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run")
    lint.add_argument("--ignore", default=None, metavar="CODES",
                      help="comma-separated rule codes to skip")
    lint.add_argument("--tests-root", default=None, metavar="DIR",
                      help="tests directory for RPR005 parity lookups")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    return parser


def _load(objects_path, queries_path, sense):
    dataset = load_csv(objects_path, normalized=False, sense=sense)
    raw = load_csv(queries_path, normalized=False)
    weights_and_k = raw.points
    queries = QuerySet(
        weights_and_k[:, :-1], weights_and_k[:, -1].astype(int), normalized=False
    )
    if queries.dim != dataset.dim:
        raise ValidationError(
            f"query file has {queries.dim} weight columns but objects have "
            f"{dataset.dim} attributes"
        )
    return dataset, queries


def _space(args, dataset) -> StrategySpace | None:
    if not args.adjust and not args.freeze:
        return None
    names = dataset.names or [f"col{j}" for j in range(dataset.dim)]
    lower = np.full(dataset.dim, -np.inf)
    upper = np.full(dataset.dim, np.inf)
    mentioned = set()

    def column_index(name):
        if name not in names:
            raise ValidationError(f"unknown column {name!r}; columns: {names}")
        return names.index(name)

    for spec in args.adjust:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValidationError(f"--adjust expects COL:LO:HI, got {spec!r}")
        idx = column_index(parts[0])
        lower[idx], upper[idx] = float(parts[1]), float(parts[2])
        mentioned.add(idx)
    for name in args.freeze:
        idx = column_index(name)
        lower[idx] = upper[idx] = 0.0
        mentioned.add(idx)
    # Paper semantics: listing ADJUST constraints freezes everything else.
    if args.adjust:
        for idx in range(dataset.dim):
            if idx not in mentioned:
                lower[idx] = upper[idx] = 0.0
    return StrategySpace(dataset.dim, lower=lower, upper=upper)


def _engine(args, dataset, queries) -> ImprovementQueryEngine:
    """Build (or restore) the engine honoring the index CLI options."""
    kernel = getattr(args, "kernel", None)
    load_path = getattr(args, "load_index", None)
    if load_path:
        # Both directory layouts carry a manifest whose schema tag says
        # which loader owns them (sharded npz/mmap vs monolithic mmap);
        # a plain file is the monolithic .npz format.
        from pathlib import Path

        if Path(load_path).is_dir():
            if directory_schema(load_path) == MMAP_SCHEMA:
                index = SubdomainIndex.load(load_path, dataset, queries)
            else:
                index = ShardedSubdomainIndex.load(load_path, dataset, queries)
        else:
            index = SubdomainIndex.load(load_path, dataset, queries)
        engine = ImprovementQueryEngine.from_index(index, kernel=kernel)
    else:
        engine = ImprovementQueryEngine(
            dataset,
            queries,
            mode="relevant",
            workers=getattr(args, "workers", None),
            shards=getattr(args, "shards", None),
            router=getattr(args, "router", None),
            kernel=kernel,
        )
    if getattr(args, "save_index", None):
        engine.index.save(args.save_index, format=getattr(args, "index_format", "npz"))
    return engine


def _cmd_improve(args, out) -> int:
    dataset, queries = _load(args.objects, args.queries, args.sense)
    engine = _engine(args, dataset, queries)
    cost = _COSTS[args.cost](dataset.dim)
    space = _space(args, dataset)
    names = dataset.names or [f"col{j}" for j in range(dataset.dim)]

    def report(target, result):
        goal = f"reach {args.reach}" if args.reach is not None else f"budget {args.budget}"
        print(f"target {target} ({goal}, cost {args.cost}, method {args.method}):", file=out)
        for name, delta in zip(names, result.strategy.vector):
            if abs(delta) > EPS_FEASIBILITY:
                print(f"  adjust {name:<16} {delta:+.6g}", file=out)
        print(
            f"  cost {result.total_cost:.6g}  hits {result.hits_before} -> "
            f"{result.hits_after}  satisfied {result.satisfied}",
            file=out,
        )

    targets = args.target
    if len(targets) == 1:
        target = targets[0]
        if args.reach is not None:
            result = engine.min_cost(target, args.reach, cost=cost, space=space, method=args.method)
        else:
            result = engine.max_hit(target, args.budget, cost=cost, space=space, method=args.method)
        report(target, result)
        return 0 if result.satisfied else 2
    if args.method != "efficient":
        raise ValidationError("multi-target improve supports --method efficient only")
    if args.reach is not None:
        multi = engine.min_cost_multi(targets, args.reach, costs=cost, spaces=space)
    else:
        multi = engine.max_hit_multi(targets, args.budget, costs=cost, spaces=space)
    print(
        f"targets {targets}: joint hits {multi.hits_before} -> {multi.hits_after}, "
        f"total cost {multi.total_cost:.6g}, satisfied {multi.satisfied}",
        file=out,
    )
    for target in targets:
        strategy = multi.strategies[target]
        moves = ", ".join(
            f"{name} {delta:+.4g}"
            for name, delta in zip(names, strategy.vector)
            if abs(delta) > EPS_FEASIBILITY
        )
        print(f"  target {target}: cost {strategy.cost:.6g}  [{moves or 'no change'}]", file=out)
    return 0 if multi.satisfied else 2


def _cmd_explain(args, out) -> int:
    dataset, queries = _load(args.objects, args.queries, args.sense)
    engine = _engine(args, dataset, queries)
    cost = _COSTS[args.cost](dataset.dim)
    space = _space(args, dataset)
    targets = args.target
    if len(targets) == 1:
        target = targets[0]
        if args.analyze:
            _, executed = engine.analyze(
                target, tau=args.reach, budget=args.budget,
                cost=cost, space=space, method=args.method,
            )
            plans = (executed,)
        else:
            plans = (
                engine.explain(
                    target, tau=args.reach, budget=args.budget,
                    cost=cost, space=space, method=args.method,
                ),
            )
    else:
        if args.method != "efficient":
            raise ValidationError("multi-target improve supports --method efficient only")
        if args.analyze:
            _, plans = engine.analyze_multi(
                targets, tau=args.reach, budget=args.budget, costs=cost, spaces=space
            )
        else:
            plans = engine.explain_multi(
                targets, tau=args.reach, budget=args.budget, costs=cost, spaces=space
            )
    for i, plan in enumerate(plans):
        if i:
            print(file=out)
        print(plan.render(), file=out)
    return 0


def _cmd_hits(args, out) -> int:
    dataset, queries = _load(args.objects, args.queries, args.sense)
    engine = _engine(args, dataset, queries)
    counts = [(engine.hits(t), t) for t in range(dataset.n)]
    counts.sort(reverse=True)
    print(f"{'object':>8}  {'hits':>5}  of {queries.m} queries", file=out)
    for hits, target in counts[: args.top]:
        print(f"{target:>8}  {hits:>5}", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from repro.parallel.server import DEFAULT_BATCH_SIZE, DEFAULT_MAX_QUEUE, serve_stream

    dataset, queries = _load(args.objects, args.queries, args.sense)
    engine = _engine(args, dataset, queries)
    batch_size = args.batch_size if args.batch_size is not None else DEFAULT_BATCH_SIZE
    max_queue = args.max_queue if args.max_queue is not None else DEFAULT_MAX_QUEUE
    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as reader:
            stats = serve_stream(engine, reader, out, workers=args.workers,
                                 batch_size=batch_size, max_queue=max_queue)
    else:
        stats = serve_stream(engine, sys.stdin, out, workers=args.workers,
                             batch_size=batch_size, max_queue=max_queue)
    # Responses go to stdout (pure JSONL); the session summary to stderr.
    print(
        f"serve: {stats.served} served, {stats.failed} failed, "
        f"{stats.rejected} rejected in {stats.seconds:.3f}s "
        f"({stats.throughput:.1f} req/s, "
        f"{stats.avg_request_seconds * 1000:.2f} ms/req dispatch, "
        f"workers {stats.workers}, kernel {stats.kernel}, "
        f"{stats.batches} batches, {stats.refreshes} refreshes)",
        file=sys.stderr,
    )
    return 0


def _cmd_demo(args, out) -> int:
    from repro.data.synthetic import independent
    from repro.data.workloads import uniform_queries
    from repro.core.objects import Dataset

    dataset = Dataset(independent(60, 3, seed=args.seed))
    queries = uniform_queries(40, 3, seed=args.seed + 1, k_range=(1, 5))
    engine = ImprovementQueryEngine(dataset, queries, mode="relevant")
    target = min(range(dataset.n), key=engine.hits)
    print(f"demo: 60 objects, 40 top-k queries; improving object {target} "
          f"(currently {engine.hits(target)} hits)", file=out)
    result = engine.min_cost(target, tau=10)
    print(f"min-cost to 10 hits: cost {result.total_cost:.4f}, "
          f"hits {result.hits_after}, strategy {np.round(result.strategy.vector, 4)}",
          file=out)
    result = engine.max_hit(target, budget=0.5)
    print(f"max-hit with budget 0.5: spent {result.total_cost:.4f}, "
          f"hits {result.hits_after}", file=out)
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "stats", None):
            from repro.observe import configure_store

            configure_store(args.stats)
        if args.command == "improve":
            return _cmd_improve(args, out)
        if args.command == "explain":
            return _cmd_explain(args, out)
        if args.command == "hits":
            return _cmd_hits(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "demo":
            return _cmd_demo(args, out)
        if args.command == "sql":
            from repro.dbms.__main__ import run_repl

            return run_repl(stdout=out)
        if args.command == "bench":
            from repro.bench.regression import main as bench_main

            bench_args = ["--smoke"] if args.smoke else []
            if args.scale:
                bench_args += ["--scale", args.scale]
            if args.out:
                bench_args += ["--out", args.out]
            if args.check:
                bench_args += ["--check", args.check]
            if args.workers is not None:
                bench_args += ["--workers", str(args.workers)]
            if args.shards is not None:
                bench_args += ["--shards", str(args.shards)]
            if args.kernel is not None:
                bench_args += ["--kernel", args.kernel]
            return bench_main(bench_args)
        if args.command == "check":
            from repro.check.cli import main as check_main

            check_args = ["--fuzz", str(args.fuzz), "--seed", str(args.seed),
                          "--mode", args.mode]
            if args.skip_battery:
                check_args.append("--skip-battery")
            if args.skip_pooled:
                check_args.append("--skip-pooled")
            if args.sanitize:
                check_args.append("--sanitize")
            if args.analyze:
                check_args.append("--analyze")
            if args.shards is not None:
                check_args += ["--shards", str(args.shards)]
            if args.kernel is not None:
                check_args += ["--kernel", args.kernel]
            return check_main(check_args, out=out)
        if args.command == "lint":
            from repro.analysis.cli import main as lint_main

            lint_args = list(args.paths)
            lint_args += ["--format", args.format]
            if args.select:
                lint_args += ["--select", args.select]
            if args.ignore:
                lint_args += ["--ignore", args.ignore]
            if args.tests_root:
                lint_args += ["--tests-root", args.tests_root]
            if args.list_rules:
                lint_args.append("--list-rules")
            return lint_main(lint_args, out=out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover - argparse enforces a command
