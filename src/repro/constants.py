"""Canonical numeric tolerances for the whole library.

The paper's correctness rests on razor-thin geometric predicates: which
side of a hyperplane a query falls on (Facts 1-2, Eq. 6) decides whether
a hit is counted at all.  An inconsistent tolerance between two modules
does not crash — it silently flips hit counts near boundaries.  Every
float tolerance therefore lives *here*, under a name that says what it
guards, and nowhere else.  The static-analysis rule **RPR001**
(:mod:`repro.analysis`) rejects literal tolerances in any other module.

Grouping
--------
Geometric predicates (must all agree, or point-membership tests and
partition signatures disagree near boundaries):

* :data:`EPS` — the canonical side-of-hyperplane tolerance.
* :data:`EPS_TIE` — score ties when ranking objects at a query.
* :data:`EPS_EVENT` — plane-sweep event-key coalescing.

Optimization:

* :data:`LP_TOL`, :data:`LP_RESIDUAL_TOL` — simplex internals.
* :data:`STRICT_MARGIN`, :data:`DEFAULT_MARGIN` — strict-to-closed
  inequality slack (absolute margins; meaningful because the query
  domain is normalized to the unit box).
* :data:`EPS_FEASIBILITY`, :data:`EPS_SET_FEASIBILITY` — verification
  slack on returned solutions.
* :data:`EPS_CONVERGENCE`, :data:`FD_STEP` — iterative numeric solvers.
* :data:`EPS_COST` — cost comparisons in branch-and-bound pruning.

Benchmarking:

* :data:`EPS_TIME` — denominator guard in speedup ratios.
* :data:`ATOL_PARITY` — literal-vs-vectorized parity comparisons.
"""

from __future__ import annotations

__all__ = [
    "EPS",
    "EPS_TIE",
    "EPS_EVENT",
    "EPS_CONVERGENCE",
    "EPS_COST",
    "EPS_FEASIBILITY",
    "EPS_SET_FEASIBILITY",
    "EPS_TIME",
    "ATOL_PARITY",
    "LP_TOL",
    "LP_RESIDUAL_TOL",
    "STRICT_MARGIN",
    "DEFAULT_MARGIN",
    "FD_STEP",
    "TOLERANCE_BAND",
]

#: Canonical geometric tolerance: ``q . normal <= EPS`` counts as *above*
#: (paper §4.1 side convention).  Every side test — single-point,
#: vectorized signature matrices, and region membership — must use this
#: one value so partition signatures and point-in-subdomain tests agree.
EPS = 1e-12

#: Two object scores at a query within ``EPS_TIE`` are a rank tie and
#: are broken deterministically by object id (paper's "lower id wins").
EPS_TIE = 1e-12

#: Plane-sweep intersection events closer than this along the sweep line
#: are coalesced into one event point.
EPS_EVENT = 1e-10

#: Stationarity / fixed-point threshold for iterative solvers
#: (Dykstra's projections, projected subgradient): iteration stops once
#: the step or gradient norm drops below this.
EPS_CONVERGENCE = 1e-12

#: Cost comparison slack for branch-and-bound pruning and budget
#: filtering: ``a`` beats ``b`` only when ``a < b - EPS_COST``.
EPS_COST = 1e-12

#: Slack accepted when *verifying* that a returned strategy satisfies a
#: single hit constraint or budget (guards against accumulated rounding
#: in an otherwise exact solution).
EPS_FEASIBILITY = 1e-9

#: Looser verification slack for *joint* multi-query feasibility, where
#: iterative projection methods stop at EPS_CONVERGENCE but residuals
#: accumulate across many constraint rows.
EPS_SET_FEASIBILITY = 1e-6

#: Denominator guard when computing speedup ratios from measured wall
#: times (avoids dividing by a ~0s vectorized measurement).
EPS_TIME = 1e-9

#: Absolute tolerance for literal-vs-vectorized parity assertions in the
#: benchmark-regression harness.
ATOL_PARITY = 1e-9

#: Simplex reduced-cost / pivot-eligibility tolerance.
LP_TOL = 1e-9

#: Accepted phase-1 artificial residual: a phase-1 objective above
#: ``-LP_RESIDUAL_TOL`` counts as feasible (pure numerical noise).
LP_RESIDUAL_TOL = 1e-7

#: Strict inequalities ``q . n > 0`` are realized as ``-q . n <= -STRICT_MARGIN``
#: in LP feasibility tests over the (normalized) query-domain box.
STRICT_MARGIN = 1e-6

#: Strictness slack turning the open hit constraint ``q . s < gap`` into
#: the closed ``q . s <= gap - DEFAULT_MARGIN`` solved by the optimizers.
DEFAULT_MARGIN = 1e-7

#: Central finite-difference step for numeric gradients of custom cost
#: functions.
FD_STEP = 1e-6

#: The magnitude band ``[low, high]`` that rule RPR001 treats as "a
#: tolerance": float literals in this band outside this module must be
#: replaced by a named constant.  Values below the band (e.g. ``1e-300``
#: denominator floors) and above it (step sizes, scale factors) are not
#: tolerances and stay unrestricted.
TOLERANCE_BAND = (1e-15, 1e-5)
