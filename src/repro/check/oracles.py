"""Invariant oracles over a :class:`~repro.core.subdomain.SubdomainIndex`.

Each oracle re-derives one structural invariant from first principles
(never through the code path that maintains it) and raises
:class:`~repro.errors.IndexCorruptionError` on the first violation:

* the subdomains disjointly cover every query id exactly once, with
  ascending member lists and a representative drawn from the cell;
* ``subdomain_of`` is the exact inverse of the per-cell ``query_ids``;
* every cell signature matches ``signature_matrix`` recomputed from
  ``normals`` for *all* of the cell's members;
* every cached ``prefix`` matches a brute-force ranking of the cell's
  representative (stable score-then-id order, recomputed directly);
* ``pairs`` / ``pair_column`` / ``normals`` stay mutually consistent
  (aligned lengths, exact inverse mapping, ordered in-range pairs, and
  each normal equal to ``matrix[a] - matrix[b]``).

:func:`check_index_invariants` runs the whole battery plus the index's
own :meth:`~repro.core.subdomain.SubdomainIndex.validate` (R-tree size
and membership agreement).
"""

from __future__ import annotations

import numpy as np

from repro.core.subdomain import SubdomainIndex
from repro.errors import IndexCorruptionError
from repro.geometry.arrangement import signature_matrix
from repro.geometry.hyperplane import EPS

__all__ = [
    "check_index_invariants",
    "check_pair_consistency",
    "check_partition_cover",
    "check_prefixes",
    "check_signatures",
]


def check_partition_cover(index: SubdomainIndex) -> None:
    """Cells disjointly cover all query ids; ``subdomain_of`` is the inverse."""
    m = index.queries.m
    seen = np.zeros(m, dtype=np.intp)
    for sub in index.subdomains:
        ids = np.asarray(sub.query_ids, dtype=np.intp)
        if ids.size == 0:
            raise IndexCorruptionError(f"subdomain {sub.sid} is empty")
        if np.any(ids < 0) or np.any(ids >= m):
            raise IndexCorruptionError(
                f"subdomain {sub.sid} holds out-of-range query ids"
            )
        if ids.size > 1 and np.any(np.diff(ids) <= 0):
            raise IndexCorruptionError(
                f"subdomain {sub.sid} member list is not strictly ascending"
            )
        if sub.representative not in ids:
            raise IndexCorruptionError(
                f"subdomain {sub.sid} representative {sub.representative} "
                "is not one of its members"
            )
        if not np.all(index.subdomain_of[ids] == sub.sid):
            raise IndexCorruptionError(
                f"subdomain_of disagrees with the member list of cell {sub.sid}"
            )
        seen[ids] += 1
    if index.subdomain_of.shape[0] != m:
        raise IndexCorruptionError(
            f"subdomain_of has {index.subdomain_of.shape[0]} entries for {m} queries"
        )
    if not np.all(seen == 1):
        missing = np.flatnonzero(seen != 1)
        raise IndexCorruptionError(
            f"queries {missing.tolist()} are not covered exactly once"
        )


def check_signatures(index: SubdomainIndex) -> None:
    """Every cell signature matches a recomputation from ``normals``."""
    h = index.num_hyperplanes
    if index.queries.m == 0:
        return
    recomputed = signature_matrix(index.queries.weights, index.normals)
    for sub in index.subdomains:
        stored = np.frombuffer(sub.signature, dtype=np.int8)
        if stored.shape[0] != h:
            raise IndexCorruptionError(
                f"cell {sub.sid} signature has {stored.shape[0]} columns, "
                f"index has {h} hyperplanes"
            )
        rows = recomputed[np.asarray(sub.query_ids, dtype=np.intp)]
        if not np.all(rows == stored[None, :]):
            raise IndexCorruptionError(
                f"cell {sub.sid} signature disagrees with a recomputation "
                "from normals for at least one member"
            )


def check_prefixes(index: SubdomainIndex) -> None:
    """Every cached prefix matches a brute-force representative ranking."""
    matrix = index.dataset.matrix
    n = index.dataset.n
    for sub in index.subdomains:
        if sub.prefix is None:
            continue
        weights, __ = index.queries.query(sub.representative)
        scores = matrix @ weights
        # Independent tie-break derivation: lexicographic (score, id).
        order = np.lexsort((np.arange(n), scores))
        depth = int(sub.prefix.shape[0])
        if depth > n:
            raise IndexCorruptionError(
                f"cell {sub.sid} prefix is deeper ({depth}) than the dataset ({n})"
            )
        if not np.array_equal(np.asarray(sub.prefix, dtype=np.intp), order[:depth]):
            raise IndexCorruptionError(
                f"cell {sub.sid} cached prefix disagrees with a brute-force "
                f"ranking of representative {sub.representative}"
            )


def check_pair_consistency(index: SubdomainIndex) -> None:
    """``pairs`` / ``pair_column`` / ``normals`` are mutually consistent."""
    n = index.dataset.n
    h = index.num_hyperplanes
    if len(index.pairs) != h:
        raise IndexCorruptionError(
            f"{len(index.pairs)} pairs for {h} hyperplane normals"
        )
    if len(index.pair_column) != len(index.pairs):
        raise IndexCorruptionError(
            f"pair_column has {len(index.pair_column)} entries for "
            f"{len(index.pairs)} pairs"
        )
    matrix = index.dataset.matrix
    for col, (a, b) in enumerate(index.pairs):
        if not (0 <= a < b < n):
            raise IndexCorruptionError(
                f"pair column {col} holds invalid pair ({a}, {b}) for n={n}"
            )
        if index.pair_column.get((a, b)) != col:
            raise IndexCorruptionError(
                f"pair_column[{(a, b)}] != {col} (stale inverse mapping)"
            )
        normal = matrix[a] - matrix[b]
        if not np.array_equal(index.normals[col], normal):
            raise IndexCorruptionError(
                f"normal of column {col} disagrees with matrix[{a}] - matrix[{b}]"
            )
        if np.abs(normal).max(initial=0.0) <= EPS:
            raise IndexCorruptionError(
                f"column {col} stores a degenerate (near-zero) normal"
            )


def check_index_invariants(index: SubdomainIndex) -> None:
    """Run every invariant oracle plus the index's own ``validate``."""
    index.validate()
    check_partition_cover(index)
    check_signatures(index)
    check_prefixes(index)
    check_pair_consistency(index)
