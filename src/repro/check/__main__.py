"""Entry point: ``python -m repro.check`` == ``repro check``."""

from __future__ import annotations

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
