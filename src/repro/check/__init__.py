"""Differential correctness harness (``repro check``).

The paper's efficiency claims rest on equivalences the rest of the
library only ever exercised point-wise: incremental maintenance (§4.3)
must equal rebuild-from-scratch, the affected-subspace path of
Algorithm 2 must equal the full vectorized ESE, and every solver must
honour its own feasibility contract.  This package turns those
equivalences into standing, mechanically checked oracles:

* :mod:`repro.check.oracles` — structural invariants over a single
  :class:`~repro.core.subdomain.SubdomainIndex` (partition cover,
  ``subdomain_of`` inverse, signature/normal consistency, brute-force
  prefix parity, pair bookkeeping).
* :mod:`repro.check.differential` — behavioural equivalences: replayed
  op sequences vs a fresh build, ``evaluate_affected`` vs ``evaluate``
  (including engineered tie-band positions), and Min-Cost / Max-Hit
  result contracts re-verified from scratch.
* :mod:`repro.check.fuzz` — a seeded fuzz driver generating random
  scenarios, with greedy sequence shrinking that reduces any failure to
  a minimal, copy-pasteable :class:`~repro.check.differential.Scenario`
  repr.
* :mod:`repro.check.cli` — the ``repro check`` subcommand /
  ``python -m repro.check`` entry point and the deterministic IN/CO/AC
  battery CI runs.
"""

from __future__ import annotations

from repro.check.differential import (
    AddObject,
    AddQuery,
    RemoveObject,
    RemoveQuery,
    Scenario,
    check_affected_parity,
    check_iq_contracts,
    check_scenario,
    replay,
)
from repro.check.fuzz import FuzzFailure, fuzz, run_case, shrink
from repro.check.oracles import check_index_invariants
from repro.check.sanitize import Sanitizer, shm_segments
from repro.errors import CheckFailure

__all__ = [
    "AddObject",
    "AddQuery",
    "CheckFailure",
    "FuzzFailure",
    "Sanitizer",
    "shm_segments",
    "RemoveObject",
    "RemoveQuery",
    "Scenario",
    "check_affected_parity",
    "check_index_invariants",
    "check_iq_contracts",
    "check_scenario",
    "fuzz",
    "replay",
    "run_case",
    "shrink",
]
