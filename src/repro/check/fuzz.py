"""Seeded fuzz driver with greedy sequence shrinking.

Generates random :class:`~repro.check.differential.Scenario` values —
an IN/CO/AC dataset, an exact/relevant index, and a random op sequence
over :mod:`repro.core.updates` — and runs the full oracle battery on
each: index invariants, update-vs-rebuild differential, affected-vs-full
ESE parity (tie-band probes included), and IQ result contracts.

Every case is derived deterministically from ``(seed, case_index)``, so
a failure reported by CI replays locally with the same seed.  On
failure the driver greedily shrinks the op sequence — repeatedly
dropping ops while the scenario still fails — and reports the minimal
scenario as a copy-pasteable repr::

    from repro.check import check_scenario, run_case
    from repro.check.differential import *
    run_case(Scenario(kind='IN', mode='relevant', ...))

Op subsequences stay replayable because removal ops resolve ids modulo
the current state (see :mod:`repro.check.differential`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.check.differential import (
    AddObject,
    AddQuery,
    Op,
    RemoveObject,
    RemoveQuery,
    Scenario,
    check_affected_parity,
    check_iq_contracts,
    check_scenario,
)
from repro.data.synthetic import DATASET_KINDS
from repro.errors import ReproError

__all__ = ["FuzzFailure", "fuzz", "random_scenario", "run_case", "shrink"]

_MODES = ("exact", "relevant")


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzz counterexample, already shrunk to a minimal op sequence."""

    scenario: Scenario  #: minimal failing scenario (repr is replayable)
    error: str  #: message of the oracle that failed

    def render(self) -> str:
        """Human-readable report with a copy-pasteable replay line."""
        return (
            f"FAIL: {self.error}\n"
            f"  replay with: run_case({self.scenario!r})"
        )


def random_scenario(seed: int, case_index: int, mode: str | None = None) -> Scenario:
    """Deterministically derive one random scenario from (seed, case)."""
    rng = np.random.default_rng([seed, case_index])
    kind = str(rng.choice(DATASET_KINDS))
    picked_mode = mode if mode is not None else str(rng.choice(_MODES))
    n = int(rng.integers(4, 11))
    m = int(rng.integers(5, 13))
    d = int(rng.integers(2, 4))
    k_max = int(rng.integers(1, 4))
    ops: list[Op] = []
    for __ in range(int(rng.integers(3, 9))):
        roll = float(rng.random())
        if roll < 0.3:
            ops.append(
                AddQuery(
                    weights=tuple(float(w) for w in rng.random(d)),
                    k=int(rng.integers(1, k_max + 1)),
                )
            )
        elif roll < 0.5:
            ops.append(RemoveQuery(slot=int(rng.integers(0, 1 << 16))))
        elif roll < 0.8:
            ops.append(AddObject(attributes=tuple(float(a) for a in rng.random(d))))
        else:
            ops.append(RemoveObject(slot=int(rng.integers(0, 1 << 16))))
    return Scenario(
        kind=kind,
        mode=picked_mode,
        n=n,
        m=m,
        d=d,
        seed=int(rng.integers(0, 1 << 20)),
        k_max=k_max,
        ops=tuple(ops),
    )


def run_case(scenario: Scenario) -> str | None:
    """Run the full oracle battery on one scenario.

    Returns ``None`` when every oracle passes, otherwise the failure
    message (library errors from the oracles or from replay itself —
    an op sequence that corrupts the index enough to crash is a finding
    too).
    """
    try:
        index = check_scenario(scenario)
        rng = np.random.default_rng([scenario.seed, 97])
        check_affected_parity(index, rng)
        check_iq_contracts(index, rng)
    except ReproError as exc:
        return f"{type(exc).__name__}: {exc}"
    return None


def shrink(scenario: Scenario, error: str) -> tuple[Scenario, str]:
    """Greedy delta-debugging: drop ops while *some* failure persists.

    Repeatedly tries removing each op (suffix first, so later ops —
    usually incidental — go before the triggering prefix); keeps any
    shorter sequence that still fails, until no single removal does.
    The preserved failure may differ in message from the original; the
    final (scenario, error) pair is what gets reported.
    """
    current = scenario
    current_error = error
    improved = True
    while improved:
        improved = False
        for i in reversed(range(len(current.ops))):
            candidate = replace(
                current, ops=current.ops[:i] + current.ops[i + 1 :]
            )
            failure = run_case(candidate)
            if failure is not None:
                current = candidate
                current_error = failure
                improved = True
                break
    return current, current_error


def fuzz(
    cases: int,
    seed: int = 0,
    mode: str | None = None,
    stop_after: int | None = 5,
) -> list[FuzzFailure]:
    """Run ``cases`` random scenarios; return shrunk failures.

    ``mode`` pins the index mode (``None`` lets each case pick
    randomly); ``stop_after`` bounds how many distinct failures are
    collected before returning early (shrinking is the expensive part).
    """
    failures: list[FuzzFailure] = []
    for case_index in range(cases):
        scenario = random_scenario(seed, case_index, mode=mode)
        error = run_case(scenario)
        if error is None:
            continue
        minimal, minimal_error = shrink(scenario, error)
        failures.append(FuzzFailure(scenario=minimal, error=minimal_error))
        if stop_after is not None and len(failures) >= stop_after:
            break
    return failures
