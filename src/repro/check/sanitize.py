"""Runtime resource sanitizer for the parallel/serving layer.

The static rules (RPR008-011) prove properties of the *source*; this
module checks the properties the source cannot show: did a run actually
leave shared-memory segments behind in ``/dev/shm``, did anything rely
on garbage collection to close a resource (``ResourceWarning``), did a
worker die somewhere only ``faulthandler`` can report?

:class:`Sanitizer` is a context manager used three ways:

* ``repro check --sanitize`` wraps the whole differential battery;
* the ``REPRO_SANITIZE=1`` pytest fixture (see ``tests/conftest.py``)
  wraps every test;
* ad-hoc, around any block touching :mod:`repro.parallel`.

Inside the block, ``faulthandler`` is enabled and ``ResourceWarning``
is promoted to an error; on exit a ``gc.collect()`` settles
refcount-driven cleanup and the ``/dev/shm`` segment set is diffed
against the entry snapshot.  Segments created *and still alive* across
the block are leaks — a correctly scoped pool/store releases its
segments before the block ends.

``PYTHONDEVMODE=1`` cannot be enabled from inside a running
interpreter; the CI sanitizer job sets it in the environment so
allocator checks and default-on ResourceWarnings apply from process
start.  This module's in-process promotion is the portable subset.
"""

from __future__ import annotations

import faulthandler
import gc
import warnings
from pathlib import Path

from repro.errors import CheckFailure

__all__ = ["SHM_DIR", "Sanitizer", "shm_segments"]

#: Where Linux exposes POSIX shared memory as files.  The interpreter
#: names its segments ``psm_<random>``; only those are ours to count.
SHM_DIR = Path("/dev/shm")

#: Prefix of segment names created by :mod:`multiprocessing.shared_memory`.
_SEGMENT_PREFIX = "psm_"


def shm_segments() -> frozenset[str]:
    """Names of the live ``psm_*`` shared-memory segments on this host.

    Returns the empty set on platforms without ``/dev/shm`` (macOS) —
    the leak check degrades to a no-op there rather than failing.
    """
    try:
        entries = list(SHM_DIR.iterdir())
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return frozenset()
    return frozenset(
        entry.name for entry in entries if entry.name.startswith(_SEGMENT_PREFIX)
    )


class Sanitizer:
    """Context manager asserting a block leaks no shared-memory segments.

    Usage::

        with Sanitizer("pooled battery") as sanitizer:
            ...  # anything touching repro.parallel
        sanitizer.check()   # raises CheckFailure on leaked segments

    Attributes
    ----------
    leaked:
        Segment names created inside the block and still alive at exit
        (populated by ``__exit__``; empty before then).
    """

    def __init__(self, label: str = "sanitize") -> None:
        self.label = label
        self.leaked: frozenset[str] = frozenset()
        self._before: frozenset[str] = frozenset()
        self._catcher: "warnings.catch_warnings | None" = None

    def __enter__(self) -> "Sanitizer":
        faulthandler.enable()
        self._catcher = warnings.catch_warnings()
        self._catcher.__enter__()
        # A ResourceWarning means cleanup fell to the GC — the exact
        # discipline failure RPR009 polices statically.
        warnings.simplefilter("error", ResourceWarning)
        self._before = shm_segments()
        self.leaked = frozenset()
        return self

    def __exit__(self, *exc: object) -> bool:
        # Settle refcount/GC cleanup first so only truly reachable (or
        # truly orphaned) segments count as leaks, then restore the
        # caller's warning filters.
        gc.collect()
        if self._catcher is not None:
            self._catcher.__exit__(None, None, None)
            self._catcher = None
        self.leaked = shm_segments() - self._before
        return False

    def summary(self) -> str:
        """One-line human report of the leak diff."""
        if self.leaked:
            names = ", ".join(sorted(self.leaked))
            return f"sanitizer [{self.label}]: LEAKED {len(self.leaked)} shm segment(s): {names}"
        return f"sanitizer [{self.label}]: no leaked shm segments"

    def check(self) -> None:
        """Raise :class:`CheckFailure` if the block leaked segments."""
        if self.leaked:
            raise CheckFailure(self.summary())
