"""``repro check`` — run the differential correctness harness.

Two phases, both deterministic:

1. **Battery** — a fixed scenario per (IN/CO/AC) × (exact/relevant)
   combination: a canonical op sequence replayed through every oracle
   (invariants, update-vs-rebuild, ESE parity with tie-band probes, IQ
   contracts).
2. **Fuzz** — ``--fuzz N`` random scenarios derived from ``--seed``;
   failures are shrunk to minimal op sequences and printed as
   copy-pasteable :class:`~repro.check.differential.Scenario` reprs.

Exit codes: 0 all oracles pass, 1 at least one divergence, 2 bad
invocation.  Also runnable as ``python -m repro.check``.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.check.differential import (
    AddObject,
    AddQuery,
    Op,
    RemoveObject,
    RemoveQuery,
    Scenario,
)
from repro.check.fuzz import FuzzFailure, fuzz, run_case
from repro.data.synthetic import DATASET_KINDS
from repro.errors import ValidationError

__all__ = ["main", "build_parser", "battery_scenarios"]

_MODES = ("exact", "relevant")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro check`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Differential correctness harness: invariant oracles, "
            "update-vs-rebuild and ESE-parity differentials, and a seeded "
            "fuzz driver with counterexample shrinking."
        ),
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=25,
        metavar="N",
        help="number of random fuzz scenarios to run (default: 25; 0 disables)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed; every case derives deterministically from it (default: 0)",
    )
    parser.add_argument(
        "--mode",
        choices=["exact", "relevant", "both"],
        default="both",
        help="index mode(s) to exercise (default: both)",
    )
    parser.add_argument(
        "--skip-battery",
        action="store_true",
        help="skip the deterministic IN/CO/AC battery and only fuzz",
    )
    parser.add_argument(
        "--skip-pooled",
        action="store_true",
        help="skip the pooled-vs-serial batch parity check",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run under the runtime resource sanitizer: faulthandler on, "
            "ResourceWarning promoted to an error, and zero leaked "
            "/dev/shm segments asserted after the run"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help=(
            "also run the sharded-index differential: replay the battery "
            "through a K-shard index and hold it to monolithic parity, "
            "update-vs-rebuild per shard, shard-boundary tie probes, and "
            "K=1 byte-parity degeneracy (default: off)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=["python", "native", "auto"],
        default=None,
        metavar="BACKEND",
        help=(
            "pin the whole harness to this kernel backend and add a "
            "kernel-parity differential: python-backend vs resolved-backend "
            "results must be field-exact, serially and through the pool "
            "(default: off — the ambient REPRO_KERNEL resolution applies)"
        ),
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "add the EXPLAIN ANALYZE differential: analyzed runs must be "
            "byte-identical to their plain counterparts across the engine "
            "API (every query kind and multi-target), the pooled batch "
            "front end, the SQL shell, and the CLI (default: off)"
        ),
    )
    return parser


def _battery_ops(d: int) -> tuple[Op, ...]:
    """A canonical op sequence touching all four maintenance paths."""
    low = tuple(0.15 + 0.1 * j for j in range(d))
    high = tuple(0.85 - 0.1 * j for j in range(d))
    mid = tuple(0.5 for _ in range(d))
    return (
        AddObject(attributes=low),
        AddQuery(weights=high, k=1),
        AddObject(attributes=mid),
        RemoveObject(slot=3),
        AddQuery(weights=low, k=2),
        RemoveQuery(slot=1),
        AddObject(attributes=high),
        RemoveObject(slot=5),
    )


def battery_scenarios(modes: tuple[str, ...]) -> list[Scenario]:
    """The fixed battery: one scenario per dataset kind and index mode."""
    out: list[Scenario] = []
    for kind in DATASET_KINDS:
        for mode in modes:
            for d in (2, 3):
                out.append(
                    Scenario(
                        kind=kind,
                        mode=mode,
                        n=9,
                        m=11,
                        d=d,
                        seed=7,
                        k_max=3,
                        ops=_battery_ops(d),
                    )
                )
    return out


def _run_battery(modes: tuple[str, ...], out: IO[str]) -> list[FuzzFailure]:
    failures: list[FuzzFailure] = []
    for scenario in battery_scenarios(modes):
        error = run_case(scenario)
        status = "ok" if error is None else "FAIL"
        print(
            f"battery {scenario.kind}/{scenario.mode}/d={scenario.d}: {status}",
            file=out,
        )
        if error is not None:
            failures.append(FuzzFailure(scenario=scenario, error=error))
    return failures


def _run_sharded(modes: tuple[str, ...], shards: int, out: IO[str]) -> list[FuzzFailure]:
    """The ``--shards`` axis: sharded differentials over the battery.

    Every battery scenario is replayed through a K-shard index and held
    to the oracles of
    :func:`~repro.check.differential.check_sharded_scenario`; the grid
    router's bin edges get their own boundary-tie probe.
    """
    from repro.check.differential import (
        check_shard_boundary_ties,
        check_sharded_scenario,
    )
    from repro.errors import ReproError

    failures: list[FuzzFailure] = []
    for scenario in battery_scenarios(modes):
        try:
            check_sharded_scenario(scenario, shards)
            error: "str | None" = None
        except ReproError as exc:
            error = str(exc)
        status = "ok" if error is None else "FAIL"
        print(
            f"sharded[K={shards}] {scenario.kind}/{scenario.mode}/d={scenario.d}: "
            f"{status}",
            file=out,
        )
        if error is not None:
            failures.append(FuzzFailure(scenario=scenario, error=error))
    try:
        check_shard_boundary_ties(shards=max(2, shards))
        print(f"sharded[K={shards}] grid boundary ties: ok", file=out)
    except ReproError as exc:
        print(f"sharded[K={shards}] grid boundary ties: FAIL", file=out)
        failures.append(FuzzFailure(scenario=Scenario(), error=str(exc)))
    return failures


def _result_mismatch(label: str, serial: object, pooled: object) -> "str | None":
    """Field-exact comparison of two IQResults; None when identical."""
    import numpy as np

    for attr in ("target", "hits_before", "hits_after", "total_cost", "satisfied"):
        a, b = getattr(serial, attr), getattr(pooled, attr)
        if a != b:
            return f"{label}: {attr} diverged (serial {a!r} vs pooled {b!r})"
    sa = np.asarray(getattr(serial, "strategy").vector)
    sb = np.asarray(getattr(pooled, "strategy").vector)
    if not np.array_equal(sa, sb):
        return f"{label}: strategy vector diverged (serial {sa} vs pooled {sb})"
    return None


def _run_pooled_parity(out: IO[str]) -> list[str]:
    """Persistent-pool vs serial-reference differential (PC oracle).

    The pool resolves its worker count from the ambient ``REPRO_WORKERS``
    environment, so the same harness exercises the in-process serial
    pool mode (workers < 2) and the forked pool (workers >= 2) — CI runs
    both legs.  The sequence also mutates the index mid-stream so the
    epoch-refresh path is under the differential too.
    """
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.objects import Dataset
    from repro.data.synthetic import independent
    from repro.data.workloads import uniform_queries
    from repro.parallel import IQRequest, PersistentPool, run_batch

    dataset = Dataset(independent(24, 3, seed=11))
    queries = uniform_queries(18, 3, seed=12, k_range=(1, 4))
    engine = ImprovementQueryEngine(dataset, queries, mode="relevant")
    requests = tuple(
        IQRequest("min_cost", target, 8) for target in range(0, 8, 2)
    ) + tuple(IQRequest("max_hit", target, 0.4) for target in range(1, 8, 2))

    failures: list[str] = []
    with PersistentPool(engine) as pool:
        for round_label in ("initial", "post-mutation"):
            serial = run_batch(engine, requests, workers=0)
            pooled = pool.run(requests)
            for request, expect, got in zip(requests, serial, pooled):
                label = f"pooled parity [{round_label}] {request.kind}@{request.target}"
                mismatch = _result_mismatch(label, expect, got)
                if mismatch is not None:
                    failures.append(mismatch)
            if round_label == "initial":
                # Mutate through the engine: the pool must observe the
                # epoch bump and re-fork instead of serving stale hits.
                engine.add_query([0.2 + 0.1 * j for j in range(3)], 2)
        status = "ok" if not failures else "FAIL"
        print(
            f"pooled parity (workers {pool.workers}, generation {pool.generation}): "
            f"{status}",
            file=out,
        )
    return failures


def _run_analyze_parity(out: IO[str]) -> list[str]:
    """EXPLAIN ANALYZE differential (AN oracle): analysis never perturbs.

    The observe layer only reads clocks and counts, so an analyzed run
    must return results byte-identical to its plain counterpart on every
    surface:

    - **engine** — ``analyze``/``analyze_multi`` vs ``min_cost`` /
      ``max_hit`` / the combinatorial calls, field-exact per target;
    - **pooled** — a plain :class:`PersistentPool` batch vs per-request
      serial ``analyze`` runs (the pool resolves ``REPRO_WORKERS``, so
      CI's serial and forked legs both pass through here);
    - **SQL** — an ``IMPROVE`` statement re-run after an interleaved
      ``EXPLAIN ANALYZE IMPROVE`` must yield the same rows;
    - **CLI** — ``repro improve`` output re-captured after
      ``repro explain --analyze`` must be byte-identical.

    Every executed plan must also carry a positive ``total_seconds`` —
    an analyzed run that observed nothing is its own failure.
    """
    import io
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.cli import main as cli_main
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.objects import Dataset
    from repro.data.synthetic import independent
    from repro.data.workloads import uniform_queries
    from repro.dbms import Database
    from repro.parallel import IQRequest, PersistentPool

    failures: list[str] = []
    dataset = Dataset(independent(24, 3, seed=11))
    queries = uniform_queries(18, 3, seed=12, k_range=(1, 4))
    engine = ImprovementQueryEngine(dataset, queries, mode="relevant")

    def check_executed(label: str, executed) -> None:
        if executed.total_seconds <= 0.0:
            failures.append(f"{label}: executed plan observed no wall-clock")

    # Engine leg: every query kind, plain vs analyzed, field-exact.
    requests = tuple(
        IQRequest("min_cost", target, 8) for target in range(0, 8, 2)
    ) + tuple(IQRequest("max_hit", target, 0.4) for target in range(1, 8, 2))
    analyzed_results = []
    for request in requests:
        label = f"analyze parity [engine] {request.kind}@{request.target}"
        if request.kind == "min_cost":
            plain = engine.min_cost(request.target, request.goal)
            analyzed, executed = engine.analyze(request.target, tau=request.goal)
        else:
            plain = engine.max_hit(request.target, request.goal)
            analyzed, executed = engine.analyze(request.target, budget=request.goal)
        mismatch = _result_mismatch(label, plain, analyzed)
        if mismatch is not None:
            failures.append(mismatch)
        check_executed(label, executed)
        analyzed_results.append(analyzed)

    # Multi-target leg: the joint combinatorial loop under analysis.
    targets = [1, 4, 6]
    plain_multi = engine.min_cost_multi(targets, 6)
    analyzed_multi, plans = engine.analyze_multi(targets, tau=6)
    for attr in ("hits_before", "hits_after", "total_cost", "satisfied"):
        a, b = getattr(plain_multi, attr), getattr(analyzed_multi, attr)
        if a != b:
            failures.append(
                f"analyze parity [multi] {attr} diverged (plain {a!r} vs analyzed {b!r})"
            )
    for target in targets:
        sa = np.asarray(plain_multi.strategies[target].vector)
        sb = np.asarray(analyzed_multi.strategies[target].vector)
        if not np.array_equal(sa, sb):
            failures.append(
                f"analyze parity [multi] strategy@{target} diverged ({sa} vs {sb})"
            )
    for plan in plans:
        check_executed(f"analyze parity [multi] plan@{plan.target}", plan)

    # Pooled leg: plain pooled batch vs the serial analyzed results.
    with PersistentPool(engine) as pool:
        pooled = pool.run(requests)
        for request, expect, got in zip(requests, analyzed_results, pooled):
            label = f"analyze parity [pooled] {request.kind}@{request.target}"
            mismatch = _result_mismatch(label, got, expect)
            if mismatch is not None:
                failures.append(mismatch)
        workers = pool.workers

    # SQL leg: IMPROVE rows unchanged across an EXPLAIN ANALYZE run.
    sql_objects = independent(12, 3, seed=21)
    workload = uniform_queries(9, 3, seed=22, k_range=(1, 3))
    db = Database()
    db.run_script(
        "CREATE TABLE objs (a FLOAT, b FLOAT, c FLOAT);"
        + "INSERT INTO objs VALUES "
        + ", ".join(
            f"({row[0]:.6f}, {row[1]:.6f}, {row[2]:.6f})" for row in sql_objects
        )
        + "; CREATE TABLE prefs (wa FLOAT, wb FLOAT, wc FLOAT, k INT);"
        + "INSERT INTO prefs VALUES "
        + ", ".join(
            f"({w[0]:.6f}, {w[1]:.6f}, {w[2]:.6f}, {int(k)})"
            for w, k in zip(workload.weights, workload.ks)
        )
        + "; CREATE IMPROVEMENT INDEX idx ON objs (a, b, c)"
        "  USING QUERIES prefs (wa, wb, wc, k);"
    )
    improve_sql = "IMPROVE objs TARGET WHERE rowid = 0 USING idx REACH 3"
    before = db.execute(improve_sql).rows
    analyzed_rs = db.execute("EXPLAIN ANALYZE " + improve_sql)
    after = db.execute(improve_sql).rows
    if before != after:
        failures.append("analyze parity [sql]: IMPROVE rows changed across EXPLAIN ANALYZE")
    # Plan rows arrive pre-rendered as strings (plan.rows() formatting).
    total_column = [float(v) for v in analyzed_rs.column("total_seconds")]
    if not total_column or any(v <= 0.0 for v in total_column):
        failures.append("analyze parity [sql]: EXPLAIN ANALYZE observed no wall-clock")

    # CLI leg: improve output byte-identical across an --analyze run.
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        objects_csv = Path(tmp) / "objects.csv"
        queries_csv = Path(tmp) / "queries.csv"
        objects_csv.write_text(
            "a,b,c\n"
            + "".join(
                f"{row[0]:.6f},{row[1]:.6f},{row[2]:.6f}\n" for row in sql_objects
            ),
            encoding="utf-8",
        )
        queries_csv.write_text(
            "wa,wb,wc,k\n"
            + "".join(
                f"{w[0]:.6f},{w[1]:.6f},{w[2]:.6f},{int(k)}\n"
                for w, k in zip(workload.weights, workload.ks)
            ),
            encoding="utf-8",
        )
        improve_argv = [
            "improve", str(objects_csv), str(queries_csv), "--target", "0",
            "--reach", "3",
        ]
        first = io.StringIO()
        cli_main(improve_argv, out=first)
        cli_main(
            ["explain", str(objects_csv), str(queries_csv), "--target", "0",
             "--reach", "3", "--analyze"],
            out=io.StringIO(),
        )
        second = io.StringIO()
        cli_main(improve_argv, out=second)
        if first.getvalue() != second.getvalue():
            failures.append(
                "analyze parity [cli]: improve output changed across explain --analyze"
            )

    status = "ok" if not failures else "FAIL"
    print(f"analyze parity (workers {workers}): {status}", file=out)
    return failures


def _run_kernel_parity(kernel: str, out: IO[str]) -> list[str]:
    """Kernel differential: python backend vs resolved backend (KP oracle).

    Two engines over identical inputs — one pinned to the pure-python
    kernels, one resolved from the requested backend — must agree
    field-exactly on every hit count and every IQ result, both through
    the serial loop and through a :class:`PersistentPool`.  With numba
    absent the resolved backend degrades to python and the leg proves
    the fallback serves; with numba present it is the float-exactness
    gate for the jitted kernels inside real solver runs.
    """
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.objects import Dataset
    from repro.data.synthetic import independent
    from repro.data.workloads import uniform_queries
    from repro.native import resolve_backend
    from repro.parallel import IQRequest, PersistentPool, run_batch

    requested, resolved = resolve_backend(kernel)
    dataset = Dataset(independent(24, 3, seed=11))
    queries = uniform_queries(18, 3, seed=12, k_range=(1, 4))
    reference = ImprovementQueryEngine(dataset, queries, mode="relevant", kernel="python")
    candidate = ImprovementQueryEngine(dataset, queries, mode="relevant", kernel=kernel)
    requests = tuple(
        IQRequest("min_cost", target, 8) for target in range(0, 8, 2)
    ) + tuple(IQRequest("max_hit", target, 0.4) for target in range(1, 8, 2))

    failures: list[str] = []
    for target in range(dataset.n):
        expect, got = reference.hits(target), candidate.hits(target)
        if expect != got:
            failures.append(
                f"kernel parity: hits({target}) diverged "
                f"(python {expect} vs {resolved} {got})"
            )
    base = run_batch(reference, requests, workers=0)
    serial = run_batch(candidate, requests, workers=0)
    for request, expect, got in zip(requests, base, serial):
        label = f"kernel parity [serial] {request.kind}@{request.target}"
        mismatch = _result_mismatch(label, expect, got)
        if mismatch is not None:
            failures.append(mismatch)
    with PersistentPool(candidate) as pool:
        pooled = pool.run(requests)
        for request, expect, got in zip(requests, base, pooled):
            label = f"kernel parity [pooled] {request.kind}@{request.target}"
            mismatch = _result_mismatch(label, expect, got)
            if mismatch is not None:
                failures.append(mismatch)
        status = "ok" if not failures else "FAIL"
        print(
            f"kernel parity (requested {requested}, resolved {resolved}, "
            f"workers {pool.workers}): {status}",
            file=out,
        )
    return failures


def main(argv: "list[str] | None" = None, out: "IO[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.fuzz < 0:
        parser.error(f"--fuzz must be non-negative, got {args.fuzz}")

    if not args.sanitize:
        return _execute(args, out)
    from repro.check.sanitize import Sanitizer

    with Sanitizer("repro check") as sanitizer:
        code = _execute(args, out)
    print(sanitizer.summary(), file=out)
    if sanitizer.leaked:
        return 1
    return code


def _execute(args: argparse.Namespace, out: "IO[str]") -> int:
    """Run the configured battery/parity/fuzz phases; returns the exit code."""
    from contextlib import nullcontext

    from repro.native import resolve_backend, use_backend

    modes: tuple[str, ...] = _MODES if args.mode == "both" else (args.mode,)
    failures: list[FuzzFailure] = []
    parity_failures: list[str] = []

    # --kernel pins every phase to the resolved backend, so the whole
    # battery/fuzz corpus (not just the parity leg) runs through it.
    kernel = getattr(args, "kernel", None)
    pin = use_backend(resolve_backend(kernel)[1]) if kernel else nullcontext()
    with pin:
        if not args.skip_battery:
            failures.extend(_run_battery(modes, out))

        if args.shards is not None:
            if args.shards < 1:
                raise ValidationError(f"--shards must be positive, got {args.shards}")
            failures.extend(_run_sharded(modes, args.shards, out))

        if not args.skip_pooled:
            parity_failures = _run_pooled_parity(out)

        if getattr(args, "analyze", False):
            parity_failures = parity_failures + _run_analyze_parity(out)

        if kernel is not None:
            parity_failures = parity_failures + _run_kernel_parity(kernel, out)

        if args.fuzz > 0:
            fuzz_mode = None if args.mode == "both" else args.mode
            fuzz_failures = fuzz(args.fuzz, seed=args.seed, mode=fuzz_mode)
            print(
                f"fuzz: {args.fuzz} cases, seed {args.seed}, mode {args.mode}: "
                f"{len(fuzz_failures)} failure(s)",
                file=out,
            )
            failures.extend(fuzz_failures)

    if failures or parity_failures:
        print(file=out)
        for parity_failure in parity_failures:
            print(parity_failure, file=out)
        for failure in failures:
            print(failure.render(), file=out)
        total = len(failures) + len(parity_failures)
        print(
            f"\n{total} oracle failure(s); replay any scenario with\n"
            "  PYTHONPATH=src python -c \"from repro.check import run_case; "
            "from repro.check.differential import *; print(run_case(<repr>))\"",
            file=out,
        )
        return 1
    print("all correctness oracles passed", file=out)
    return 0
