"""``repro check`` — run the differential correctness harness.

Two phases, both deterministic:

1. **Battery** — a fixed scenario per (IN/CO/AC) × (exact/relevant)
   combination: a canonical op sequence replayed through every oracle
   (invariants, update-vs-rebuild, ESE parity with tie-band probes, IQ
   contracts).
2. **Fuzz** — ``--fuzz N`` random scenarios derived from ``--seed``;
   failures are shrunk to minimal op sequences and printed as
   copy-pasteable :class:`~repro.check.differential.Scenario` reprs.

Exit codes: 0 all oracles pass, 1 at least one divergence, 2 bad
invocation.  Also runnable as ``python -m repro.check``.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.check.differential import (
    AddObject,
    AddQuery,
    Op,
    RemoveObject,
    RemoveQuery,
    Scenario,
)
from repro.check.fuzz import FuzzFailure, fuzz, run_case
from repro.data.synthetic import DATASET_KINDS

__all__ = ["main", "build_parser", "battery_scenarios"]

_MODES = ("exact", "relevant")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro check`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Differential correctness harness: invariant oracles, "
            "update-vs-rebuild and ESE-parity differentials, and a seeded "
            "fuzz driver with counterexample shrinking."
        ),
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=25,
        metavar="N",
        help="number of random fuzz scenarios to run (default: 25; 0 disables)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed; every case derives deterministically from it (default: 0)",
    )
    parser.add_argument(
        "--mode",
        choices=["exact", "relevant", "both"],
        default="both",
        help="index mode(s) to exercise (default: both)",
    )
    parser.add_argument(
        "--skip-battery",
        action="store_true",
        help="skip the deterministic IN/CO/AC battery and only fuzz",
    )
    return parser


def _battery_ops(d: int) -> tuple[Op, ...]:
    """A canonical op sequence touching all four maintenance paths."""
    low = tuple(0.15 + 0.1 * j for j in range(d))
    high = tuple(0.85 - 0.1 * j for j in range(d))
    mid = tuple(0.5 for _ in range(d))
    return (
        AddObject(attributes=low),
        AddQuery(weights=high, k=1),
        AddObject(attributes=mid),
        RemoveObject(slot=3),
        AddQuery(weights=low, k=2),
        RemoveQuery(slot=1),
        AddObject(attributes=high),
        RemoveObject(slot=5),
    )


def battery_scenarios(modes: tuple[str, ...]) -> list[Scenario]:
    """The fixed battery: one scenario per dataset kind and index mode."""
    out: list[Scenario] = []
    for kind in DATASET_KINDS:
        for mode in modes:
            for d in (2, 3):
                out.append(
                    Scenario(
                        kind=kind,
                        mode=mode,
                        n=9,
                        m=11,
                        d=d,
                        seed=7,
                        k_max=3,
                        ops=_battery_ops(d),
                    )
                )
    return out


def _run_battery(modes: tuple[str, ...], out: IO[str]) -> list[FuzzFailure]:
    failures: list[FuzzFailure] = []
    for scenario in battery_scenarios(modes):
        error = run_case(scenario)
        status = "ok" if error is None else "FAIL"
        print(
            f"battery {scenario.kind}/{scenario.mode}/d={scenario.d}: {status}",
            file=out,
        )
        if error is not None:
            failures.append(FuzzFailure(scenario=scenario, error=error))
    return failures


def main(argv: "list[str] | None" = None, out: "IO[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.fuzz < 0:
        parser.error(f"--fuzz must be non-negative, got {args.fuzz}")

    modes: tuple[str, ...] = _MODES if args.mode == "both" else (args.mode,)
    failures: list[FuzzFailure] = []

    if not args.skip_battery:
        failures.extend(_run_battery(modes, out))

    if args.fuzz > 0:
        fuzz_mode = None if args.mode == "both" else args.mode
        fuzz_failures = fuzz(args.fuzz, seed=args.seed, mode=fuzz_mode)
        print(
            f"fuzz: {args.fuzz} cases, seed {args.seed}, mode {args.mode}: "
            f"{len(fuzz_failures)} failure(s)",
            file=out,
        )
        failures.extend(fuzz_failures)

    if failures:
        print(file=out)
        for failure in failures:
            print(failure.render(), file=out)
        print(
            f"\n{len(failures)} oracle failure(s); replay any scenario with\n"
            "  PYTHONPATH=src python -c \"from repro.check import run_case; "
            "from repro.check.differential import *; print(run_case(<repr>))\"",
            file=out,
        )
        return 1
    print("all correctness oracles passed", file=out)
    return 0
