"""Differential oracles: maintenance, ESE parity, and IQ contracts.

Three behavioural equivalences, each checked by re-deriving the answer
through an independent path and raising
:class:`~repro.errors.CheckFailure` on divergence:

* **update vs rebuild** (:func:`check_scenario`) — replay a
  :class:`Scenario` (an op sequence over ``repro.core.updates``) and
  compare the incrementally maintained index against a fresh build on
  the final data: both must pass every invariant oracle, the
  incremental partition must equal the fresh one (exact mode) or refine
  it (relevant mode, whose arrangement keeps harmless stale
  hyperplanes), and ``hits_mask`` must agree for every object — and
  agree with a brute-force top-k evaluation away from tie bands.
* **affected vs full ESE** (:func:`check_affected_parity`) —
  ``evaluate_affected`` must produce the same mask as a full
  ``hits_mask`` re-evaluation for random moves *and* for engineered
  moves that land the target's score inside the tie band of a
  threshold, where the id tie-break decides membership.
* **IQ result contracts** (:func:`check_iq_contracts`) — a Min-Cost /
  Max-Hit result's reported ``total_cost`` / ``hits_after`` /
  ``satisfied`` fields must survive re-verification from scratch
  (strategy re-costed, hits recounted on a fresh index of the improved
  data and by brute force, budget/goal re-checked).

Scenarios use ``sense="min"`` datasets, so external and internal
strategy coordinates coincide and results can be re-checked without
boundary conversion.  Removal ops name a *slot* resolved modulo the
current id range at replay time, which keeps every subsequence of an op
list replayable — the property the fuzz shrinker relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import EPS_COST, EPS_FEASIBILITY
from repro.check.oracles import check_index_invariants
from repro.core import updates
from repro.core.cost import L2Cost
from repro.core.engine import ImprovementQueryEngine
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.results import IQResult
from repro.core.sharding import ShardedSubdomainIndex
from repro.core.subdomain import _TIE_TOL, SubdomainIndex
from repro.data.synthetic import generate
from repro.data.workloads import uniform_queries
from repro.errors import CheckFailure

__all__ = [
    "AddObject",
    "AddQuery",
    "RemoveObject",
    "RemoveQuery",
    "Scenario",
    "brute_force_hits",
    "check_affected_parity",
    "check_iq_contracts",
    "check_scenario",
    "check_shard_boundary_ties",
    "check_sharded_scenario",
    "replay",
    "replay_sharded",
]


# ----------------------------------------------------------------------
# Op sequence model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AddQuery:
    """Insert a top-k query with the given weights."""

    weights: tuple[float, ...]
    k: int

    def apply(self, index: "SubdomainIndex | ShardedSubdomainIndex") -> None:
        """Apply this op to ``index`` via the maintenance layer."""
        updates.add_query(index, np.asarray(self.weights, dtype=float), self.k)


@dataclass(frozen=True)
class RemoveQuery:
    """Remove the query at ``slot % m`` (skipped when only one is left)."""

    slot: int

    def apply(self, index: "SubdomainIndex | ShardedSubdomainIndex") -> None:
        """Apply this op to ``index`` via the maintenance layer."""
        if index.queries.m <= 1:
            return  # keep the workload non-empty
        updates.remove_query(index, self.slot % index.queries.m)


@dataclass(frozen=True)
class AddObject:
    """Insert an object with the given attribute vector."""

    attributes: tuple[float, ...]

    def apply(self, index: "SubdomainIndex | ShardedSubdomainIndex") -> None:
        """Apply this op to ``index`` via the maintenance layer."""
        updates.add_object(index, np.asarray(self.attributes, dtype=float))


@dataclass(frozen=True)
class RemoveObject:
    """Remove the object at ``slot % n`` (skipped when only two are left)."""

    slot: int

    def apply(self, index: "SubdomainIndex | ShardedSubdomainIndex") -> None:
        """Apply this op to ``index`` via the maintenance layer."""
        if index.dataset.n <= 2:
            return  # keep enough objects for rankings to mean anything
        updates.remove_object(index, self.slot % index.dataset.n)


Op = AddQuery | RemoveQuery | AddObject | RemoveObject


@dataclass(frozen=True)
class Scenario:
    """A replayable correctness scenario: initial config + op sequence.

    The repr is copy-pasteable: evaluating it and passing the result to
    :func:`replay` (or :func:`check_scenario`) reproduces the exact
    index state, because the initial data is derived from the seeds and
    removal ops resolve ids modulo the current state.
    """

    kind: str = "IN"  #: synthetic dataset family (IN / CO / AC)
    mode: str = "exact"  #: index mode (exact / relevant)
    n: int = 8  #: initial object count
    m: int = 10  #: initial query count
    d: int = 2  #: dimensionality
    seed: int = 0  #: data seed (queries use ``seed + 1``)
    k_max: int = 3  #: per-query k drawn from [1, k_max]
    ops: tuple[Op, ...] = field(default_factory=tuple)


def replay(scenario: Scenario) -> SubdomainIndex:
    """Build the initial index and apply the scenario's ops in order."""
    dataset = Dataset(generate(scenario.kind, scenario.n, scenario.d, scenario.seed))
    queries = uniform_queries(
        scenario.m, scenario.d, seed=scenario.seed + 1, k_range=(1, scenario.k_max)
    )
    index = SubdomainIndex(dataset, queries, mode=scenario.mode)
    for op in scenario.ops:
        op.apply(index)
    return index


# ----------------------------------------------------------------------
# Brute force reference
# ----------------------------------------------------------------------
def brute_force_hits(
    matrix: np.ndarray, weights: np.ndarray, ks: np.ndarray, target: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reference membership mask, derived directly from the definition.

    Returns ``(mask, ambiguous)``: ``mask[j]`` is True when ``target``
    is among the ``ks[j]`` lowest-scoring objects at query ``j`` under
    the lexicographic ``(score, id)`` order, and ``ambiguous[j]`` is
    True when the target's score sits within the relative tie band of
    the k-th-other threshold — positions where the float-exact brute
    force and the banded Eq. 6 evaluator may legitimately disagree, so
    callers compare masks only where ``~ambiguous``.
    """
    matrix = np.asarray(matrix, dtype=float)
    weights = np.atleast_2d(np.asarray(weights, dtype=float))
    n = matrix.shape[0]
    m = weights.shape[0]
    mask = np.zeros(m, dtype=bool)
    ambiguous = np.zeros(m, dtype=bool)
    ids = np.arange(n)
    for j in range(m):
        scores = matrix @ weights[j]
        order = np.lexsort((ids, scores))
        k = int(ks[j])
        mask[j] = bool(np.any(order[: min(k, n)] == target))
        others = order[order != target]
        if k <= others.shape[0]:
            theta = float(scores[others[k - 1]])
            band = _TIE_TOL * max(1.0, abs(theta))
            ambiguous[j] = abs(float(scores[target]) - theta) <= band
        else:
            mask[j] = True  # fewer than k other objects exist
    return mask, ambiguous


# ----------------------------------------------------------------------
# Update-vs-rebuild differential
# ----------------------------------------------------------------------
def _cells(index: SubdomainIndex) -> set[tuple[int, ...]]:
    return {tuple(np.asarray(sub.query_ids).tolist()) for sub in index.subdomains}


def _check_partition_equivalence(
    incremental: SubdomainIndex, fresh: SubdomainIndex
) -> None:
    """Exact mode: identical partitions.  Relevant mode: refinement.

    A relevant-mode incremental index keeps hyperplanes whose objects
    are no longer contenders; extra hyperplanes only split cells, so
    every incremental cell must fall inside exactly one fresh cell.
    """
    if incremental.mode == "exact":
        if _cells(incremental) != _cells(fresh):
            raise CheckFailure(
                "incremental exact-mode partition differs from a fresh build: "
                f"{sorted(_cells(incremental))} vs {sorted(_cells(fresh))}"
            )
        return
    for sub in incremental.subdomains:
        fresh_sids = np.unique(fresh.subdomain_of[np.asarray(sub.query_ids, dtype=np.intp)])
        if fresh_sids.shape[0] > 1:
            raise CheckFailure(
                "incremental relevant-mode partition does not refine the fresh "
                f"build: cell {sub.sid} members {sub.query_ids.tolist()} span "
                f"fresh cells {fresh_sids.tolist()}"
            )


def _check_hits_parity(incremental: SubdomainIndex, fresh: SubdomainIndex) -> None:
    """Every object's hit mask agrees: incremental == fresh == brute force."""
    weights = incremental.queries.weights
    ks = incremental.queries.ks
    matrix = incremental.dataset.matrix
    for target in range(incremental.dataset.n):
        mask_inc = incremental.hits_mask(target)
        mask_fresh = fresh.hits_mask(target)
        if not np.array_equal(mask_inc, mask_fresh):
            diverging = np.flatnonzero(mask_inc != mask_fresh)
            raise CheckFailure(
                f"hits_mask({target}) differs between the maintained index and "
                f"a fresh build at queries {diverging.tolist()}"
            )
        brute, ambiguous = brute_force_hits(matrix, weights, ks, target)
        settled = ~ambiguous
        if not np.array_equal(mask_inc[settled], brute[settled]):
            diverging = np.flatnonzero(settled & (mask_inc != brute))
            raise CheckFailure(
                f"hits_mask({target}) differs from brute-force top-k membership "
                f"at queries {diverging.tolist()}"
            )


def check_scenario(scenario: Scenario) -> SubdomainIndex:
    """Replay a scenario and run the full update-vs-rebuild differential.

    Returns the maintained index (so callers can run further oracles on
    it); raises :class:`~repro.errors.CheckFailure` or
    :class:`~repro.errors.IndexCorruptionError` on the first divergence.
    """
    index = replay(scenario)
    check_index_invariants(index)
    fresh = SubdomainIndex(
        index.dataset, index.queries, mode=index.mode, margin=index.margin
    )
    check_index_invariants(fresh)
    _check_partition_equivalence(index, fresh)
    _check_hits_parity(index, fresh)
    return index


# ----------------------------------------------------------------------
# Sharded-vs-monolithic differential (the --shards axis)
# ----------------------------------------------------------------------
def replay_sharded(scenario: Scenario, shards: int) -> ShardedSubdomainIndex:
    """Build a K-shard index for the scenario and apply its ops in order.

    Ops go through the very same :mod:`repro.core.updates` dispatcher as
    the monolithic replay, so every add/remove exercises the routed
    (queries) and fanned-out (objects) maintenance paths.
    """
    dataset = Dataset(generate(scenario.kind, scenario.n, scenario.d, scenario.seed))
    queries = uniform_queries(
        scenario.m, scenario.d, seed=scenario.seed + 1, k_range=(1, scenario.k_max)
    )
    index = ShardedSubdomainIndex(
        dataset, queries, shards=shards, mode=scenario.mode, workers=0
    )
    for op in scenario.ops:
        op.apply(index)
    return index


def _check_sharded_vs_mono(
    sharded: ShardedSubdomainIndex, mono: SubdomainIndex
) -> None:
    """Thin-merge parity: the sharded read surface equals the monolithic one.

    Thresholds and hit masks must be *float-exact* equal — every served
    per-query quantity depends only on that query's weights and the full
    object set, so sharding may not perturb a single bit.  The sharded
    mask is additionally held to brute-force membership outside tie
    bands.  In exact mode (a shard's hyperplane set is the same
    all-pairs set as the monolith's) each shard cell must equal the
    monolithic cell restricted to the shard's members, and the cell
    signatures must be byte-identical.
    """
    if sharded.queries.m != mono.queries.m or sharded.dataset.n != mono.dataset.n:
        raise CheckFailure(
            f"sharded index holds {sharded.dataset.n}x{sharded.queries.m} but the "
            f"monolithic reference {mono.dataset.n}x{mono.queries.m}"
        )
    weights = mono.queries.weights
    ks = mono.queries.ks
    matrix = mono.dataset.matrix
    for target in range(mono.dataset.n):
        ids_s, theta_s = sharded.kth_other(target)
        ids_m, theta_m = mono.kth_other(target)
        if not (np.array_equal(ids_s, ids_m) and np.array_equal(theta_s, theta_m)):
            diverging = np.flatnonzero((ids_s != ids_m) | (theta_s != theta_m))
            raise CheckFailure(
                f"kth_other({target}) diverges between sharded and monolithic "
                f"indexes at queries {diverging.tolist()}"
            )
        mask_s = sharded.hits_mask(target)
        mask_m = mono.hits_mask(target)
        if not np.array_equal(mask_s, mask_m):
            diverging = np.flatnonzero(mask_s != mask_m)
            raise CheckFailure(
                f"hits_mask({target}) diverges between sharded and monolithic "
                f"indexes at queries {diverging.tolist()}"
            )
        brute, ambiguous = brute_force_hits(matrix, weights, ks, target)
        settled = ~ambiguous
        if not np.array_equal(mask_s[settled], brute[settled]):
            diverging = np.flatnonzero(settled & (mask_s != brute))
            raise CheckFailure(
                f"sharded hits_mask({target}) differs from brute-force top-k "
                f"membership at queries {diverging.tolist()}"
            )
    if mono.mode != "exact":
        return
    for qid in range(mono.queries.m):
        members = sharded.shard_members(int(sharded._shard_of[qid]))
        expected = np.intersect1d(mono.cell_members(qid), members)
        got = np.asarray(sharded.cell_members(qid))
        if not np.array_equal(got, expected):
            raise CheckFailure(
                f"shard cell of query {qid} is {got.tolist()}, expected the "
                f"monolithic cell restricted to its shard {expected.tolist()}"
            )
        if sharded.signature_of(qid) != mono.signature_of(qid):
            raise CheckFailure(
                f"exact-mode cell signature of query {qid} diverges between the "
                "sharded and monolithic indexes"
            )


def check_sharded_scenario(scenario: Scenario, shards: int) -> ShardedSubdomainIndex:
    """The full sharded differential for one scenario.

    Four equivalences, each fatal on divergence:

    1. *maintained sharded vs maintained monolithic* — replaying the op
       sequence through the routed/fanned-out maintenance paths serves
       the same thresholds, masks (and, exact mode, cells) as the
       monolithic replay, brute force included;
    2. *update vs rebuild, per shard* — each maintained shard's
       partition equals (exact) or refines (relevant) the corresponding
       shard of a fresh build on the final data;
    3. *structural invariants* — :meth:`ShardedSubdomainIndex.validate`
       plus the monolithic invariant oracle on every shard;
    4. *K=1 degeneracy* — a one-shard index is byte-identical to the
       monolith (signatures included) in both modes.
    """
    maintained = replay_sharded(scenario, shards)
    maintained.validate()
    for s in range(maintained.shards):
        check_index_invariants(maintained.shard(s))
    mono = replay(scenario)
    _check_sharded_vs_mono(maintained, mono)

    fresh = ShardedSubdomainIndex(
        maintained.dataset,
        maintained.queries,
        shards=shards,
        mode=scenario.mode,
        workers=0,
    )
    fresh.validate()
    for s in range(shards):
        if not np.array_equal(maintained.shard_members(s), fresh.shard_members(s)):
            raise CheckFailure(
                f"maintained shard {s} owns {maintained.shard_members(s).tolist()} "
                f"but a fresh build routes {fresh.shard_members(s).tolist()}"
            )
        _check_partition_equivalence(maintained.shard(s), fresh.shard(s))

    degenerate = ShardedSubdomainIndex(
        maintained.dataset, maintained.queries, shards=1, mode=scenario.mode, workers=0
    )
    fresh_mono = SubdomainIndex(maintained.dataset, maintained.queries, mode=scenario.mode)
    for qid in range(fresh_mono.queries.m):
        if degenerate.signature_of(qid) != fresh_mono.signature_of(qid):
            raise CheckFailure(
                f"K=1 sharded index is not byte-identical to the monolith: "
                f"signature of query {qid} diverges"
            )
        if not np.array_equal(degenerate.cell_members(qid), fresh_mono.cell_members(qid)):
            raise CheckFailure(
                f"K=1 sharded index is not byte-identical to the monolith: "
                f"cell of query {qid} diverges"
            )
    return maintained


def check_shard_boundary_ties(shards: int = 4, seed: int = 0) -> None:
    """Grid-router boundary probe: queries exactly on shard bin edges.

    Builds a workload whose routed coordinate sits *exactly* on the
    ``i/K`` grid boundaries (plus one-ulp neighbours on either side) and
    checks that (a) routing is deterministic and boundary-stable across
    recomputation, (b) the sharded index still serves monolithic-parity
    masks everywhere — a query landing in the "wrong-looking" bin is
    fine, the same query landing in *different* bins on different calls
    is not — and (c) a save/load round trip (whose member maps are
    recomputed from the router, never stored) reproduces the identical
    assignment.
    """
    import tempfile

    rng = np.random.default_rng(seed)
    edges = np.linspace(0.0, 1.0, shards + 1)
    xs: list[float] = []
    for edge in edges:
        xs.append(float(edge))
        xs.append(float(np.nextafter(edge, 0.0)))
        xs.append(float(np.nextafter(edge, 1.0)))
    xs.extend(float(x) for x in rng.random(8))
    xs = [min(1.0, max(0.0, x)) for x in xs]
    weights = np.column_stack([np.asarray(xs), 1.0 - np.asarray(xs)])
    queries = QuerySet(weights, np.full(len(xs), 2))
    dataset = Dataset(generate("IN", 12, 2, seed + 1))

    sharded = ShardedSubdomainIndex(dataset, queries, shards=shards, workers=0)
    sharded.validate()
    again = sharded.router.assign(queries.weights, shards)
    if not np.array_equal(again, sharded._shard_of):
        raise CheckFailure(
            "grid routing of boundary queries is not deterministic across calls"
        )
    mono = SubdomainIndex(dataset, queries)
    _check_sharded_vs_mono(sharded, mono)

    with tempfile.TemporaryDirectory() as tmp:
        sharded.save(f"{tmp}/boundary-index")
        restored = ShardedSubdomainIndex.load(f"{tmp}/boundary-index", dataset, queries)
    restored.validate()
    if not np.array_equal(restored._shard_of, sharded._shard_of):
        raise CheckFailure(
            "save/load round trip reassigned boundary queries to different shards"
        )
    _check_sharded_vs_mono(restored, mono)


# ----------------------------------------------------------------------
# Affected-subspace vs full ESE
# ----------------------------------------------------------------------
def _compare_affected(
    evaluator: StrategyEvaluator,
    target: int,
    old_position: np.ndarray,
    new_position: np.ndarray,
    label: str,
) -> None:
    hits_affected, mask_affected = evaluator.evaluate_affected(
        target, old_position, new_position
    )
    mask_full = evaluator.hits_mask(target, new_position)
    if not np.array_equal(mask_affected, mask_full):
        diverging = np.flatnonzero(mask_affected != mask_full)
        raise CheckFailure(
            f"evaluate_affected diverges from evaluate for target {target} on a "
            f"{label} move at queries {diverging.tolist()}"
        )
    if hits_affected != int(mask_full.sum()):
        raise CheckFailure(
            f"evaluate_affected hit count {hits_affected} disagrees with its own "
            f"mask for target {target} ({label} move)"
        )


def check_affected_parity(
    index: SubdomainIndex,
    rng: np.random.Generator,
    targets: int = 2,
    moves: int = 3,
) -> None:
    """``evaluate_affected`` ≡ full re-evaluation, tie bands included.

    For each sampled target: ``moves`` random moves, then engineered
    moves that place the target's score exactly on / just inside the
    tie band of a query's threshold (where membership is decided by the
    id tie-break and the raw hyperplane side never flips — the
    ESE-parity bug's hiding spot).
    """
    evaluator = StrategyEvaluator(index)
    n = index.dataset.n
    d = index.dataset.dim
    weights = index.queries.weights
    chosen = rng.choice(n, size=min(targets, n), replace=False)
    for target in (int(t) for t in chosen):
        old = index.dataset.matrix[target].copy()
        for __ in range(moves):
            delta = rng.normal(0.0, 0.3, size=d)
            _compare_affected(evaluator, target, old, old + delta, "random")
        kth_ids, theta = evaluator.thresholds(target)
        probed = 0
        for j in range(weights.shape[0]):
            if probed >= 2 or not np.isfinite(theta[j]):
                continue
            q = weights[j]
            denom = float(q @ q)
            if denom <= 0.0:
                continue
            band = _TIE_TOL * max(1.0, abs(float(theta[j])))
            for frac in (0.0, 0.5, -0.5):
                landing = float(theta[j]) + frac * band
                new = old + q * ((landing - float(q @ old)) / denom)
                _compare_affected(evaluator, target, old, new, "tie-band")
            probed += 1


# ----------------------------------------------------------------------
# IQ result contracts
# ----------------------------------------------------------------------
def _recheck_hits(index: SubdomainIndex, result: IQResult, label: str) -> None:
    """Recount ``hits_after`` on a fresh index of the improved data."""
    improved = index.dataset.improved(result.target, result.strategy.vector)
    fresh = SubdomainIndex(improved, index.queries, mode=index.mode, margin=index.margin)
    recounted = int(fresh.hits_mask(result.target).sum())
    if recounted != result.hits_after:
        raise CheckFailure(
            f"{label} result reports hits_after={result.hits_after} but a fresh "
            f"index of the improved data counts {recounted}"
        )
    brute, ambiguous = brute_force_hits(
        improved.matrix, index.queries.weights, index.queries.ks, result.target
    )
    mask_fresh = fresh.hits_mask(result.target)
    settled = ~ambiguous
    if not np.array_equal(mask_fresh[settled], brute[settled]):
        diverging = np.flatnonzero(settled & (mask_fresh != brute))
        raise CheckFailure(
            f"{label} improved-data hit mask differs from brute force at "
            f"queries {diverging.tolist()}"
        )


def _recheck_cost(index: SubdomainIndex, result: IQResult, label: str) -> None:
    if abs(result.total_cost - result.strategy.cost) > EPS_FEASIBILITY:
        raise CheckFailure(
            f"{label} result total_cost={result.total_cost} disagrees with its "
            f"strategy cost {result.strategy.cost}"
        )
    if result.total_cost < 0.0:
        raise CheckFailure(f"{label} result reports negative cost {result.total_cost}")
    recosted = L2Cost(index.dataset.dim)(
        index.dataset.to_internal_strategy(result.strategy.vector)
    )
    if recosted > result.total_cost + EPS_FEASIBILITY:
        raise CheckFailure(
            f"{label} applied strategy re-costs to {recosted}, above the "
            f"reported accumulated spend {result.total_cost}"
        )


def check_iq_contracts(index: SubdomainIndex, rng: np.random.Generator) -> None:
    """Min-Cost / Max-Hit results must survive re-verification from scratch.

    Runs one ``min_cost`` and one ``max_hit`` query through the engine
    (L2 cost, a reachable goal / a small budget) and re-checks every
    reported field: accumulated cost vs a re-costing of the applied
    strategy, ``hits_after`` vs a fresh index of the improved data and
    brute force, and the feasibility flag vs its documented meaning.
    """
    engine = ImprovementQueryEngine.from_index(index)
    cost = L2Cost(index.dataset.dim)
    target = int(rng.integers(index.dataset.n))
    m = index.queries.m

    tau = min(m, engine.hits(target) + 2)
    if tau >= 1:
        result = engine.min_cost(target, tau, cost=cost)
        _recheck_cost(index, result, "min_cost")
        _recheck_hits(index, result, "min_cost")
        if result.satisfied != (result.hits_after >= tau):
            raise CheckFailure(
                f"min_cost satisfied={result.satisfied} contradicts "
                f"hits_after={result.hits_after} vs tau={tau}"
            )

    budget = 0.25 * (1.0 + float(rng.random()))
    result = engine.max_hit(target, budget, cost=cost)
    _recheck_cost(index, result, "max_hit")
    _recheck_hits(index, result, "max_hit")
    if result.total_cost > budget + EPS_COST:
        raise CheckFailure(
            f"max_hit spent {result.total_cost} beyond budget {budget} plus the "
            "once-only slack"
        )
    if not result.satisfied:
        raise CheckFailure(
            "max_hit returned satisfied=False; the best prefix is always within "
            "budget by construction"
        )
    if result.hits_after < result.hits_before:
        raise CheckFailure(
            f"max_hit result lost hits: {result.hits_before} -> {result.hits_after}"
        )
