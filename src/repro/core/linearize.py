"""Complex and heterogeneous utility functions (paper §5.2-§5.3).

Non-linear utilities are handled by *variable substitution*: each
non-linear component becomes an augmented attribute whose value is
computed from the original attributes, after which the utility is
linear in the augmented space and the whole §4 machinery applies.

Example (paper Eq. 20-21)::

    u(p)  = w1 (p1)^3 + w2 (p2 p3) + w3 (p4)^2
    u*(p) = w1 p5     + w2 p6     + w3 p7,   p5=(p1)^3, p6=p2 p3, p7=(p4)^2

A :class:`Term` is one augmented attribute; a :class:`UtilityFamily`
is an ordered list of terms plus the per-term mapping from user-facing
query parameters to linear weights (the mapping absorbs tricks like
``sqrt(w1 * price) = sqrt(w1) * sqrt(price)`` from the paper's car
example, Eq. 19).

Heterogeneous workloads (§5.3) — users supplying utilities of entirely
different shapes — are unified by the *generic function*: concatenate
every family's term list; a query from family ``f`` gets zero weight on
all other families' terms.  :class:`GenericSpace` builds that unified
space so each object is still interpreted as a single function.

Improvement strategies and augmentation
---------------------------------------
Strategies found in the augmented space move augmented coordinates; the
paper stores augmentation formulas and computes values on the fly but
does not spell out the inverse mapping.  We provide
:meth:`UtilityFamily.invert_move` which recovers an original-space
adjustment exactly when every term is an invertible univariate monomial
(each original attribute appearing in at most one term), and raises
otherwise — callers can then treat the augmented coordinates as the
decision variables directly (define the cost on them), which is the
interpretation the paper's experiments imply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import ValidationError

__all__ = [
    "Term",
    "monomial",
    "function_term",
    "UtilityFamily",
    "GenericSpace",
    "polynomial_family",
    "distance_family",
]


@dataclass(frozen=True)
class Term:
    """One augmented attribute of a linearized utility.

    ``evaluate`` maps the ``(n, d)`` original attribute matrix to the
    ``(n,)`` augmented column; ``weight_map`` maps the user's parameter
    for this term to the linear weight (identity by default);
    ``exponents`` is set for monomial terms and enables exact
    invertibility checks.
    """

    name: str
    evaluate: "Callable[[np.ndarray], np.ndarray]" = field(compare=False)
    weight_map: "Callable[[float], float] | None" = field(default=None, compare=False)
    exponents: tuple[tuple[int, float], ...] | None = None  #: ((attr, power), ...) for monomials, else None

    def mapped_weight(self, w: float) -> float:
        """The linear weight this term contributes for user parameter ``w``."""
        return float(w) if self.weight_map is None else float(self.weight_map(w))


def monomial(
    exponents: dict[int, float],
    name: str | None = None,
    weight_map: "Callable[[float], float] | None" = None,
) -> Term:
    """A product term ``prod_j attr_j ^ e_j`` (paper Eq. 20 components)."""
    if not exponents:
        raise ValidationError("a monomial needs at least one attribute")
    items = tuple(sorted((int(a), float(e)) for a, e in exponents.items()))
    if name is None:
        name = "*".join(f"x{a}^{e:g}" if e != 1 else f"x{a}" for a, e in items)

    def evaluate(points: np.ndarray) -> np.ndarray:
        out = np.ones(points.shape[0])
        for attr, power in items:
            out = out * np.power(points[:, attr], power)
        return out

    return Term(name=name, evaluate=evaluate, weight_map=weight_map, exponents=items)


def function_term(
    name: str,
    fn: "Callable[[np.ndarray], np.ndarray]",
    weight_map: "Callable[[float], float] | None" = None,
) -> Term:
    """An arbitrary substitution ``fn(points) -> column`` (not invertible)."""
    return Term(name=name, evaluate=fn, weight_map=weight_map, exponents=None)


class UtilityFamily:
    """An ordered list of terms defining one utility-function shape."""

    def __init__(self, terms: "Iterable[Term]", name: str = "family") -> None:
        terms = list(terms)
        if not terms:
            raise ValidationError("a utility family needs at least one term")
        self.terms = terms
        self.name = name

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    def augment(self, points: np.ndarray) -> np.ndarray:
        """Original ``(n, d)`` attributes -> augmented ``(n, t)`` matrix."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        columns = [term.evaluate(points) for term in self.terms]
        out = np.column_stack(columns)
        if not np.isfinite(out).all():
            raise ValidationError(
                f"family {self.name!r} produced non-finite augmented values"
            )
        return out

    def map_weights(self, params: "np.typing.ArrayLike") -> np.ndarray:
        """User parameters (one per term) -> linear weights."""
        params = np.atleast_1d(np.asarray(params, dtype=float))
        if params.shape != (self.num_terms,):
            raise ValidationError(
                f"family {self.name!r} expects {self.num_terms} parameters, got {params.shape}"
            )
        return np.asarray([t.mapped_weight(w) for t, w in zip(self.terms, params)])

    def score(self, points: np.ndarray, params: "np.typing.ArrayLike") -> np.ndarray:
        """Utility scores — linear in the augmented space by construction."""
        return self.augment(points) @ self.map_weights(params)

    # ------------------------------------------------------------------
    def is_invertible(self) -> bool:
        """True when every term is a univariate monomial and no original
        attribute appears in more than one term."""
        seen: set[int] = set()
        for term in self.terms:
            if term.exponents is None or len(term.exponents) != 1:
                return False
            attr, power = term.exponents[0]
            if attr in seen or power == 0:
                return False
            seen.add(attr)
        return True

    def invert_move(self, point: np.ndarray, augmented_delta: np.ndarray) -> np.ndarray:
        """Original-space strategy realizing an augmented-space move.

        Only valid for invertible families (see :meth:`is_invertible`);
        each augmented coordinate ``v' = (x_a)^e + delta`` is inverted
        as ``x_a' = (v')^(1/e)`` (attributes must stay non-negative).
        """
        if not self.is_invertible():
            raise ValidationError(
                f"family {self.name!r} is not invertible; define the cost on the "
                "augmented coordinates instead"
            )
        point = np.asarray(point, dtype=float)
        augmented_delta = np.asarray(augmented_delta, dtype=float)
        if augmented_delta.shape != (self.num_terms,):
            raise ValidationError(
                f"augmented delta shape {augmented_delta.shape} != ({self.num_terms},)"
            )
        move = np.zeros_like(point)
        current = self.augment(point[None, :])[0]
        for i, term in enumerate(self.terms):
            attr, power = term.exponents[0]
            target_value = current[i] + augmented_delta[i]
            if target_value < 0 and power != int(power):
                raise ValidationError(
                    f"term {term.name!r}: target value {target_value} not representable"
                )
            if target_value < 0 and int(power) % 2 == 0:
                raise ValidationError(
                    f"term {term.name!r}: even power cannot produce negative value"
                )
            new_attr = float(np.sign(target_value) * np.abs(target_value) ** (1.0 / power))
            move[attr] = new_attr - point[attr]
        return move


class GenericSpace:
    """The §5.3 generic function unifying heterogeneous families.

    The augmented dimension is the total number of terms across all
    families; a family-``f`` query occupies only its own slice.
    """

    def __init__(self, families: "Iterable[UtilityFamily]") -> None:
        families = list(families)
        if not families:
            raise ValidationError("need at least one utility family")
        self.families = families
        self.offsets: list[int] = []
        total = 0
        for family in families:
            self.offsets.append(total)
            total += family.num_terms
        self.total_terms = total

    def augment(self, points: np.ndarray) -> np.ndarray:
        """Original attributes -> the unified ``(n, T)`` function space."""
        blocks = [family.augment(points) for family in self.families]
        return np.hstack(blocks)

    def augmented_dataset(self, points: np.ndarray, sense: str = "min") -> Dataset:
        """A :class:`Dataset` over the unified space, ready for indexing."""
        return Dataset(self.augment(points), sense=sense)

    def query_weights(self, family_index: int, params: "np.typing.ArrayLike") -> np.ndarray:
        """Full-width weight vector for one family's query (zeros elsewhere)."""
        if not 0 <= family_index < len(self.families):
            raise ValidationError(f"family index {family_index} out of range")
        family = self.families[family_index]
        out = np.zeros(self.total_terms)
        start = self.offsets[family_index]
        out[start : start + family.num_terms] = family.map_weights(params)
        return out

    def query_set(
        self,
        queries: "Iterable[tuple[int, np.typing.ArrayLike, int]]",
        normalized: bool = False,
    ) -> QuerySet:
        """Build a :class:`QuerySet` from ``(family_index, params, k)`` triples."""
        rows: list[np.ndarray] = []
        ks: list[int] = []
        for family_index, params, k in queries:
            rows.append(self.query_weights(family_index, params))
            ks.append(int(k))
        if not rows:
            raise ValidationError("empty query list")
        return QuerySet(np.vstack(rows), np.asarray(ks), normalized=normalized)


def polynomial_family(
    term_exponents: "Iterable[dict[int, float]]", name: str = "polynomial"
) -> UtilityFamily:
    """Family from monomial exponent dicts, e.g. Eq. 20:
    ``polynomial_family([{0: 3}, {1: 1, 2: 1}, {3: 2}])``."""
    return UtilityFamily([monomial(e) for e in term_exponents], name=name)


def distance_family(dim: int, name: str = "euclidean") -> UtilityFamily:
    """The paper's Euclidean-distance conversion (Eq. 22-25).

    ``u(p) = sqrt(sum (w_j - p_j)^2)`` ranks identically to its square
    ``sum w_j^2 - 2 sum w_j p_j + sum p_j^2``; the query-only constant
    drops, leaving ``d`` linear terms (weight map ``w -> -2w``) plus one
    squared-norm term with constant weight 1.
    """
    terms = [
        monomial({j: 1.0}, name=f"x{j}", weight_map=lambda w: -2.0 * w) for j in range(dim)
    ]

    def sq_norm(points: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", points, points)

    terms.append(function_term("||x||^2", sq_norm, weight_map=lambda w: 1.0))
    return UtilityFamily(terms, name=name)
