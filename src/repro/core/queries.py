"""Top-k query workloads.

Each query (paper §3.1) carries a normalized weight vector in
``[0, 1]^d`` — the input point for the object functions — and its own
``k``.  :class:`QuerySet` stores a whole workload column-wise so every
engine operation can stay vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["QuerySet"]


class QuerySet:
    """A workload of ``m`` top-k queries over a ``d``-dimensional domain.

    Parameters
    ----------
    weights:
        ``(m, d)`` array of query weight vectors.  The paper normalizes
        weights to ``[0, 1]``; pass ``normalized=False`` to skip the
        range check for unnormalized workloads (everything still works,
        only the default domain box in the subdomain index changes).
    ks:
        Per-query ``k``; a scalar broadcasts to every query.
    """

    def __init__(
        self,
        weights: np.ndarray,
        ks: "np.typing.ArrayLike",
        normalized: bool = True,
    ) -> None:
        weights = np.array(weights, dtype=float)
        if weights.ndim != 2:
            raise ValidationError(f"weights must be 2-D, got shape {weights.shape}")
        if not np.isfinite(weights).all():
            raise ValidationError("weights contain non-finite values")
        if normalized and (weights.min(initial=0.0) < 0 or weights.max(initial=0.0) > 1):
            raise ValidationError(
                "weights outside [0, 1]; pass normalized=False for unnormalized workloads"
            )
        ks = np.broadcast_to(np.asarray(ks, dtype=int), (weights.shape[0],)).copy()
        if weights.shape[0] and ks.min() < 1:
            raise ValidationError("every k must be >= 1")
        self._weights = weights
        self._ks = ks
        self.normalized = normalized

    @property
    def m(self) -> int:
        return self._weights.shape[0]

    @property
    def dim(self) -> int:
        return self._weights.shape[1]

    def __len__(self) -> int:
        return self.m

    @property
    def weights(self) -> np.ndarray:
        view = self._weights.view()
        view.setflags(write=False)
        return view

    @property
    def ks(self) -> np.ndarray:
        view = self._ks.view()
        view.setflags(write=False)
        return view

    @property
    def max_k(self) -> int:
        return int(self._ks.max()) if self.m else 0

    def query(self, query_id: int) -> tuple[np.ndarray, int]:
        """The ``(weights, k)`` pair of one query."""
        self._check_id(query_id)
        return self._weights[query_id].copy(), int(self._ks[query_id])

    # -- mutation (returns new sets; ids above a removal shift down) ------
    def with_query(self, weights: np.ndarray, k: int) -> tuple["QuerySet", int]:
        """A new workload with one query appended; returns (set, id)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.dim,):
            raise ValidationError(f"query shape {weights.shape} != ({self.dim},)")
        stacked = np.vstack([self._weights, weights[None, :]])
        ks = np.concatenate([self._ks, [int(k)]])
        return QuerySet(stacked, ks, normalized=self.normalized), self.m

    def without_query(self, query_id: int) -> "QuerySet":
        """A new workload with one query removed (ids above shift down)."""
        self._check_id(query_id)
        mask = np.ones(self.m, dtype=bool)
        mask[query_id] = False
        return QuerySet(self._weights[mask], self._ks[mask], normalized=self.normalized)

    def subset(self, query_ids: "np.typing.ArrayLike") -> "QuerySet":
        """A new workload restricted to the given query ids (in order)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        return QuerySet(self._weights[query_ids], self._ks[query_ids], normalized=self.normalized)

    def _check_id(self, query_id: int) -> None:
        if not 0 <= query_id < self.m:
            raise ValidationError(f"query id {query_id} out of range [0, {self.m})")

    def __repr__(self) -> str:
        return f"QuerySet(m={self.m}, dim={self.dim}, max_k={self.max_k})"
