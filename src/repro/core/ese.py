"""Efficient Strategy Evaluation (paper §4.1, Algorithm 2).

Computes ``H(p + s)`` — how many queries the improved target hits —
without re-evaluating the workload from scratch:

* The membership condition is Eq. 6: the improved target enters the
  top-k of query ``q`` iff its score beats ``theta_q``, the score of
  the k-th ranked object among ``D \\ {target}``.  The *identity* of
  that k-th object is constant within a subdomain, so the subdomain
  index's shared representative rankings yield all thresholds with at
  most one evaluation per subdomain.
* Crucially, the thresholds do not depend on where the target currently
  sits (the target is excluded), so they are computed once per target
  and reused across every candidate strategy and every greedy iteration
  — this is what makes the inner loop of Algorithms 3/4 cheap.

Two evaluation paths are provided:

* :meth:`StrategyEvaluator.evaluate` / :meth:`evaluate_many` — the
  vectorized production path, ``O(m d)`` per candidate.
* :meth:`StrategyEvaluator.evaluate_affected` — the literal
  affected-subspace formulation: retrieve, via the R-tree, only the
  query points lying between the old and new intersection hyperplanes
  (Eq. 4-5) and update the previous hit mask incrementally.  Used by
  the tests as a cross-check and by the ESE-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.sharding import IndexProtocol
from repro.core.subdomain import _TIE_TOL, _beats, _beats_batch
from repro.errors import ValidationError
from repro.index.rtree import Rect
from repro.native import kernel as _kernel

__all__ = ["StrategyEvaluator"]

#: Candidate-batch matrices are chunked to stay under this many floats.
_CHUNK_BUDGET = 4_000_000


def _slab_region(value: float, theta: float) -> int:
    """Classify a query against one intersection hyperplane: -1 / 0 / +1.

    ``value`` is the query's signed offset ``q . (position - p_l)`` and
    ``theta`` the other object's score ``q . p_l``.  Region ``0`` is the
    relative tie band that :func:`~repro.core.subdomain._beats` resolves
    by object id; the affected-subspace retrieval must treat it as its
    own region, because a move that enters or leaves the band changes
    membership through the tie rule even when the raw sign of ``value``
    never flips (the ESE-parity bug the correctness harness guards).
    """
    band = _TIE_TOL * max(1.0, abs(theta))
    if value < -band:
        return -1
    if value > band:
        return 1
    return 0


def _inside_domain(rect: Rect, query_id: int) -> bool:
    """Domain-only R-tree predicate: geometry filters, the kernel classifies.

    :meth:`StrategyEvaluator.affected_queries` retrieves every query
    point inside the workload domain with one scan, then runs the slab
    test as a batched ``slab_crossings`` kernel pass — so the per-leaf
    predicate accepts everything.
    """
    return True


class StrategyEvaluator:
    """ESE over any :class:`~repro.core.sharding.IndexProtocol` index.

    Works identically over the monolithic
    :class:`~repro.core.subdomain.SubdomainIndex` and the
    :class:`~repro.core.sharding.ShardedSubdomainIndex`: thresholds come
    from :meth:`kth_other` (merged per shard), the affected-subspace
    retrieval from :meth:`affected_candidates` (fanned out per shard).
    """

    def __init__(self, index: IndexProtocol) -> None:
        self.index = index
        self._target_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Epoch-based invalidation: the cache remembers which index
        # epoch it was built at and is dropped lazily when the index
        # reports a newer one — so any mutation, including a direct
        # repro.core.updates call that bypasses every engine wrapper,
        # invalidates it without anyone having to notify us.
        self._epoch = index.epoch
        self.full_evaluations = 0  #: vectorized H computations
        self.incremental_evaluations = 0  #: affected-subspace H computations
        self.affected_retrieved = 0  #: query points pulled from affected subspaces

    # ------------------------------------------------------------------
    # Threshold cache
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Drop state built at an older index epoch (lazy invalidation)."""
        if self._epoch != self.index.epoch:
            self._target_cache.clear()
            self._epoch = self.index.epoch
            self._refresh()

    def _refresh(self) -> None:
        """Hook for subclasses holding extra epoch-scoped state."""

    def thresholds(self, target: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(kth_ids, theta)`` for a target (see Eq. 6)."""
        self._sync()
        cached = self._target_cache.get(target)
        if cached is None:
            cached = self.index.kth_other(target)
            self._target_cache[target] = cached
        return cached

    def invalidate(self, target: int | None = None) -> None:
        """Drop cached thresholds eagerly (epoch comparison does this lazily)."""
        if target is None:
            self._target_cache.clear()
        else:
            self._target_cache.pop(target, None)

    # ------------------------------------------------------------------
    # Hit counting
    # ------------------------------------------------------------------
    def hits_mask(self, target: int, position: np.ndarray | None = None) -> np.ndarray:
        """Mask of queries hit by the target at ``position``.

        ``position`` is the target's *internal* attribute vector
        (defaults to its current location in the dataset), so the same
        cache answers "what if the target moved here?" for free.
        """
        kth_ids, theta = self.thresholds(target)
        if position is None:
            position = self.index.dataset.matrix[target]
        position = np.asarray(position, dtype=float)
        if position.shape != (self.index.dataset.dim,):
            raise ValidationError(
                f"position shape {position.shape} != ({self.index.dataset.dim},)"
            )
        scores = self.index.queries.weights @ position
        self.full_evaluations += 1
        return _beats(scores, theta, target, kth_ids)

    def hits(self, target: int, position: np.ndarray | None = None) -> int:
        """``H(target)`` at the given (or current) position."""
        return int(self.hits_mask(target, position).sum())

    def evaluate(self, target: int, strategy: np.ndarray) -> int:
        """``H(p + s)`` for an internal strategy vector ``s``."""
        base = self.index.dataset.matrix[target]
        return self.hits(target, base + np.asarray(strategy, dtype=float))

    def evaluate_many(self, target: int, positions: np.ndarray) -> np.ndarray:
        """``H`` for a batch of candidate positions, shape ``(c, d)``.

        The batched matrix product is chunked so huge workloads do not
        materialize an ``m x c`` score matrix all at once.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        if positions.shape[1] != self.index.dataset.dim:
            raise ValidationError(
                f"positions must be (c, {self.index.dataset.dim}), got {positions.shape}"
            )
        kth_ids, theta = self.thresholds(target)
        weights = self.index.queries.weights
        m = weights.shape[0]
        c = positions.shape[0]
        out = np.empty(c, dtype=np.intp)
        chunk = max(1, _CHUNK_BUDGET // max(1, m))
        for start in range(0, c, chunk):
            block = positions[start : start + chunk]
            scores = weights @ block.T  # (m, b)
            out[start : start + block.shape[0]] = _beats_batch(
                scores, theta, target, kth_ids
            ).sum(axis=0)
        self.full_evaluations += c
        return out

    # ------------------------------------------------------------------
    # Affected-subspace path (Algorithm 2, literal)
    # ------------------------------------------------------------------
    def affected_queries(
        self, target: int, old_position: np.ndarray, new_position: np.ndarray
    ) -> np.ndarray:
        """Queries inside any affected subspace of the move (Eq. 4-5).

        For every other object ``l``, the affected subspace is the slab
        between the old intersection ``q . (p_old - p_l) = 0`` and the
        new one ``q . (p_new - p_l) = 0``; a query's result can change
        only if it lies strictly between them (Fact 1).  The retrieval
        runs through the R-tree with the slab conditions as the leaf
        predicate, exactly the range-query formulation of §4.1.

        The slab test is widened by the same relative tie band that
        :func:`~repro.core.subdomain._beats` applies (see
        :func:`_slab_region`): a query whose score enters or leaves the
        band changes membership through the id tie-break without the raw
        side of either hyperplane flipping, so it must count as
        affected for :meth:`evaluate_affected` to equal
        :meth:`evaluate`.

        The retrieval runs in two stages: one R-tree scan collects the
        candidate query points inside the domain, then the slab
        classification runs as one batched pass per chunk of other
        objects through the ``slab_crossings`` kernel
        (:mod:`repro.native`) instead of a per-candidate python closure
        — the hottest loop of the incremental path.
        """
        dataset = self.index.dataset
        old_position = np.asarray(old_position, dtype=float)
        new_position = np.asarray(new_position, dtype=float)
        others = np.asarray(
            [l for l in range(dataset.n) if l != target], dtype=np.intp
        )
        domain = Rect.from_arrays(
            np.zeros(dataset.dim), np.ones(dataset.dim)
        ) if self.index.queries.normalized else self._workload_bbox()
        candidates = np.asarray(
            self.index.affected_candidates(domain, _inside_domain), dtype=np.intp
        )
        candidates.sort()  # ascending ids, like the set-union formulation
        if candidates.size == 0 or others.size == 0:
            return np.empty(0, dtype=np.intp)
        points = self.index.queries.weights[candidates]  # (c, d)
        crossing = _kernel("slab_crossings")
        mask = np.zeros(candidates.shape[0], dtype=bool)
        # Chunk the (c, b) slab matrices like evaluate_many chunks its
        # score blocks, so huge workloads never materialize c x (n-1).
        chunk = max(1, _CHUNK_BUDGET // max(1, candidates.shape[0]))
        for start in range(0, others.shape[0], chunk):
            block = dataset.matrix[others[start : start + chunk]]  # (b, d)
            theta = points @ block.T  # (c, b) other-object scores
            old_values = points @ (old_position - block).T
            new_values = points @ (new_position - block).T
            mask |= crossing(old_values, new_values, theta, _TIE_TOL).any(axis=1)
        affected = candidates[mask]
        self.affected_retrieved += int(affected.shape[0])
        return affected

    def evaluate_affected(
        self,
        target: int,
        old_position: np.ndarray,
        new_position: np.ndarray,
        base_mask: np.ndarray | None = None,
    ) -> tuple[int, np.ndarray]:
        """Incremental ``H`` update touching only affected queries.

        Returns ``(hits, new_mask)``.  Unaffected queries keep their
        previous membership (Fact 1); affected ones are re-tested with
        the threshold shortcut (the rank-switch of Fact 2 collapses to
        re-checking Eq. 6 against the unchanged k-th-other threshold).
        """
        if base_mask is None:
            base_mask = self.hits_mask(target, old_position)
        new_mask = base_mask.copy()
        affected = self.affected_queries(target, old_position, new_position)
        if affected.size:
            kth_ids, theta = self.thresholds(target)
            weights = self.index.queries.weights[affected]
            scores = weights @ np.asarray(new_position, dtype=float)
            new_mask[affected] = _beats(
                scores, theta[affected], target, kth_ids[affected]
            )
        self.incremental_evaluations += 1
        return int(new_mask.sum()), new_mask

    def _workload_bbox(self) -> Rect:
        weights = self.index.queries.weights
        return Rect.from_arrays(weights.min(axis=0), weights.max(axis=0))
