"""The Improvement Query engine — the library's main entry point.

Ties the subdomain index, ESE, the greedy searches, the baselines, and
the maintenance operations behind one object::

    engine = ImprovementQueryEngine(dataset, queries)
    result = engine.min_cost(target=3, tau=25)          # Min-Cost IQ
    result = engine.max_hit(target=3, budget=2.0)       # Max-Hit IQ
    plan = engine.explain(target=3, tau=25)             # plan only

The engine itself is a thin façade over four explicit layers:

* **planner** (:mod:`repro.core.plan`) — every query first builds a
  frozen :class:`~repro.core.plan.ExecutionPlan`; :meth:`explain`
  returns that plan without executing it.
* **solver registry** (:mod:`repro.core.solvers`) — ``method="..."``
  resolves through :func:`~repro.core.solvers.get_solver`; the five
  paper schemes and any third-party solver dispatch identically.
* **boundary** (:mod:`repro.core.boundary`) — everything user-facing is
  expressed in the dataset's own attribute convention (``sense="min"``
  or ``"max"``); costs, strategy bounds, and result strategies are
  converted to/from the internal min-convention at this layer.
* **epoch bus** (:attr:`~repro.core.subdomain.SubdomainIndex.epoch`) —
  evaluators compare index epochs lazily, so mutating the index
  directly through :mod:`repro.core.updates` (bypassing the engine's
  wrappers) can never serve stale results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.rta import RTAEvaluator
from repro.core import updates
from repro.core.boundary import (
    externalize_multi,
    externalize_result,
    internalize,
    internalize_multi,
)
from repro.core.combinatorial import (
    MultiTargetResult,
    _normalize_per_target,
    combinatorial_max_hit,
    combinatorial_min_cost,
)
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.plan import ExecutedPlan, ExecutionPlan, build_plan
from repro.core.queries import QuerySet
from repro.core.results import IQResult
from repro.core.sharding import ShardedSubdomainIndex, build_index
from repro.core.solvers import Solver, get_solver, registered_solvers
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError
from repro.index.router import ShardRouter
from repro.native import native_available, resolve_backend, use_backend
from repro.observe import (
    StageRecorder,
    choose_kernel,
    choose_method,
    default_store,
    knob_advisories,
    now,
    observing,
    stage,
    workload_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.persistent import PersistentPool

__all__ = ["ImprovementQueryEngine"]


class ImprovementQueryEngine:
    """Improvement queries over a dataset and a top-k workload.

    Parameters
    ----------
    dataset:
        The object set (its ``sense`` fixes the ranking convention).
    queries:
        The top-k workload.
    mode, margin:
        Subdomain-index construction options (see
        :class:`~repro.core.subdomain.SubdomainIndex`).
    workers:
        Construction pool size (see
        :class:`~repro.core.subdomain.SubdomainIndex`); ``None`` defers
        to the ``REPRO_WORKERS`` environment variable, below 2 runs the
        serial reference path.  Surfaced by :meth:`explain` as the
        plan's ``workers`` field.
    shards:
        Workload shard count for the index layer: ``None`` builds the
        monolithic reference index, an integer builds that many shards,
        and ``"auto"`` lets :func:`~repro.core.sharding.resolve_shards`
        pick from the workload size and the resolved worker count.
        Surfaced by :meth:`explain` as ``shards``/``routing``/
        ``shard_sizes``.
    router:
        Shard routing policy (a name or a
        :class:`~repro.index.router.ShardRouter`); only consulted when
        the resolved shard count exceeds 1.
    kernel:
        Hot-path kernel backend request: ``"python"`` (the canonical
        numpy path), ``"native"`` (numba-jitted kernels, degrading
        gracefully to python when numba is absent), or ``"auto"``
        (native when available).  ``None`` defers to the
        ``REPRO_KERNEL`` environment variable, then ``"auto"``.  The
        engine pins its *resolved* backend around every execution, so
        pooled workers and concurrent engines with different backends
        stay deterministic; :meth:`explain` surfaces both the requested
        and the resolved value.
    """

    def __init__(
        self,
        dataset: Dataset,
        queries: QuerySet,
        mode: str = "exact",
        margin: int = 2,
        workers: "int | str | None" = None,
        shards: "int | str | None" = None,
        router: "str | ShardRouter | None" = None,
        kernel: "str | None" = None,
    ) -> None:
        self.kernel_requested, self.kernel_backend = resolve_backend(kernel)
        self.index: "SubdomainIndex | ShardedSubdomainIndex" = build_index(
            dataset,
            queries,
            mode=mode,
            margin=margin,
            shards=shards,
            router=router,
            workers=workers,
        )
        self.evaluator = StrategyEvaluator(self.index)
        self._rta_evaluator: RTAEvaluator | None = None

    @classmethod
    def from_index(
        cls,
        index: "SubdomainIndex | ShardedSubdomainIndex",
        kernel: "str | None" = None,
    ) -> "ImprovementQueryEngine":
        """Wrap an existing index (e.g. one restored by
        :meth:`SubdomainIndex.load` or
        :meth:`ShardedSubdomainIndex.load`) without rebuilding it."""
        engine = cls.__new__(cls)
        engine.kernel_requested, engine.kernel_backend = resolve_backend(kernel)
        engine.index = index
        engine.evaluator = StrategyEvaluator(index)
        engine._rta_evaluator = None
        return engine

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self.index.dataset

    @property
    def queries(self) -> QuerySet:
        return self.index.queries

    @property
    def epoch(self) -> int:
        """The index's mutation epoch (see :class:`SubdomainIndex`).

        Every consumer that caches derived state — the evaluators, the
        persistent worker pool, the serving layer — keys its validity on
        this counter, so a mutation through *any* path (engine wrappers
        or :mod:`repro.core.updates` directly) invalidates them all.
        """
        return self.index.epoch

    def pool(
        self, workers: "int | str | None" = None, warm: bool = True
    ) -> "PersistentPool":
        """A :class:`~repro.parallel.persistent.PersistentPool` for this engine.

        The pool forks workers holding the built index once and serves
        repeated batches without per-call pool startup; see
        :func:`repro.parallel.run_batch` (``pool=``) and ``repro serve``.
        """
        from repro.parallel.persistent import PersistentPool

        return PersistentPool(self, workers=workers, warm=warm)

    # ------------------------------------------------------------------
    # Read-side queries
    # ------------------------------------------------------------------
    def hits(self, target: int) -> int:
        """``H(target)``: how many workload queries the object hits now."""
        with use_backend(self.kernel_backend):
            return self.evaluator.hits(target)

    def reverse_top_k(self, target: int) -> np.ndarray:
        """Ids of the queries currently hit (a reverse top-k query [21])."""
        with use_backend(self.kernel_backend):
            return np.flatnonzero(self.evaluator.hits_mask(target))

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def explain(
        self,
        target: int,
        tau: int | None = None,
        budget: float | None = None,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
    ) -> ExecutionPlan:
        """The plan a :meth:`min_cost` / :meth:`max_hit` call would run.

        Exactly one of ``tau`` (Min-Cost) or ``budget`` (Max-Hit) picks
        the query kind; the returned
        :class:`~repro.core.plan.ExecutionPlan` is frozen and nothing is
        executed.  An executed call with the same arguments runs exactly
        this plan.
        """
        if (tau is None) == (budget is None):
            raise ValidationError(
                "explain needs exactly one of tau (min_cost) or budget (max_hit)"
            )
        if tau is not None:
            return self._plan("min_cost", target, tau, cost, space, method)[0]
        return self._plan("max_hit", target, float(budget), cost, space, method)[0]

    def explain_multi(
        self,
        targets: list[int],
        tau: int | None = None,
        budget: float | None = None,
        costs: "CostFunction | dict[int, CostFunction] | None" = None,
        spaces: "StrategySpace | dict[int, StrategySpace] | None" = None,
    ) -> tuple[ExecutionPlan, ...]:
        """Per-target plans a multi-target call would run (nothing executes).

        The combinatorial solver interleaves the targets in one joint
        greedy loop (§5.1), so the plans share every index/kernel field
        and differ only in ``target`` and per-target cost/space.
        """
        if (tau is None) == (budget is None):
            raise ValidationError(
                "explain_multi needs exactly one of tau (min_cost) or budget (max_hit)"
            )
        if tau is not None:
            return self._plan_multi("min_cost", targets, tau, costs, spaces)[0]
        return self._plan_multi("max_hit", targets, float(budget), costs, spaces)[0]

    def _available_backends(self) -> tuple[str, ...]:
        """Kernel backends the feedback rule may choose in this process."""
        if native_available():
            return ("python", "native")
        return ("python",)

    def _plan(
        self,
        kind: str,
        target: int,
        goal: float,
        cost: CostFunction | None,
        space: StrategySpace | None,
        method: str,
    ) -> tuple[ExecutionPlan, CostFunction, StrategySpace | None]:
        """Plan step: resolve the solver, internalize, snapshot the index.

        ``method="auto"`` and an ``"auto"`` kernel request are resolved
        here by the feedback rules (:mod:`repro.observe.feedback`)
        against the recorded stats for this workload's fingerprint; each
        resolution appends its stat-citing note to the plan.
        """
        with stage("plan"):
            extra_notes: list[str] = []
            kernel = (self.kernel_requested, self.kernel_backend)
            if method == "auto" or self.kernel_requested == "auto":
                fingerprint = workload_fingerprint(self.index, kind)
                store = default_store()
                if method == "auto":
                    choice = choose_method(store, fingerprint, registered_solvers())
                    method = choice.value
                    extra_notes.append(choice.note)
                if self.kernel_requested == "auto":
                    kernel_choice = choose_kernel(
                        store, fingerprint, self._available_backends()
                    )
                    if kernel_choice is not None:
                        kernel = (self.kernel_requested, kernel_choice.value)
                        extra_notes.append(kernel_choice.note)
            solver = get_solver(method)
            cost_int, space_int = internalize(self.dataset, cost, space)
            plan = build_plan(
                self.index, solver, kind, target, goal, cost_int, space_int,
                extra_notes=tuple(extra_notes), kernel=kernel,
            )
        return plan, cost_int, space_int

    def _execute(
        self,
        kind: str,
        target: int,
        goal: float,
        cost: CostFunction | None,
        space: StrategySpace | None,
        method: str,
        kwargs: dict[str, object],
    ) -> IQResult:
        """Plan-then-run for one query (see :meth:`_run`)."""
        plan, cost_int, space_int = self._plan(kind, target, goal, cost, space, method)
        return self._run(plan, kind, target, goal, cost_int, space_int, kwargs)

    def _run(
        self,
        plan: ExecutionPlan,
        kind: str,
        target: int,
        goal: float,
        cost_int: CostFunction,
        space_int: StrategySpace | None,
        kwargs: dict[str, object],
    ) -> IQResult:
        """Execute step: hand the planned solver its evaluator.

        The plan\'s resolved kernel backend is pinned for the whole
        solver run, so every ``_beats_batch`` / slab-scan dispatch under
        this call uses it regardless of the process-global default.
        """
        with use_backend(plan.kernel_backend):
            with stage("solve"):
                result = plan.solver.run(
                    kind, self._evaluator_for(plan.solver), target, goal,
                    cost_int, space_int, **kwargs,
                )
        return externalize_result(self.dataset, result)

    def analyze(
        self,
        target: int,
        tau: int | None = None,
        budget: float | None = None,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> tuple[IQResult, ExecutedPlan]:
        """EXPLAIN ANALYZE: run the query and return ``(result, plan+stats)``.

        The result is byte-identical to the plain :meth:`min_cost` /
        :meth:`max_hit` call (``repro check --analyze`` enforces this):
        the observation layer only reads the clock and counts.  The
        executed plan is recorded in the process stats store, which is
        what future ``method="auto"`` requests consult.
        """
        if (tau is None) == (budget is None):
            raise ValidationError(
                "analyze needs exactly one of tau (min_cost) or budget (max_hit)"
            )
        kind = "min_cost" if tau is not None else "max_hit"
        goal: float = tau if tau is not None else float(budget)  # type: ignore[assignment]
        recorder = StageRecorder()
        started = now()
        with observing(recorder):
            plan, cost_int, space_int = self._plan(
                kind, target, goal, cost, space, method
            )
            result = self._run(plan, kind, target, goal, cost_int, space_int, kwargs)
        total = now() - started
        executed = self._record_run(kind, plan, recorder, total)
        return result, executed

    def _record_run(
        self,
        kind: str,
        plan: ExecutionPlan,
        recorder: StageRecorder,
        total_seconds: float,
        record: bool = True,
    ) -> ExecutedPlan:
        """Build the :class:`ExecutedPlan` and file it in the stats store."""
        store = default_store()
        fingerprint = workload_fingerprint(self.index, kind)
        advisories = tuple(
            choice.note for choice in knob_advisories(store, fingerprint)
        )
        executed = ExecutedPlan.from_plan(
            plan,
            fingerprint=fingerprint,
            total_seconds=total_seconds,
            stage_seconds=recorder.seconds,
            counts=recorder.counts,
            extra_notes=advisories,
        )
        if record:
            store.record(executed)
        return executed

    def _evaluator_for(self, solver: Solver) -> StrategyEvaluator:
        """The evaluation engine a solver declares ("rta" or ESE default)."""
        if solver.evaluator == "rta":
            if self._rta_evaluator is None:
                self._rta_evaluator = RTAEvaluator(self.index)
            return self._rta_evaluator
        return self.evaluator

    # ------------------------------------------------------------------
    # Improvement queries
    # ------------------------------------------------------------------
    def min_cost(
        self,
        target: int,
        tau: int,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> IQResult:
        """Min-Cost IQ: cheapest strategy with ``H(target + s) >= tau``.

        ``method`` selects the processing scheme of §6.1 by registry
        name: ``"efficient"`` (Efficient-IQ, the paper's contribution),
        ``"rta"``, ``"greedy"``, ``"random"``, or ``"exhaustive"``
        (exact, tiny workloads only) — plus any solver registered via
        :func:`repro.core.solvers.register_solver`.
        """
        return self._execute("min_cost", target, tau, cost, space, method, kwargs)

    def max_hit(
        self,
        target: int,
        budget: float,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> IQResult:
        """Max-Hit IQ: maximize ``H(target + s)`` with ``Cost(s) <= budget``."""
        return self._execute("max_hit", target, budget, cost, space, method, kwargs)

    # ------------------------------------------------------------------
    # Combinatorial (multi-target) improvement (§5.1)
    # ------------------------------------------------------------------
    def _plan_multi(
        self,
        kind: str,
        targets: list[int],
        goal: float,
        costs: "CostFunction | dict[int, CostFunction] | None",
        spaces: "StrategySpace | dict[int, StrategySpace] | None",
    ) -> tuple[
        tuple[ExecutionPlan, ...],
        "CostFunction | dict[int, CostFunction]",
        "StrategySpace | dict[int, StrategySpace] | None",
    ]:
        """Plan step for a combinatorial query: one plan per target.

        Every target id is validated *before* any internalization or
        solver work runs, so an invalid id fails with
        :class:`~repro.errors.ValidationError` and leaves nothing half
        done; each plan snapshots the same index epoch the joint greedy
        loop will run against.
        """
        with stage("plan"):
            target_list = [int(t) for t in targets]
            if not target_list:
                raise ValidationError("multi-target query needs at least one target")
            for t in target_list:
                self.dataset._check_id(t)
            solver = get_solver("efficient")
            costs_int, spaces_int = internalize_multi(
                self.dataset, target_list, costs, spaces
            )
            costs_map = _normalize_per_target(costs_int, target_list, "cost function")
            if isinstance(spaces_int, dict):
                spaces_map: dict[int, StrategySpace | None] = dict(
                    _normalize_per_target(spaces_int, target_list, "strategy space")
                )
            else:
                spaces_map = {t: spaces_int for t in target_list}
            note = (
                f"combinatorial {kind} over {len(target_list)} targets: one joint "
                f"greedy loop interleaves per-target moves (§5.1)"
            )
            plans = tuple(
                build_plan(
                    self.index, solver, kind, t, goal, costs_map[t], spaces_map[t],
                    extra_notes=(note,),
                    kernel=(self.kernel_requested, self.kernel_backend),
                )
                for t in target_list
            )
        return plans, costs_int, spaces_int

    def _run_multi(
        self,
        plans: tuple[ExecutionPlan, ...],
        kind: str,
        goal: float,
        costs_int: "CostFunction | dict[int, CostFunction]",
        spaces_int: "StrategySpace | dict[int, StrategySpace] | None",
        kwargs: dict[str, object],
    ) -> MultiTargetResult:
        """Execute step for a combinatorial query (joint greedy loop)."""
        solve = combinatorial_min_cost if kind == "min_cost" else combinatorial_max_hit
        targets = [plan.target for plan in plans]
        with use_backend(plans[0].kernel_backend):
            with stage("solve"):
                result = solve(
                    self.index, targets, goal, costs_int, spaces_int, **kwargs
                )
        return externalize_multi(self.dataset, result)

    def min_cost_multi(
        self,
        targets: list[int],
        tau: int,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> MultiTargetResult:
        """Combinatorial Min-Cost IQ over several targets (Def. 5)."""
        plans, costs_int, spaces_int = self._plan_multi(
            "min_cost", targets, tau, costs, spaces
        )
        return self._run_multi(plans, "min_cost", tau, costs_int, spaces_int, kwargs)

    def max_hit_multi(
        self,
        targets: list[int],
        budget: float,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> MultiTargetResult:
        """Combinatorial Max-Hit IQ over several targets (Def. 6)."""
        plans, costs_int, spaces_int = self._plan_multi(
            "max_hit", targets, float(budget), costs, spaces
        )
        return self._run_multi(
            plans, "max_hit", float(budget), costs_int, spaces_int, kwargs
        )

    def analyze_multi(
        self,
        targets: list[int],
        tau: int | None = None,
        budget: float | None = None,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> tuple[MultiTargetResult, tuple[ExecutedPlan, ...]]:
        """EXPLAIN ANALYZE for a combinatorial query.

        Returns the (byte-identical) multi-target result plus one
        :class:`ExecutedPlan` per target; the joint greedy loop is one
        run, so the per-target plans share the same observed timings and
        only the first is filed in the stats store.
        """
        if (tau is None) == (budget is None):
            raise ValidationError(
                "analyze_multi needs exactly one of tau (min_cost) or budget (max_hit)"
            )
        kind = "min_cost" if tau is not None else "max_hit"
        goal: float = tau if tau is not None else float(budget)  # type: ignore[assignment]
        recorder = StageRecorder()
        started = now()
        with observing(recorder):
            plans, costs_int, spaces_int = self._plan_multi(
                kind, targets, goal, costs, spaces
            )
            result = self._run_multi(plans, kind, goal, costs_int, spaces_int, kwargs)
        total = now() - started
        executed = tuple(
            self._record_run(kind, plan, recorder, total, record=(i == 0))
            for i, plan in enumerate(plans)
        )
        return result, executed

    # ------------------------------------------------------------------
    # Workload / dataset maintenance (§4.3)
    # ------------------------------------------------------------------
    # No manual cache invalidation here: every mutation bumps the
    # index's epoch and the evaluators re-sync lazily, whether the
    # mutation came through these wrappers or straight from
    # repro.core.updates.
    def add_query(self, weights: "np.typing.ArrayLike", k: int) -> int:
        """Add a top-k query to the workload (§4.3); returns its id."""
        return updates.add_query(self.index, np.asarray(weights, dtype=float), k)

    def remove_query(self, query_id: int) -> None:
        """Remove a query (§4.3); ids above it shift down."""
        updates.remove_query(self.index, query_id)

    def add_object(self, attributes: "np.typing.ArrayLike") -> int:
        """Add an object (§4.3); returns its id."""
        return updates.add_object(self.index, np.asarray(attributes, dtype=float))

    def remove_object(self, object_id: int) -> None:
        """Remove an object (§4.3); ids above it shift down."""
        updates.remove_object(self.index, object_id)
