"""The Improvement Query engine — the library's main entry point.

Ties the subdomain index, ESE, the greedy searches, the baselines, and
the maintenance operations behind one object::

    engine = ImprovementQueryEngine(dataset, queries)
    result = engine.min_cost(target=3, tau=25)          # Min-Cost IQ
    result = engine.max_hit(target=3, budget=2.0)       # Max-Hit IQ

Everything user-facing is expressed in the dataset's own attribute
convention (``sense="min"`` or ``"max"``); the engine converts costs,
strategy bounds, and result strategies to/from the internal
min-convention at this boundary.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy import greedy_max_hit_iq, greedy_min_cost_iq
from repro.baselines.random_search import random_max_hit_iq, random_min_cost_iq
from repro.baselines.rta import RTAEvaluator
from repro.core import updates
from repro.core.combinatorial import (
    MultiTargetResult,
    combinatorial_max_hit,
    combinatorial_min_cost,
)
from repro.core.cost import (
    AsymmetricLinearCost,
    CallableCost,
    CostFunction,
    euclidean_cost,
)
from repro.core.ese import StrategyEvaluator
from repro.core.exhaustive import exhaustive_max_hit, exhaustive_min_cost
from repro.core.maxhit import max_hit_iq
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.results import IQResult
from repro.core.strategy import Strategy, StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError

__all__ = ["ImprovementQueryEngine"]

_METHODS = ("efficient", "rta", "greedy", "random", "exhaustive")


class ImprovementQueryEngine:
    """Improvement queries over a dataset and a top-k workload.

    Parameters
    ----------
    dataset:
        The object set (its ``sense`` fixes the ranking convention).
    queries:
        The top-k workload.
    mode, margin:
        Subdomain-index construction options (see
        :class:`~repro.core.subdomain.SubdomainIndex`).
    """

    def __init__(
        self,
        dataset: Dataset,
        queries: QuerySet,
        mode: str = "exact",
        margin: int = 2,
    ) -> None:
        self.index = SubdomainIndex(dataset, queries, mode=mode, margin=margin)
        self.evaluator = StrategyEvaluator(self.index)
        self._rta_evaluator: RTAEvaluator | None = None

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self.index.dataset

    @property
    def queries(self) -> QuerySet:
        return self.index.queries

    # ------------------------------------------------------------------
    # Read-side queries
    # ------------------------------------------------------------------
    def hits(self, target: int) -> int:
        """``H(target)``: how many workload queries the object hits now."""
        return self.evaluator.hits(target)

    def reverse_top_k(self, target: int) -> np.ndarray:
        """Ids of the queries currently hit (a reverse top-k query [21])."""
        return np.flatnonzero(self.evaluator.hits_mask(target))

    # ------------------------------------------------------------------
    # Improvement queries
    # ------------------------------------------------------------------
    def min_cost(
        self,
        target: int,
        tau: int,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> IQResult:
        """Min-Cost IQ: cheapest strategy with ``H(target + s) >= tau``.

        ``method`` selects the processing scheme of §6.1:
        ``"efficient"`` (Efficient-IQ, the paper's contribution),
        ``"rta"``, ``"greedy"``, ``"random"``, or ``"exhaustive"``
        (exact, tiny workloads only).
        """
        cost_int, space_int = self._internalize(cost, space)
        if method == "efficient":
            result = min_cost_iq(self.evaluator, target, tau, cost_int, space_int, **kwargs)
        elif method == "rta":
            result = min_cost_iq(self._rta(), target, tau, cost_int, space_int, **kwargs)
        elif method == "greedy":
            result = greedy_min_cost_iq(self.evaluator, target, tau, cost_int, space_int, **kwargs)
        elif method == "random":
            result = random_min_cost_iq(self.evaluator, target, tau, cost_int, space_int, **kwargs)
        elif method == "exhaustive":
            result = exhaustive_min_cost(self.evaluator, target, tau, cost_int, space_int, **kwargs)
        else:
            raise ValidationError(f"method must be one of {_METHODS}, got {method!r}")
        return self._externalize(result)

    def max_hit(
        self,
        target: int,
        budget: float,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> IQResult:
        """Max-Hit IQ: maximize ``H(target + s)`` with ``Cost(s) <= budget``."""
        cost_int, space_int = self._internalize(cost, space)
        if method == "efficient":
            result = max_hit_iq(self.evaluator, target, budget, cost_int, space_int, **kwargs)
        elif method == "rta":
            result = max_hit_iq(self._rta(), target, budget, cost_int, space_int, **kwargs)
        elif method == "greedy":
            result = greedy_max_hit_iq(self.evaluator, target, budget, cost_int, space_int, **kwargs)
        elif method == "random":
            result = random_max_hit_iq(self.evaluator, target, budget, cost_int, space_int, **kwargs)
        elif method == "exhaustive":
            result = exhaustive_max_hit(self.evaluator, target, budget, cost_int, space_int, **kwargs)
        else:
            raise ValidationError(f"method must be one of {_METHODS}, got {method!r}")
        return self._externalize(result)

    # ------------------------------------------------------------------
    # Combinatorial (multi-target) improvement (§5.1)
    # ------------------------------------------------------------------
    def min_cost_multi(
        self,
        targets: list[int],
        tau: int,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> MultiTargetResult:
        """Combinatorial Min-Cost IQ over several targets (Def. 5)."""
        costs_int, spaces_int = self._internalize_multi(targets, costs, spaces)
        result = combinatorial_min_cost(self.index, list(targets), tau, costs_int, spaces_int, **kwargs)
        return self._externalize_multi(result)

    def max_hit_multi(
        self,
        targets: list[int],
        budget: float,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> MultiTargetResult:
        """Combinatorial Max-Hit IQ over several targets (Def. 6)."""
        costs_int, spaces_int = self._internalize_multi(targets, costs, spaces)
        result = combinatorial_max_hit(self.index, list(targets), budget, costs_int, spaces_int, **kwargs)
        return self._externalize_multi(result)

    # ------------------------------------------------------------------
    # Workload / dataset maintenance (§4.3)
    # ------------------------------------------------------------------
    def add_query(self, weights: "np.typing.ArrayLike", k: int) -> int:
        """Add a top-k query to the workload (§4.3); returns its id."""
        query_id = updates.add_query(self.index, np.asarray(weights, dtype=float), k)
        self._invalidate()
        return query_id

    def remove_query(self, query_id: int) -> None:
        """Remove a query (§4.3); ids above it shift down."""
        updates.remove_query(self.index, query_id)
        self._invalidate()

    def add_object(self, attributes: "np.typing.ArrayLike") -> int:
        """Add an object (§4.3); returns its id."""
        object_id = updates.add_object(self.index, np.asarray(attributes, dtype=float))
        self._invalidate()
        return object_id

    def remove_object(self, object_id: int) -> None:
        """Remove an object (§4.3); ids above it shift down."""
        updates.remove_object(self.index, object_id)
        self._invalidate()

    def _invalidate(self) -> None:
        self.evaluator.invalidate()
        self._rta_evaluator = None

    # ------------------------------------------------------------------
    # Convention conversion
    # ------------------------------------------------------------------
    def _rta(self) -> RTAEvaluator:
        if self._rta_evaluator is None:
            self._rta_evaluator = RTAEvaluator(self.index)
        return self._rta_evaluator

    def _internalize(
        self, cost: CostFunction | None, space: StrategySpace | None
    ) -> tuple[CostFunction, StrategySpace | None]:
        dataset = self.dataset
        cost = cost or euclidean_cost(dataset.dim)
        if cost.dim != dataset.dim:
            raise ValidationError(f"cost dim {cost.dim} != dataset dim {dataset.dim}")
        if dataset.sense == "min":
            return cost, space
        return _flip_cost(cost), _flip_space(space)

    def _internalize_multi(
        self,
        targets: list[int],
        costs: CostFunction | dict[int, CostFunction] | None,
        spaces: StrategySpace | dict[int, StrategySpace] | None,
    ) -> tuple[
        CostFunction | dict[int, CostFunction],
        StrategySpace | dict[int, StrategySpace] | None,
    ]:
        dataset = self.dataset
        costs = costs or euclidean_cost(dataset.dim)
        if dataset.sense == "min":
            return costs, spaces
        if isinstance(costs, dict):
            costs = {t: _flip_cost(c) for t, c in costs.items()}
        else:
            costs = _flip_cost(costs)
        if isinstance(spaces, dict):
            spaces = {t: _flip_space(s) for t, s in spaces.items()}
        else:
            spaces = _flip_space(spaces)
        return costs, spaces

    def _externalize(self, result: IQResult) -> IQResult:
        if self.dataset.sense == "min":
            return result
        internal = result.strategy
        result.strategy = Strategy(
            self.dataset.to_external_strategy(internal.vector), cost=internal.cost
        )
        return result

    def _externalize_multi(self, result: MultiTargetResult) -> MultiTargetResult:
        if self.dataset.sense == "min":
            return result
        result.strategies = {
            t: Strategy(self.dataset.to_external_strategy(s.vector), cost=s.cost)
            for t, s in result.strategies.items()
        }
        return result


def _flip_cost(cost: CostFunction) -> CostFunction:
    """Internal-space equivalent of a cost defined on max-sense strategies.

    The internal strategy is the negation of the external one, so
    symmetric costs are unchanged, the asymmetric cost swaps its up/down
    prices, and callables are wrapped to negate their argument.
    """
    if isinstance(cost, AsymmetricLinearCost):
        return AsymmetricLinearCost(cost.dim, up=cost.down, down=cost.up)
    if isinstance(cost, CallableCost):
        return CallableCost(cost.dim, lambda s: cost.fn(-np.asarray(s, dtype=float)))
    return cost  # L1 / L2 / LInf are symmetric in s -> -s


def _flip_space(space: StrategySpace | None) -> StrategySpace | None:
    """Internal-space strategy box for a max-sense box (negated interval)."""
    if space is None:
        return None
    return StrategySpace(space.dim, lower=-space.upper, upper=-space.lower)
