"""The Improvement Query engine — the library's main entry point.

Ties the subdomain index, ESE, the greedy searches, the baselines, and
the maintenance operations behind one object::

    engine = ImprovementQueryEngine(dataset, queries)
    result = engine.min_cost(target=3, tau=25)          # Min-Cost IQ
    result = engine.max_hit(target=3, budget=2.0)       # Max-Hit IQ
    plan = engine.explain(target=3, tau=25)             # plan only

The engine itself is a thin façade over four explicit layers:

* **planner** (:mod:`repro.core.plan`) — every query first builds a
  frozen :class:`~repro.core.plan.ExecutionPlan`; :meth:`explain`
  returns that plan without executing it.
* **solver registry** (:mod:`repro.core.solvers`) — ``method="..."``
  resolves through :func:`~repro.core.solvers.get_solver`; the five
  paper schemes and any third-party solver dispatch identically.
* **boundary** (:mod:`repro.core.boundary`) — everything user-facing is
  expressed in the dataset's own attribute convention (``sense="min"``
  or ``"max"``); costs, strategy bounds, and result strategies are
  converted to/from the internal min-convention at this layer.
* **epoch bus** (:attr:`~repro.core.subdomain.SubdomainIndex.epoch`) —
  evaluators compare index epochs lazily, so mutating the index
  directly through :mod:`repro.core.updates` (bypassing the engine's
  wrappers) can never serve stale results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.rta import RTAEvaluator
from repro.core import updates
from repro.core.boundary import (
    externalize_multi,
    externalize_result,
    internalize,
    internalize_multi,
)
from repro.core.combinatorial import (
    MultiTargetResult,
    combinatorial_max_hit,
    combinatorial_min_cost,
)
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.queries import QuerySet
from repro.core.results import IQResult
from repro.core.sharding import ShardedSubdomainIndex, build_index
from repro.core.solvers import Solver, get_solver
from repro.core.strategy import StrategySpace
from repro.core.subdomain import SubdomainIndex
from repro.errors import ValidationError
from repro.index.router import ShardRouter
from repro.native import resolve_backend, use_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.persistent import PersistentPool

__all__ = ["ImprovementQueryEngine"]


class ImprovementQueryEngine:
    """Improvement queries over a dataset and a top-k workload.

    Parameters
    ----------
    dataset:
        The object set (its ``sense`` fixes the ranking convention).
    queries:
        The top-k workload.
    mode, margin:
        Subdomain-index construction options (see
        :class:`~repro.core.subdomain.SubdomainIndex`).
    workers:
        Construction pool size (see
        :class:`~repro.core.subdomain.SubdomainIndex`); ``None`` defers
        to the ``REPRO_WORKERS`` environment variable, below 2 runs the
        serial reference path.  Surfaced by :meth:`explain` as the
        plan's ``workers`` field.
    shards:
        Workload shard count for the index layer: ``None`` builds the
        monolithic reference index, an integer builds that many shards,
        and ``"auto"`` lets :func:`~repro.core.sharding.resolve_shards`
        pick from the workload size and the resolved worker count.
        Surfaced by :meth:`explain` as ``shards``/``routing``/
        ``shard_sizes``.
    router:
        Shard routing policy (a name or a
        :class:`~repro.index.router.ShardRouter`); only consulted when
        the resolved shard count exceeds 1.
    kernel:
        Hot-path kernel backend request: ``"python"`` (the canonical
        numpy path), ``"native"`` (numba-jitted kernels, degrading
        gracefully to python when numba is absent), or ``"auto"``
        (native when available).  ``None`` defers to the
        ``REPRO_KERNEL`` environment variable, then ``"auto"``.  The
        engine pins its *resolved* backend around every execution, so
        pooled workers and concurrent engines with different backends
        stay deterministic; :meth:`explain` surfaces both the requested
        and the resolved value.
    """

    def __init__(
        self,
        dataset: Dataset,
        queries: QuerySet,
        mode: str = "exact",
        margin: int = 2,
        workers: "int | str | None" = None,
        shards: "int | str | None" = None,
        router: "str | ShardRouter | None" = None,
        kernel: "str | None" = None,
    ) -> None:
        self.kernel_requested, self.kernel_backend = resolve_backend(kernel)
        self.index: "SubdomainIndex | ShardedSubdomainIndex" = build_index(
            dataset,
            queries,
            mode=mode,
            margin=margin,
            shards=shards,
            router=router,
            workers=workers,
        )
        self.evaluator = StrategyEvaluator(self.index)
        self._rta_evaluator: RTAEvaluator | None = None

    @classmethod
    def from_index(
        cls,
        index: "SubdomainIndex | ShardedSubdomainIndex",
        kernel: "str | None" = None,
    ) -> "ImprovementQueryEngine":
        """Wrap an existing index (e.g. one restored by
        :meth:`SubdomainIndex.load` or
        :meth:`ShardedSubdomainIndex.load`) without rebuilding it."""
        engine = cls.__new__(cls)
        engine.kernel_requested, engine.kernel_backend = resolve_backend(kernel)
        engine.index = index
        engine.evaluator = StrategyEvaluator(index)
        engine._rta_evaluator = None
        return engine

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self.index.dataset

    @property
    def queries(self) -> QuerySet:
        return self.index.queries

    @property
    def epoch(self) -> int:
        """The index's mutation epoch (see :class:`SubdomainIndex`).

        Every consumer that caches derived state — the evaluators, the
        persistent worker pool, the serving layer — keys its validity on
        this counter, so a mutation through *any* path (engine wrappers
        or :mod:`repro.core.updates` directly) invalidates them all.
        """
        return self.index.epoch

    def pool(
        self, workers: "int | str | None" = None, warm: bool = True
    ) -> "PersistentPool":
        """A :class:`~repro.parallel.persistent.PersistentPool` for this engine.

        The pool forks workers holding the built index once and serves
        repeated batches without per-call pool startup; see
        :func:`repro.parallel.run_batch` (``pool=``) and ``repro serve``.
        """
        from repro.parallel.persistent import PersistentPool

        return PersistentPool(self, workers=workers, warm=warm)

    # ------------------------------------------------------------------
    # Read-side queries
    # ------------------------------------------------------------------
    def hits(self, target: int) -> int:
        """``H(target)``: how many workload queries the object hits now."""
        with use_backend(self.kernel_backend):
            return self.evaluator.hits(target)

    def reverse_top_k(self, target: int) -> np.ndarray:
        """Ids of the queries currently hit (a reverse top-k query [21])."""
        with use_backend(self.kernel_backend):
            return np.flatnonzero(self.evaluator.hits_mask(target))

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def explain(
        self,
        target: int,
        tau: int | None = None,
        budget: float | None = None,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
    ) -> ExecutionPlan:
        """The plan a :meth:`min_cost` / :meth:`max_hit` call would run.

        Exactly one of ``tau`` (Min-Cost) or ``budget`` (Max-Hit) picks
        the query kind; the returned
        :class:`~repro.core.plan.ExecutionPlan` is frozen and nothing is
        executed.  An executed call with the same arguments runs exactly
        this plan.
        """
        if (tau is None) == (budget is None):
            raise ValidationError(
                "explain needs exactly one of tau (min_cost) or budget (max_hit)"
            )
        if tau is not None:
            return self._plan("min_cost", target, tau, cost, space, method)[0]
        return self._plan("max_hit", target, float(budget), cost, space, method)[0]

    def _plan(
        self,
        kind: str,
        target: int,
        goal: float,
        cost: CostFunction | None,
        space: StrategySpace | None,
        method: str,
    ) -> tuple[ExecutionPlan, CostFunction, StrategySpace | None]:
        """Plan step: resolve the solver, internalize, snapshot the index."""
        solver = get_solver(method)
        cost_int, space_int = internalize(self.dataset, cost, space)
        plan = build_plan(
            self.index, solver, kind, target, goal, cost_int, space_int,
            kernel=(self.kernel_requested, self.kernel_backend),
        )
        return plan, cost_int, space_int

    def _execute(
        self,
        kind: str,
        target: int,
        goal: float,
        cost: CostFunction | None,
        space: StrategySpace | None,
        method: str,
        kwargs: dict[str, object],
    ) -> IQResult:
        """Execute step: hand the planned solver its evaluator.

        The engine\'s resolved kernel backend is pinned for the whole
        solver run, so every ``_beats_batch`` / slab-scan dispatch under
        this call uses it regardless of the process-global default.
        """
        plan, cost_int, space_int = self._plan(kind, target, goal, cost, space, method)
        with use_backend(plan.kernel_backend):
            result = plan.solver.run(
                kind, self._evaluator_for(plan.solver), target, goal,
                cost_int, space_int, **kwargs,
            )
        return externalize_result(self.dataset, result)

    def _evaluator_for(self, solver: Solver) -> StrategyEvaluator:
        """The evaluation engine a solver declares ("rta" or ESE default)."""
        if solver.evaluator == "rta":
            if self._rta_evaluator is None:
                self._rta_evaluator = RTAEvaluator(self.index)
            return self._rta_evaluator
        return self.evaluator

    # ------------------------------------------------------------------
    # Improvement queries
    # ------------------------------------------------------------------
    def min_cost(
        self,
        target: int,
        tau: int,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> IQResult:
        """Min-Cost IQ: cheapest strategy with ``H(target + s) >= tau``.

        ``method`` selects the processing scheme of §6.1 by registry
        name: ``"efficient"`` (Efficient-IQ, the paper's contribution),
        ``"rta"``, ``"greedy"``, ``"random"``, or ``"exhaustive"``
        (exact, tiny workloads only) — plus any solver registered via
        :func:`repro.core.solvers.register_solver`.
        """
        return self._execute("min_cost", target, tau, cost, space, method, kwargs)

    def max_hit(
        self,
        target: int,
        budget: float,
        cost: CostFunction | None = None,
        space: StrategySpace | None = None,
        method: str = "efficient",
        **kwargs: object,
    ) -> IQResult:
        """Max-Hit IQ: maximize ``H(target + s)`` with ``Cost(s) <= budget``."""
        return self._execute("max_hit", target, budget, cost, space, method, kwargs)

    # ------------------------------------------------------------------
    # Combinatorial (multi-target) improvement (§5.1)
    # ------------------------------------------------------------------
    def min_cost_multi(
        self,
        targets: list[int],
        tau: int,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> MultiTargetResult:
        """Combinatorial Min-Cost IQ over several targets (Def. 5)."""
        costs_int, spaces_int = internalize_multi(self.dataset, targets, costs, spaces)
        with use_backend(self.kernel_backend):
            result = combinatorial_min_cost(self.index, list(targets), tau, costs_int, spaces_int, **kwargs)
        return externalize_multi(self.dataset, result)

    def max_hit_multi(
        self,
        targets: list[int],
        budget: float,
        costs: CostFunction | dict[int, CostFunction] | None = None,
        spaces: StrategySpace | dict[int, StrategySpace] | None = None,
        **kwargs: object,
    ) -> MultiTargetResult:
        """Combinatorial Max-Hit IQ over several targets (Def. 6)."""
        costs_int, spaces_int = internalize_multi(self.dataset, targets, costs, spaces)
        with use_backend(self.kernel_backend):
            result = combinatorial_max_hit(self.index, list(targets), budget, costs_int, spaces_int, **kwargs)
        return externalize_multi(self.dataset, result)

    # ------------------------------------------------------------------
    # Workload / dataset maintenance (§4.3)
    # ------------------------------------------------------------------
    # No manual cache invalidation here: every mutation bumps the
    # index's epoch and the evaluators re-sync lazily, whether the
    # mutation came through these wrappers or straight from
    # repro.core.updates.
    def add_query(self, weights: "np.typing.ArrayLike", k: int) -> int:
        """Add a top-k query to the workload (§4.3); returns its id."""
        return updates.add_query(self.index, np.asarray(weights, dtype=float), k)

    def remove_query(self, query_id: int) -> None:
        """Remove a query (§4.3); ids above it shift down."""
        updates.remove_query(self.index, query_id)

    def add_object(self, attributes: "np.typing.ArrayLike") -> int:
        """Add an object (§4.3); returns its id."""
        return updates.add_object(self.index, np.asarray(attributes, dtype=float))

    def remove_object(self, object_id: int) -> None:
        """Remove an object (§4.3); ids above it shift down."""
        updates.remove_object(self.index, object_id)
