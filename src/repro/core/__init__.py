"""Core improvement-query machinery (the paper's contribution)."""

from repro.core.combinatorial import (
    MultiTargetResult,
    combinatorial_max_hit,
    combinatorial_min_cost,
)
from repro.core.cost import (
    AsymmetricLinearCost,
    CallableCost,
    CostFunction,
    L1Cost,
    L2Cost,
    LInfCost,
    euclidean_cost,
)
from repro.core.boundary import (
    externalize_result,
    flip_cost,
    flip_space,
    internalize,
)
from repro.core.engine import ImprovementQueryEngine
from repro.core.ese import StrategyEvaluator
from repro.core.exhaustive import exhaustive_max_hit, exhaustive_min_cost
from repro.core.linearize import (
    GenericSpace,
    Term,
    UtilityFamily,
    distance_family,
    function_term,
    monomial,
    polynomial_family,
)
from repro.core.maxhit import max_hit_iq
from repro.core.mincost import min_cost_iq
from repro.core.objects import Dataset
from repro.core.plan import PLAN_FIELDS, ExecutionPlan, build_plan
from repro.core.queries import QuerySet
from repro.core.reduction import min_cost_via_max_hit
from repro.core.results import IQResult, IterationRecord
from repro.core.sharding import (
    IndexProtocol,
    ShardedSubdomainIndex,
    build_index,
    resolve_shards,
)
from repro.core.solvers import (
    Solver,
    get_solver,
    register_solver,
    registered_solvers,
    solver_function_names,
)
from repro.core.strategy import Strategy, StrategySpace
from repro.core.subdomain import SubdomainIndex, find_subdomains, relevant_pairs

__all__ = [
    "Dataset",
    "QuerySet",
    "Strategy",
    "StrategySpace",
    "CostFunction",
    "L1Cost",
    "L2Cost",
    "LInfCost",
    "AsymmetricLinearCost",
    "CallableCost",
    "euclidean_cost",
    "SubdomainIndex",
    "IndexProtocol",
    "ShardedSubdomainIndex",
    "build_index",
    "resolve_shards",
    "find_subdomains",
    "relevant_pairs",
    "StrategyEvaluator",
    "min_cost_iq",
    "max_hit_iq",
    "min_cost_via_max_hit",
    "exhaustive_min_cost",
    "exhaustive_max_hit",
    "combinatorial_min_cost",
    "combinatorial_max_hit",
    "MultiTargetResult",
    "IQResult",
    "IterationRecord",
    "ImprovementQueryEngine",
    "ExecutionPlan",
    "PLAN_FIELDS",
    "build_plan",
    "Solver",
    "register_solver",
    "registered_solvers",
    "get_solver",
    "solver_function_names",
    "flip_cost",
    "flip_space",
    "internalize",
    "externalize_result",
    "Term",
    "monomial",
    "function_term",
    "UtilityFamily",
    "GenericSpace",
    "polynomial_family",
    "distance_family",
]
