"""Max-Hit improvement queries (paper §4.2.2, Algorithm 4).

Greedy budgeted search: every round generates one candidate per unhit
query, drops the candidates that no longer fit the remaining budget
(the filtering step the paper spells out in §5.1 step 2 — Algorithm 4's
lines 13-17 are the cruder single-shot version of the same idea), and
applies the affordable candidate with the best cost-per-hit ratio.  The
search stops when no affordable candidate remains.

Because candidate strategies compose, a later move can in principle
undo hits an earlier move bought (the target's score rises for queries
pointing the other way).  The search therefore snapshots the state
after every application and returns the best prefix — maximal hits,
ties broken by lower cost — which is always within budget.
"""

from __future__ import annotations

import numpy as np

from repro.constants import EPS_COST, EPS_FEASIBILITY
from repro.core._search import CandidateBatch, SearchState, generate_candidates
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.results import IQResult, IterationRecord
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError
from repro.observe import stage, tally
from repro.optimize.hit_cost import DEFAULT_MARGIN

__all__ = ["max_hit_iq"]

_MAX_STALLS = 3


def max_hit_iq(
    evaluator: StrategyEvaluator,
    target: int,
    budget: float,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
    max_iterations: int | None = None,
) -> IQResult:
    """Algorithm 4 in internal (min-convention) coordinates."""
    index = evaluator.index
    if budget < 0:
        raise ValidationError(f"budget must be non-negative, got {budget}")
    if cost.dim != index.dataset.dim:
        raise ValidationError(f"cost dim {cost.dim} != dataset dim {index.dataset.dim}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    if max_iterations is None:
        max_iterations = 2 * index.queries.m + 16

    state = SearchState(
        target=target,
        base=index.dataset.matrix[target].copy(),
        applied=np.zeros(index.dataset.dim),
        spent=0.0,
        mask=evaluator.hits_mask(target),
    )
    hits_before = state.hits
    records: list[IterationRecord] = []
    evaluations_start = evaluator.full_evaluations
    stalls = 0
    # Best snapshot seen so far: (hits, -spent) lexicographic max.
    best = (state.hits, 0.0, state.applied.copy())
    # Numeric slack granted exactly once against the original budget: by
    # induction every admitted candidate keeps ``spent <= allowance``,
    # so total spend can never drift past ``budget + EPS_COST`` no
    # matter how many iterations run (a per-iteration epsilon in the
    # candidate filter used to accumulate unboundedly and could flip
    # ``satisfied`` on a legitimate result).
    allowance = budget + EPS_COST

    while state.spent < budget and len(records) < max_iterations:
        remaining = allowance - state.spent
        batch = generate_candidates(
            evaluator,
            state,
            cost,
            space.shifted(state.applied),
            margin=margin,
            max_cost=remaining,  # §5.1 step 2: affordable candidates only
        )
        if batch.size == 0:
            break  # no unhit query is reachable within the leftover budget
        pick = batch.best_ratio()
        if batch.hits[pick] == 0 or not np.isfinite(batch.costs[pick]):
            break
        hits_before_apply = state.hits
        _apply(evaluator, state, batch, pick, records)
        if state.hits > best[0] or (state.hits == best[0] and state.spent < best[1]):
            best = (state.hits, state.spent, state.applied.copy())
        stalls = stalls + 1 if state.hits <= hits_before_apply else 0
        if stalls >= _MAX_STALLS:
            break

    best_hits, best_spent, best_applied = best
    return IQResult(
        target=target,
        strategy=Strategy(best_applied, cost=best_spent),
        hits_before=hits_before,
        hits_after=best_hits,
        total_cost=best_spent,
        satisfied=best_spent <= budget + EPS_FEASIBILITY,
        iterations=records,
        evaluations=evaluator.full_evaluations - evaluations_start,
    )


def _apply(
    evaluator: StrategyEvaluator,
    state: SearchState,
    batch: CandidateBatch,
    pick: int,
    records: list[IterationRecord],
) -> None:
    state.applied = state.applied + batch.vectors[pick]
    state.spent += float(batch.costs[pick])
    tally("iterations")
    tally("evaluations")
    with stage("evaluate"):
        state.mask = evaluator.hits_mask(state.target, state.position)
    records.append(
        IterationRecord(
            query_id=int(batch.query_ids[pick]),
            cost=float(batch.costs[pick]),
            hits_after=state.hits,
            candidates=batch.size,
        )
    )
