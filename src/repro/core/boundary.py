"""The sense/cost/strategy-space conversion boundary.

Everything user-facing is expressed in the dataset's own attribute
convention (``sense="min"`` or ``"max"``); the engine's planner and
solvers work exclusively in the internal min-convention.  This module
is the *only* place where the two conventions meet:

* :func:`flip_cost` / :func:`flip_space` — the internal-space
  equivalents of a cost function / strategy box defined on max-sense
  strategies (both are involutions: applying them twice is the
  identity, which the boundary property tests pin down).
* :func:`internalize` / :func:`internalize_multi` — validate and
  convert the cost/space arguments of one improvement query (or of a
  combinatorial multi-target query) into internal convention.
* :func:`externalize_result` / :func:`externalize_multi` — convert a
  solver's internal-convention result back to the user's convention.

The conversion rule is simple because the internal strategy is the
negation of the external one under ``sense="max"``: symmetric costs
are unchanged, the asymmetric cost swaps its up/down prices, callables
are wrapped to negate their argument, and strategy boxes negate their
interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.cost import (
    AsymmetricLinearCost,
    CallableCost,
    CostFunction,
    euclidean_cost,
)
from repro.core.objects import Dataset
from repro.core.results import IQResult
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.combinatorial import MultiTargetResult

__all__ = [
    "flip_cost",
    "flip_space",
    "internalize",
    "internalize_multi",
    "externalize_result",
    "externalize_multi",
    "describe_cost",
    "describe_space",
]


def flip_cost(cost: CostFunction) -> CostFunction:
    """Internal-space equivalent of a cost defined on max-sense strategies.

    The internal strategy is the negation of the external one, so
    symmetric costs are unchanged, the asymmetric cost swaps its up/down
    prices, and callables are wrapped to negate their argument.
    Applying :func:`flip_cost` twice yields a cost that agrees with the
    original on every strategy (an involution up to wrapping).
    """
    if isinstance(cost, AsymmetricLinearCost):
        return AsymmetricLinearCost(cost.dim, up=cost.down, down=cost.up)
    if isinstance(cost, CallableCost):
        inner = cost.fn
        return CallableCost(cost.dim, lambda s: inner(-np.asarray(s, dtype=float)))
    return cost  # L1 / L2 / LInf are symmetric in s -> -s


def flip_space(space: StrategySpace | None) -> StrategySpace | None:
    """Internal-space strategy box for a max-sense box (negated interval)."""
    if space is None:
        return None
    return StrategySpace(space.dim, lower=-space.upper, upper=-space.lower)


def internalize(
    dataset: Dataset,
    cost: CostFunction | None,
    space: StrategySpace | None,
) -> tuple[CostFunction, StrategySpace | None]:
    """Validated internal-convention ``(cost, space)`` for one query.

    ``cost`` defaults to the unweighted Euclidean cost; dimension
    mismatches between either argument and the dataset raise
    :class:`~repro.errors.ValidationError` here, before any solver runs.
    """
    cost = cost or euclidean_cost(dataset.dim)
    if cost.dim != dataset.dim:
        raise ValidationError(f"cost dim {cost.dim} != dataset dim {dataset.dim}")
    if space is not None and space.dim != dataset.dim:
        raise ValidationError(f"space dim {space.dim} != dataset dim {dataset.dim}")
    if dataset.sense == "min":
        return cost, space
    return flip_cost(cost), flip_space(space)


def internalize_multi(
    dataset: Dataset,
    targets: list[int],
    costs: CostFunction | dict[int, CostFunction] | None,
    spaces: StrategySpace | dict[int, StrategySpace] | None,
) -> tuple[
    CostFunction | dict[int, CostFunction],
    StrategySpace | dict[int, StrategySpace] | None,
]:
    """Internal-convention cost/space maps for a combinatorial query."""
    costs = costs or euclidean_cost(dataset.dim)
    for cost in costs.values() if isinstance(costs, dict) else (costs,):
        if cost.dim != dataset.dim:
            raise ValidationError(f"cost dim {cost.dim} != dataset dim {dataset.dim}")
    space_values = spaces.values() if isinstance(spaces, dict) else (spaces,)
    for space in space_values:
        if space is not None and space.dim != dataset.dim:
            raise ValidationError(
                f"space dim {space.dim} != dataset dim {dataset.dim}"
            )
    if dataset.sense == "min":
        return costs, spaces
    if isinstance(costs, dict):
        costs = {t: flip_cost(c) for t, c in costs.items()}
    else:
        costs = flip_cost(costs)
    if isinstance(spaces, dict):
        spaces = {t: flip_space(s) for t, s in spaces.items()}
    else:
        spaces = flip_space(spaces)
    return costs, spaces


def externalize_result(dataset: Dataset, result: IQResult) -> IQResult:
    """Convert a solver's internal-convention result to the user's."""
    if dataset.sense == "min":
        return result
    internal = result.strategy
    result.strategy = Strategy(
        dataset.to_external_strategy(internal.vector), cost=internal.cost
    )
    return result


def externalize_multi(dataset: Dataset, result: "MultiTargetResult") -> "MultiTargetResult":
    """Convert a combinatorial internal-convention result to the user's."""
    if dataset.sense == "min":
        return result
    result.strategies = {
        t: Strategy(dataset.to_external_strategy(s.vector), cost=s.cost)
        for t, s in result.strategies.items()
    }
    return result


def describe_cost(cost: CostFunction) -> str:
    """One-line rendering of an (internalized) cost for EXPLAIN output."""
    name = type(cost).__name__
    if isinstance(cost, AsymmetricLinearCost):
        return f"{name}(dim={cost.dim}, up={_vec(cost.up)}, down={_vec(cost.down)})"
    weights = getattr(cost, "weights", None)
    if weights is not None and not np.all(weights == 1.0):
        return f"{name}(dim={cost.dim}, weights={_vec(weights)})"
    return f"{name}(dim={cost.dim})"


def describe_space(space: StrategySpace | None) -> str:
    """One-line rendering of an (internalized) strategy box for EXPLAIN."""
    if space is None or (
        np.all(np.isneginf(space.lower)) and np.all(np.isposinf(space.upper))
    ):
        return "unconstrained"
    return f"box(lower={_vec(space.lower)}, upper={_vec(space.upper)})"


def _vec(values: np.ndarray) -> str:
    # ``v + 0.0`` collapses the negative zeros a sense flip produces.
    return "[" + ", ".join(f"{float(v) + 0.0:g}" for v in values) + "]"
