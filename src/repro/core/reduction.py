"""The Min-Cost <-> Max-Hit reduction (paper §4.2.2).

The paper proves the two improvement-strategy problems are mutually
reducible: the minimal cost to reach ``tau`` hits can be found by
binary-searching the budget given to a Max-Hit oracle — if the oracle
reaches ``tau`` hits with budget ``x``, the optimum is at most ``x``;
otherwise it is larger.  The proof uses an exact oracle; running the
reduction over the *greedy* Max-Hit gives another Min-Cost heuristic,
which this module provides both as a faithful executable rendering of
the proof and as a cross-check used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.maxhit import max_hit_iq
from repro.core.results import IQResult
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError
from repro.optimize.hit_cost import DEFAULT_MARGIN

__all__ = ["min_cost_via_max_hit"]


@dataclass
class _Probe:
    budget: float
    result: IQResult


def min_cost_via_max_hit(
    evaluator: StrategyEvaluator,
    target: int,
    tau: int,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
    budget_hint: float | None = None,
    iterations: int = 24,
    oracle: "Callable[..., IQResult]" = max_hit_iq,
) -> IQResult:
    """Min-Cost IQ by binary search over Max-Hit budgets (§4.2.2).

    Parameters
    ----------
    budget_hint:
        Initial upper bound ``x_max`` on the cost of hitting ``tau``
        queries; grown geometrically until the oracle reaches ``tau``
        (bounded doubling replaces the paper's "cost to hit all
        queries" constant, which needs no precomputation this way).
    iterations:
        Binary-search refinements after bracketing (the paper's
        ``log x_max`` bound).
    oracle:
        The Max-Hit subroutine (greedy by default; pass
        :func:`repro.core.exhaustive.exhaustive_max_hit` for the exact
        reduction of the proof on tiny inputs).
    """
    index = evaluator.index
    if not 1 <= tau <= index.queries.m:
        raise ValidationError(f"tau must be in [1, {index.queries.m}], got {tau}")

    def probe(budget: float) -> _Probe:
        return _Probe(budget, oracle(evaluator, target, budget, cost, space, margin=margin))

    # Bracket: grow the budget until tau is reachable.
    high = probe(budget_hint if budget_hint is not None else 1.0)
    attempts = 0
    while high.result.hits_after < tau:
        attempts += 1
        if attempts > 60:
            return IQResult(  # unreachable even with unbounded budget
                target=target,
                strategy=Strategy.zero(index.dataset.dim),
                hits_before=evaluator.hits(target),
                hits_after=evaluator.hits(target),
                total_cost=0.0,
                satisfied=False,
            )
        high = probe(high.budget * 2.0)
    best = high
    low_budget = 0.0

    # Refine: shrink the bracket [low, high] around the minimal budget.
    for __ in range(iterations):
        mid_budget = 0.5 * (low_budget + high.budget)
        mid = probe(mid_budget)
        if mid.result.hits_after >= tau:
            high = mid
            if mid.result.total_cost < best.result.total_cost:
                best = mid
        else:
            low_budget = mid_budget

    result = best.result
    return IQResult(
        target=target,
        strategy=result.strategy,
        hits_before=result.hits_before,
        hits_after=result.hits_after,
        total_cost=result.total_cost,
        satisfied=result.hits_after >= tau,
        iterations=result.iterations,
        evaluations=result.evaluations,
    )
