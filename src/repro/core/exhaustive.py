"""Exact improvement-strategy search by branch-and-bound (§4.2.1).

The paper offers "exhaustive strategy searching" as an option for users
who want the true optimum, noting it is only feasible for very small
inputs (their measurement: > 4 hours per query at experiment scale; we
reproduce that blow-up in the X1 ablation benchmark).  The problem is
NP-hard (reduction from Minimal Set Cover), so exponential behaviour is
expected.

Formulation: choose the set ``T`` of queries the improved target will
hit.  Given ``T``, the cheapest strategy hitting all of ``T`` is a
convex program solved exactly by
:func:`repro.optimize.hit_cost.min_cost_to_hit_set`.  The search
branches over ``T`` with two admissible bounds:

* cost lower bound: hitting a set costs at least as much as hitting its
  most expensive member alone;
* count upper bound: a partial set can hit at most
  ``|T| + remaining candidates`` queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import EPS_COST, EPS_FEASIBILITY
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.results import IQResult
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import InfeasibleError, ValidationError
from repro.optimize.hit_cost import DEFAULT_MARGIN, min_cost_to_hit, min_cost_to_hit_set

__all__ = ["exhaustive_min_cost", "exhaustive_max_hit"]

#: Hard cap on the number of candidate queries the exact search will
#: branch over; beyond this the run time is measured in hours (which is
#: the paper's point, but not a useful default).
MAX_EXACT_QUERIES = 22


@dataclass
class _Problem:
    evaluator: StrategyEvaluator
    target: int
    cost: CostFunction
    space: StrategySpace
    margin: float
    weights: np.ndarray  #: (m, d)
    gaps: np.ndarray  #: (m,) theta - q . p at the original position
    singles: np.ndarray  #: (m,) single-query optimal costs (inf if infeasible)


def _prepare(
    evaluator: StrategyEvaluator,
    target: int,
    cost: CostFunction,
    space: StrategySpace | None,
    margin: float,
) -> _Problem:
    index = evaluator.index
    if cost.dim != index.dataset.dim:
        raise ValidationError(f"cost dim {cost.dim} != dataset dim {index.dataset.dim}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    if index.queries.m > MAX_EXACT_QUERIES:
        raise ValidationError(
            f"exhaustive search is capped at {MAX_EXACT_QUERIES} queries "
            f"(got {index.queries.m}); it is exponential by design — use the "
            "heuristic methods for larger workloads"
        )
    weights = np.asarray(index.queries.weights, dtype=float)
    __, theta = evaluator.thresholds(target)
    gaps = theta - weights @ index.dataset.matrix[target]
    singles = np.full(index.queries.m, np.inf)
    for j in range(index.queries.m):
        try:
            singles[j] = min_cost_to_hit(
                cost, weights[j], float(gaps[j]), space=space, margin=margin
            ).cost
        except InfeasibleError:
            continue
    return _Problem(evaluator, target, cost, space, margin, weights, gaps, singles)


def _set_cost(problem: _Problem, chosen: list[int]) -> Strategy | None:
    """Exact cheapest strategy hitting every query in ``chosen``."""
    if not chosen:
        return Strategy.zero(problem.cost.dim)
    idx = np.asarray(chosen, dtype=np.intp)
    try:
        return min_cost_to_hit_set(
            problem.cost,
            problem.weights[idx],
            problem.gaps[idx],
            space=problem.space,
            margin=problem.margin,
        )
    except InfeasibleError:
        return None


def exhaustive_min_cost(
    evaluator: StrategyEvaluator,
    target: int,
    tau: int,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
) -> IQResult:
    """Exact Min-Cost IQ: optimal strategy with ``H >= tau``."""
    index = evaluator.index
    if not 1 <= tau <= index.queries.m:
        raise ValidationError(f"tau must be in [1, {index.queries.m}], got {tau}")
    problem = _prepare(evaluator, target, cost, space, margin)
    order = np.argsort(problem.singles, kind="stable")  # cheap queries first
    candidates = [int(j) for j in order if np.isfinite(problem.singles[j])]
    hits_before = evaluator.hits(target)

    best_strategy: Strategy | None = None
    best_cost = np.inf

    def search(pos: int, chosen: list[int]) -> None:
        nonlocal best_strategy, best_cost
        if len(chosen) >= tau:
            strategy = _set_cost(problem, chosen)
            if strategy is not None and strategy.cost < best_cost - EPS_COST:
                # Verify with a true hit count (the strategy may hit
                # more than the chosen set, never fewer).
                achieved = problem.evaluator.evaluate(target, strategy.vector)
                if achieved >= tau:
                    best_strategy, best_cost = strategy, strategy.cost
            return
        if pos >= len(candidates):
            return
        if len(chosen) + (len(candidates) - pos) < tau:
            return  # not enough queries left to reach tau
        j = candidates[pos]
        # Bound: any superset of chosen+{j} costs >= the dearest single.
        lower = max((problem.singles[q] for q in chosen + [j]), default=0.0)
        if lower < best_cost - EPS_COST:
            search(pos + 1, chosen + [j])  # include j
        search(pos + 1, chosen)  # exclude j

    search(0, [])
    if best_strategy is None:
        best_strategy = Strategy.zero(problem.cost.dim)
        satisfied = False
        hits_after = hits_before
    else:
        satisfied = True
        hits_after = evaluator.evaluate(target, best_strategy.vector)
    return IQResult(
        target=target,
        strategy=best_strategy,
        hits_before=hits_before,
        hits_after=hits_after,
        total_cost=best_strategy.cost,
        satisfied=satisfied,
    )


def exhaustive_max_hit(
    evaluator: StrategyEvaluator,
    target: int,
    budget: float,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
) -> IQResult:
    """Exact Max-Hit IQ: optimal strategy with ``Cost <= budget``."""
    if budget < 0:
        raise ValidationError(f"budget must be non-negative, got {budget}")
    problem = _prepare(evaluator, target, cost, space, margin)
    order = np.argsort(problem.singles, kind="stable")
    candidates = [
        int(j)
        for j in order
        if np.isfinite(problem.singles[j]) and problem.singles[j] <= budget + EPS_COST
    ]
    hits_before = evaluator.hits(target)

    best_strategy = Strategy.zero(problem.cost.dim)
    best_hits = evaluator.evaluate(target, best_strategy.vector)

    def search(pos: int, chosen: list[int]) -> None:
        nonlocal best_strategy, best_hits
        if len(chosen) + (len(candidates) - pos) <= best_hits:
            return  # cannot beat the incumbent even taking everything
        strategy = _set_cost(problem, chosen)
        if strategy is None or strategy.cost > budget + EPS_FEASIBILITY:
            return  # supersets only get more expensive: prune
        achieved = problem.evaluator.evaluate(target, strategy.vector)
        if achieved > best_hits:
            best_strategy, best_hits = strategy, achieved
        if pos >= len(candidates):
            return
        search(pos + 1, chosen + [candidates[pos]])
        search(pos + 1, chosen)

    search(0, [])
    return IQResult(
        target=target,
        strategy=best_strategy,
        hits_before=hits_before,
        hits_after=best_hits,
        total_cost=best_strategy.cost,
        satisfied=True,
    )
