"""The solver registry: one dispatch point for every IQ processing scheme.

The paper's §6.1 compares five processing schemes (Efficient-IQ, RTA-IQ,
Greedy, Random, Exhaustive).  Each is wrapped here as a :class:`Solver`
and registered by name with the :func:`register_solver` decorator; the
engine's planner resolves ``method="..."`` through :func:`get_solver`
and never dispatches on strings itself.  Third-party schemes plug in
the same way::

    from repro.core.solvers import SolverBase, register_solver

    @register_solver
    class AnnealingSolver(SolverBase):
        name = "annealing"
        candidate_method = "simulated-annealing"

        def min_cost(self, evaluator, target, tau, cost, space=None, **kwargs):
            ...

        def max_hit(self, evaluator, target, budget, cost, space=None, **kwargs):
            ...

after which ``engine.min_cost(..., method="annealing")`` resolves to it
and ``engine.explain(...)`` reports its metadata.

Solver metadata feeds the planner (:mod:`repro.core.plan`):
``evaluator`` names the evaluation engine the solver expects (``"ese"``
or ``"rta"``), ``candidate_method`` describes how candidate strategies
are generated, and ``notes`` carries fallback caveats surfaced by
EXPLAIN.  ``wraps`` lists the raw solver-function names behind the
scheme — the RPR006 lint rule uses it to flag any direct call to those
functions outside this module, keeping the registry the single
dispatch point.
"""

from __future__ import annotations

from typing import Protocol, TypeVar, runtime_checkable

from repro.baselines.greedy import greedy_max_hit_iq, greedy_min_cost_iq
from repro.baselines.random_search import random_max_hit_iq, random_min_cost_iq
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.exhaustive import exhaustive_max_hit, exhaustive_min_cost
from repro.core.maxhit import max_hit_iq
from repro.core.mincost import min_cost_iq
from repro.core.results import IQResult
from repro.core.strategy import StrategySpace
from repro.errors import ValidationError

__all__ = [
    "Solver",
    "SolverBase",
    "register_solver",
    "get_solver",
    "registered_solvers",
    "solver_function_names",
]

#: The two query kinds a solver must process.
QUERY_KINDS = ("min_cost", "max_hit")


@runtime_checkable
class Solver(Protocol):
    """What the planner requires of a registered processing scheme."""

    name: str  #: registry key, the engine's ``method=`` value
    evaluator: str  #: evaluation engine the solver expects ("ese" | "rta")
    candidate_method: str  #: how candidate strategies are generated
    wraps: tuple[str, ...]  #: raw solver-function names behind the scheme
    notes: tuple[str, ...]  #: fallback caveats surfaced by EXPLAIN

    def min_cost(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        tau: int,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        """Min-Cost IQ in internal convention."""
        ...  # pragma: no cover - protocol

    def max_hit(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        budget: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        """Max-Hit IQ in internal convention."""
        ...  # pragma: no cover - protocol

    def run(
        self,
        kind: str,
        evaluator: StrategyEvaluator,
        target: int,
        goal: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        """Dispatch on the query kind ("min_cost" | "max_hit")."""
        ...  # pragma: no cover - protocol


class SolverBase:
    """Convenience base: kind dispatch plus default metadata."""

    name: str = ""
    evaluator: str = "ese"
    candidate_method: str = "unspecified"
    wraps: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    def min_cost(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        tau: int,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        """Cheapest strategy reaching ``tau`` hits (unsupported by default)."""
        raise ValidationError(f"solver {self.name!r} does not support min_cost")

    def max_hit(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        budget: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        """Most hits within ``budget`` cost (unsupported by default)."""
        raise ValidationError(f"solver {self.name!r} does not support max_hit")

    def run(
        self,
        kind: str,
        evaluator: StrategyEvaluator,
        target: int,
        goal: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        """Execute one improvement query of the given kind."""
        if kind == "min_cost":
            return self.min_cost(evaluator, target, int(goal), cost, space, **kwargs)
        if kind == "max_hit":
            return self.max_hit(evaluator, target, float(goal), cost, space, **kwargs)
        raise ValidationError(f"kind must be one of {QUERY_KINDS}, got {kind!r}")


_REGISTRY: dict[str, Solver] = {}

_S = TypeVar("_S", bound=type)


def register_solver(cls: _S) -> _S:
    """Class decorator: instantiate and register a solver by its name."""
    solver = cls()
    if not isinstance(solver, Solver):
        raise ValidationError(
            f"{cls.__name__} does not implement the Solver protocol"
        )
    if not solver.name:
        raise ValidationError(f"{cls.__name__} must set a non-empty name")
    if solver.name in _REGISTRY:
        raise ValidationError(f"solver {solver.name!r} is already registered")
    _REGISTRY[solver.name] = solver
    return cls


def registered_solvers() -> tuple[str, ...]:
    """Sorted names of every registered solver (the valid ``method`` values)."""
    return tuple(sorted(_REGISTRY))


def get_solver(name: str) -> Solver:
    """Resolve a solver by name; unknown names list the registry contents."""
    solver = _REGISTRY.get(name)
    if solver is None:
        raise ValidationError(
            f"method must be one of {registered_solvers()}, got {name!r}"
        )
    return solver


def solver_function_names() -> frozenset[str]:
    """Raw solver-function names wrapped by any registered solver.

    The RPR006 lint rule flags direct calls to these outside this
    module, so the set tracks the registry instead of a hand-kept list.
    """
    return frozenset(name for solver in _REGISTRY.values() for name in solver.wraps)


# ----------------------------------------------------------------------
# The paper's five processing schemes (§6.1)
# ----------------------------------------------------------------------
@register_solver
class EfficientSolver(SolverBase):
    """Efficient-IQ: greedy search with ESE candidate evaluation."""

    name = "efficient"
    evaluator = "ese"
    candidate_method = "batched-closed-form"
    wraps = ("min_cost_iq", "max_hit_iq")

    def min_cost(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        tau: int,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return min_cost_iq(evaluator, target, tau, cost, space, **kwargs)

    def max_hit(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        budget: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return max_hit_iq(evaluator, target, budget, cost, space, **kwargs)


@register_solver
class RTASolver(EfficientSolver):
    """RTA-IQ: the same greedy search, hit counts via reverse top-k."""

    name = "rta"
    evaluator = "rta"
    wraps = ("min_cost_iq", "max_hit_iq", "rta_min_cost_iq", "rta_max_hit_iq")
    notes = (
        "hit counts via RTA threshold pruning; membership listing falls back to ESE",
    )


@register_solver
class GreedySolver(SolverBase):
    """Greedy baseline: repeatedly hit the single cheapest query."""

    name = "greedy"
    evaluator = "ese"
    candidate_method = "cheapest-single-query"
    wraps = ("greedy_min_cost_iq", "greedy_max_hit_iq")

    def min_cost(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        tau: int,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return greedy_min_cost_iq(evaluator, target, tau, cost, space, **kwargs)

    def max_hit(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        budget: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return greedy_max_hit_iq(evaluator, target, budget, cost, space, **kwargs)


@register_solver
class RandomSolver(SolverBase):
    """Random baseline: best of N uniformly sampled strategies."""

    name = "random"
    evaluator = "ese"
    candidate_method = "uniform-sampling"
    wraps = ("random_min_cost_iq", "random_max_hit_iq")
    notes = ("stochastic: quality depends on the attempt budget and seed",)

    def min_cost(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        tau: int,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return random_min_cost_iq(evaluator, target, tau, cost, space, **kwargs)

    def max_hit(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        budget: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return random_max_hit_iq(evaluator, target, budget, cost, space, **kwargs)


@register_solver
class ExhaustiveSolver(SolverBase):
    """Exact subset enumeration — tiny workloads only (§6.3.2)."""

    name = "exhaustive"
    evaluator = "ese"
    candidate_method = "subset-enumeration"
    wraps = ("exhaustive_min_cost", "exhaustive_max_hit")
    notes = ("exact but exponential in the workload size; tiny instances only",)

    def min_cost(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        tau: int,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return exhaustive_min_cost(evaluator, target, tau, cost, space, **kwargs)

    def max_hit(
        self,
        evaluator: StrategyEvaluator,
        target: int,
        budget: float,
        cost: CostFunction,
        space: StrategySpace | None = None,
        **kwargs: object,
    ) -> IQResult:
        return exhaustive_max_hit(evaluator, target, budget, cost, space, **kwargs)
