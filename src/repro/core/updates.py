"""Incremental maintenance of the subdomain index (paper §4.3).

Four operations, mirroring the paper:

* **add_query** — insert the point into the R-tree, then locate its
  subdomain.  Following the paper's observation, the subdomains of the
  new point's nearest neighbours are tried first (checking only their
  boundary intersections); the full signature classification runs only
  when no candidate matches.
* **remove_query** — delete from the R-tree and from its subdomain;
  empty subdomains are discarded.
* **add_object** — create the intersections of the new function with
  every existing one and split the subdomains that the new hyperplanes
  cut through.  New hyperplanes can only *split* cells, so the work is
  per-cell: classify each cell's members on the new columns only.
  Representative rankings are invalidated (the new object may appear
  anywhere in them).
* **remove_object** — drop every intersection involving the object.
  Dropped hyperplanes can only *merge* cells.  The counting bloom
  filter of boundary registrations gives a fast pre-check: if no
  populated subdomain uses any dropped intersection as a boundary, the
  partition is untouched; otherwise cells whose reduced signatures
  collide merge — exactly the above/below merge the paper describes.

The index stores one signature per populated cell (not per query), so
all maintenance works on cell signatures; per-query side vectors are
recomputed from the workload weights only where needed.

Object ids and query ids are *dense*: removing id ``x`` shifts every id
above ``x`` down by one, in the dataset/queryset and in the index
alike.

The four public functions accept either index implementation: a
:class:`~repro.core.sharding.ShardedSubdomainIndex` routes query
mutations to the owning shard and fans object mutations out to every
shard (each shard re-entering these functions as a monolith); a
:class:`~repro.core.subdomain.SubdomainIndex` is maintained in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.subdomain import Subdomain, SubdomainIndex, relevant_pairs
from repro.errors import ValidationError
from repro.geometry.arrangement import signature_matrix
from repro.geometry.hyperplane import EPS
from repro.index.rtree import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.sharding import ShardedSubdomainIndex

__all__ = ["add_query", "remove_query", "add_object", "remove_object"]

#: How many nearest neighbours donate candidate subdomains on insert.
_KNN_CANDIDATES = 3


def _as_sharded(
    index: "SubdomainIndex | ShardedSubdomainIndex",
) -> "ShardedSubdomainIndex | None":
    """The sharded view of ``index``, or ``None`` for a monolith.

    The four public maintenance operations dispatch here: a sharded
    index routes/fans the mutation across its shards (whose *monolithic*
    members come straight back through these same functions), a
    monolithic index falls through to the in-place maintenance below.
    The import is deferred because :mod:`repro.core.sharding` imports
    this module for its shard-level delegation.
    """
    from repro.core.sharding import ShardedSubdomainIndex

    return index if isinstance(index, ShardedSubdomainIndex) else None


def _as_monolithic(
    index: "SubdomainIndex | ShardedSubdomainIndex",
) -> SubdomainIndex:
    """Narrow to the monolithic implementation after sharded dispatch.

    Only reachable with a :class:`SubdomainIndex` (the ``_as_sharded``
    branch returned already); the runtime check keeps that assumption a
    typed error instead of an ``assert`` under ``python -O``.
    """
    if not isinstance(index, SubdomainIndex):
        raise ValidationError(
            f"maintenance expects a SubdomainIndex here, got {type(index).__name__}"
        )
    return index


def add_query(
    index: "SubdomainIndex | ShardedSubdomainIndex", weights: np.ndarray, k: int
) -> int:
    """Insert a top-k query; returns its id (= new m - 1)."""
    weights = np.asarray(weights, dtype=float)
    sharded = _as_sharded(index)
    if sharded is not None:
        return sharded.add_query(weights, k)
    index = _as_monolithic(index)
    new_queries, query_id = index.queries.with_query(weights, k)
    index.queries = new_queries
    index.rtree.insert_point(weights, query_id)

    signature_row = signature_matrix(weights[None, :], index.normals)[0]
    sid = _locate_with_knn_candidates(index, weights, signature_row)
    if sid is None:
        sid = _classify_full(index, signature_row)
    sub = index.subdomains[sid]
    sub.query_ids = np.append(sub.query_ids, query_id)
    if sub.representative < 0:
        sub.representative = query_id  # freshly created cell
    if sub.prefix is not None and k + 1 > sub.prefix.shape[0] and sub.prefix.shape[0] < index.dataset.n:
        sub.prefix = None  # deeper ranking now needed; re-evaluate lazily
    index.subdomain_of = np.append(index.subdomain_of, sid)
    # A new query can pull objects into the contender set that the
    # relevant-mode arrangement has never seen; close over them so the
    # partition stays trustworthy at the new query's depth.
    _extend_relevant_closure(index)
    index.mark_boundaries_dirty()
    index.notify_mutation()
    return query_id


def _locate_with_knn_candidates(
    index: SubdomainIndex, weights: np.ndarray, signature_row: np.ndarray
) -> int | None:
    """§4.3: try the subdomains of the point's nearest neighbours first.

    A candidate is accepted by checking sides only against its
    *boundary* intersections (cheap), then confirmed with the full
    signature (exactness guard, since tracked boundary sets need not be
    tight descriptions of the cell).
    """
    if index.queries.m <= 1 or index.num_subdomains == 0:
        return None
    index.ensure_boundaries()
    neighbour_ids = index.rtree.nearest(weights, k=_KNN_CANDIDATES + 1)
    tried: set[int] = set()
    for neighbour in neighbour_ids:
        if neighbour >= index.subdomain_of.shape[0]:
            continue  # the freshly inserted point itself
        sid = int(index.subdomain_of[neighbour])
        if sid in tried:
            continue
        tried.add(sid)
        sub = index.subdomains[sid]
        cell_signature = np.frombuffer(sub.signature, dtype=np.int8)
        boundary_cols = list(sub.boundaries)
        if any(signature_row[c] != cell_signature[c] for c in boundary_cols):
            continue  # fails a boundary side test: not this cell
        if np.array_equal(signature_row, cell_signature):
            return sid
    return None


def _classify_full(index: SubdomainIndex, signature_row: np.ndarray) -> int:
    key = signature_row.tobytes()
    for sub in index.subdomains:
        if sub.signature == key:
            return sub.sid
    sid = len(index.subdomains)
    index.subdomains.append(
        Subdomain(
            sid=sid,
            signature=key,
            query_ids=np.empty(0, dtype=np.intp),
            representative=-1,  # patched by the caller appending the query
        )
    )
    return sid


def remove_query(
    index: "SubdomainIndex | ShardedSubdomainIndex", query_id: int
) -> None:
    """Delete a query; ids above it shift down by one."""
    sharded = _as_sharded(index)
    if sharded is not None:
        sharded.remove_query(query_id)
        return
    index = _as_monolithic(index)
    weights, __ = index.queries.query(query_id)
    if not index.rtree.delete(weights, query_id):
        raise ValidationError(f"query {query_id} missing from the R-tree (corrupt index?)")
    index.queries = index.queries.without_query(query_id)

    mask = np.ones(index.subdomain_of.shape[0], dtype=bool)
    mask[query_id] = False
    index.subdomain_of = index.subdomain_of[mask]

    survivors: list[Subdomain] = []
    for sub in index.subdomains:
        ids = sub.query_ids[sub.query_ids != query_id]
        ids = np.where(ids > query_id, ids - 1, ids)
        if ids.size == 0:
            continue  # Algorithm 1 keeps only populated subdomains
        sub.query_ids = ids
        if sub.representative == query_id or sub.representative > query_id:
            sub.representative = int(ids[0])
            # The cached prefix is still valid: any member is an equally
            # good representative within the same subdomain.
        survivors.append(sub)
    _renumber(index, survivors)
    # R-tree payloads above the removed id must shift as well.
    _shift_rtree_payloads(index, query_id)
    index.mark_boundaries_dirty()
    index.notify_mutation()


def _shift_rtree_payloads(index: SubdomainIndex, removed_id: int) -> None:
    """Rebuild the R-tree with payloads > removed_id decremented."""
    items: list[tuple[Rect, int]] = []
    for rect, payload in index.rtree.items():
        items.append((rect, payload - 1 if payload > removed_id else payload))
    index.rtree = type(index.rtree).bulk_load(
        index.queries.dim, items, max_entries=index.rtree.max_entries
    )


def add_object(
    index: "SubdomainIndex | ShardedSubdomainIndex", attributes: np.ndarray
) -> int:
    """Insert an object; its function's intersections split subdomains."""
    sharded = _as_sharded(index)
    if sharded is not None:
        return sharded.add_object(np.asarray(attributes, dtype=float))
    index = _as_monolithic(index)
    new_dataset, object_id = index.dataset.with_object(attributes)
    index.dataset = new_dataset
    matrix = new_dataset.matrix

    if index.mode == "exact":
        new_pairs = []
        rows = []
        for b in range(object_id):
            normal = matrix[b] - matrix[object_id]  # pair (b, new), b < new
            if np.abs(normal).max(initial=0.0) <= EPS:
                continue
            new_pairs.append((b, object_id))
            rows.append(normal)
        if rows:
            _append_columns(index, new_pairs, np.vstack(rows))
    else:
        # Relevant mode: recompute the contender set on the post-insert
        # data and close over every missing pair.  Deriving counterparts
        # from the *existing* pair list (the pre-fix behaviour) silently
        # left the newcomer without hyperplanes whenever the pair list
        # was empty — or missed the contenders the newcomer displaces —
        # and the partition went stale.
        _extend_relevant_closure(index)
    _invalidate_prefixes(index)  # the new object changes every ranking
    index.mark_boundaries_dirty()
    index.notify_mutation()
    return object_id


def _append_columns(
    index: SubdomainIndex, new_pairs: list[tuple[int, int]], new_normals: np.ndarray
) -> None:
    """Append hyperplane columns and split the cells they cut through."""
    index.normals = (
        np.vstack([index.normals, new_normals]) if index.normals.size else new_normals
    )
    for pair in new_pairs:
        index.pair_column[pair] = len(index.pairs)
        index.pairs.append(pair)
    _split_cells_on_new_columns(index, new_normals)


def _extend_relevant_closure(index: SubdomainIndex) -> None:
    """Grow a relevant-mode arrangement to the current contender closure.

    Recomputes :func:`~repro.core.subdomain.relevant_pairs` on the
    index's *current* data and appends every pair the arrangement is
    missing.  New hyperplanes only refine the partition, so stale extra
    pairs from earlier states are harmless and are kept; missing pairs
    are exactly what lets two queries with different contender rankings
    share a cell (and therefore a wrong k-th-other threshold).  No-op in
    exact mode and when the arrangement is already closed.
    """
    if index.mode != "relevant":
        return
    matrix = index.dataset.matrix
    new_pairs = []
    rows = []
    for a, b in relevant_pairs(index.dataset, index.queries, index.margin):
        if (a, b) in index.pair_column:
            continue
        normal = matrix[a] - matrix[b]
        if np.abs(normal).max(initial=0.0) <= EPS:
            continue
        new_pairs.append((a, b))
        rows.append(normal)
    if rows:
        _append_columns(index, new_pairs, np.vstack(rows))


def _split_cells_on_new_columns(index: SubdomainIndex, new_normals: np.ndarray) -> None:
    """New hyperplanes only split cells: reclassify members per cell."""
    weights = index.queries.weights
    survivors: list[Subdomain] = []
    for sub in index.subdomains:
        member_rows = signature_matrix(weights[sub.query_ids], new_normals)
        patterns: dict[bytes, list[int]] = {}
        for local, row in enumerate(member_rows):
            patterns.setdefault(row.tobytes(), []).append(local)
        for pattern_key in sorted(patterns):
            locals_ = patterns[pattern_key]
            members = sub.query_ids[np.asarray(locals_, dtype=np.intp)]
            survivors.append(
                Subdomain(
                    sid=-1,  # renumbered below
                    signature=sub.signature + pattern_key,
                    query_ids=members,
                    representative=int(members[0]),
                )
            )
    _renumber(index, survivors)


def remove_object(
    index: "SubdomainIndex | ShardedSubdomainIndex", object_id: int
) -> None:
    """Remove an object; subdomains split only by its intersections merge."""
    sharded = _as_sharded(index)
    if sharded is not None:
        sharded.remove_object(object_id)
        return
    index = _as_monolithic(index)
    index.dataset._check_id(object_id)
    involved = [col for col, (a, b) in enumerate(index.pairs) if object_id in (a, b)]

    # Bloom-filter fast path (§4.3): if no populated subdomain uses any
    # involved intersection as a boundary, the partition is unchanged
    # and only the ranking caches need refreshing.
    partition_touched = False
    if involved:
        index.ensure_boundaries()
        for sub in index.subdomains:
            if any(index.is_boundary(sub.sid, col) for col in involved):
                partition_touched = True
                break

    index.dataset = index.dataset.without_object(object_id)
    involved_set = set(involved)
    keep = [col for col in range(len(index.pairs)) if col not in involved_set]
    index.normals = index.normals[keep] if index.normals.size else index.normals
    remapped = []
    for col in keep:
        a, b = index.pairs[col]
        a = a - 1 if a > object_id else a
        b = b - 1 if b > object_id else b
        remapped.append((a, b))
    index.pairs = remapped
    index.pair_column = {pair: col for col, pair in enumerate(remapped)}

    keep_idx = np.asarray(keep, dtype=np.intp)
    reduced: dict[int, bytes] = {}
    for sub in index.subdomains:
        cell_signature = np.frombuffer(sub.signature, dtype=np.int8)
        reduced[sub.sid] = cell_signature[keep_idx].tobytes()

    if not partition_touched:
        # Cells that differed only in several dropped columns collide
        # now even though no single column registered as a boundary;
        # detect the (rare) collision and fall back to a full merge.
        partition_touched = len(set(reduced.values())) != len(index.subdomains)

    if partition_touched:
        _merge_cells(index, reduced)  # above/below merge of §4.3
    else:
        for sub in index.subdomains:
            sub.signature = reduced[sub.sid]
    # Removing a top-ranked object promotes objects from below the
    # margin depth into the contender set; close over their pairs so
    # relevant-mode cells keep constant rankings at trusted depths.
    _extend_relevant_closure(index)
    index.mark_boundaries_dirty()
    _invalidate_prefixes(index)
    index.notify_mutation()


def _merge_cells(index: SubdomainIndex, reduced: dict[int, bytes]) -> None:
    """Merge cells whose signatures collide after dropping columns."""
    groups: dict[bytes, list[Subdomain]] = {}
    for sub in index.subdomains:
        groups.setdefault(reduced[sub.sid], []).append(sub)
    survivors: list[Subdomain] = []
    for signature_key in sorted(groups):
        cells = groups[signature_key]
        members = np.sort(np.concatenate([c.query_ids for c in cells]))
        survivors.append(
            Subdomain(
                sid=-1,  # renumbered below
                signature=signature_key,
                query_ids=members,
                representative=int(members[0]),
            )
        )
    _renumber(index, survivors)


def _renumber(index: SubdomainIndex, survivors: list[Subdomain]) -> None:
    index.subdomains = []
    for sid, sub in enumerate(survivors):
        sub.sid = sid
        index.subdomains.append(sub)
        index.subdomain_of[sub.query_ids] = sid


def _invalidate_prefixes(index: SubdomainIndex) -> None:
    for sub in index.subdomains:
        sub.prefix = None
