"""Sharded subdomain index: partitioned build/persist/update, thin merge.

The monolithic :class:`~repro.core.subdomain.SubdomainIndex` owns all
``m`` query points, so construction parallelism, persistence, and
update cost all hit a one-object wall.  This module splits the workload
*by weight-space region* into ``K`` independently built monolithic
shards behind the same read surface:

* :class:`IndexProtocol` — the explicit read-side contract every index
  consumer (planner, ESE, persistent pool, serving, EXPLAIN) programs
  against; :class:`SubdomainIndex` and :class:`ShardedSubdomainIndex`
  are its two implementations.
* :class:`ShardedSubdomainIndex` — routes each query to a shard with a
  pluggable, *pure per-point* router (:mod:`repro.index.router`), builds
  one ``SubdomainIndex`` per shard over ``queries.subset(members)``
  (same dataset object), and merges at query time by scattering
  per-shard results through the member maps.

Why this is correct with zero cross-shard coupling: every per-query
quantity the index serves — the k-th-other threshold of Eq. 6, the
hit test, the affected-subspace membership — depends only on that
query's weight vector and the *full* object set, never on other
queries.  Sharding the workload therefore changes which cells share a
representative ranking (cells never span shards) but not any served
value; the ``--shards`` axis of ``repro check`` holds the sharded index
to exact partition equality per shard and brute-force hits parity.

Mutations (paper §4.3) route naturally: ``add/remove_query`` touch only
the owning shard, ``add/remove_object`` fan out to all shards.  Each
shard keeps its own epoch, so the persistent pool re-shares only the
shard groups whose epoch moved.

Persistence is a directory: one versioned ``.npz`` per shard (the
monolithic format, unchanged) plus a fingerprint-validated
``manifest.json``; shards load lazily and individually.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.subdomain import (
    INDEX_FORMATS,
    SubdomainIndex,
    dataset_fingerprint,
    queryset_fingerprint,
    relevant_pairs,
)
from repro.errors import IndexCorruptionError, ValidationError
from repro.index.router import ShardRouter, get_router
from repro.index.rtree import Rect, RTree
from repro.parallel.pool import resolve_workers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.subdomain import Subdomain

__all__ = [
    "IndexProtocol",
    "ShardedSubdomainIndex",
    "build_index",
    "resolve_shards",
]

#: Schema tag of the sharded directory manifest; bumped on layout change.
SHARDED_SCHEMA = "repro-sharded-index/1"

#: ``shards="auto"`` never cuts the workload finer than this many
#: queries per shard — below it, per-shard fixed costs (R-tree, prefix
#: sharing lost across shard boundaries) outweigh the parallelism.
MIN_QUERIES_PER_SHARD = 32

#: Upper bound for ``shards="auto"``; explicit shard counts may exceed it.
MAX_AUTO_SHARDS = 16


@runtime_checkable
class IndexProtocol(Protocol):
    """Read-side surface of a subdomain index (mono or sharded).

    Everything downstream of construction — the planner, the strategy
    evaluators, the persistent pool, the serving layer — consumes *this*
    contract, never a concrete class, so the sharded and monolithic
    implementations are interchangeable everywhere answers are read.
    Write-side maintenance goes through :mod:`repro.core.updates`, which
    dispatches on the concrete type.
    """

    @property
    def dataset(self) -> Dataset: ...

    @property
    def queries(self) -> QuerySet: ...

    @property
    def mode(self) -> str: ...

    @property
    def margin(self) -> int: ...

    @property
    def partition_method(self) -> str: ...

    @property
    def workers(self) -> int: ...

    @property
    def epoch(self) -> int: ...

    @property
    def shards(self) -> int: ...

    @property
    def routing(self) -> str: ...

    @property
    def shard_sizes(self) -> tuple[int, ...]: ...

    @property
    def shard_epochs(self) -> tuple[int, ...]: ...

    @property
    def num_subdomains(self) -> int: ...

    @property
    def num_hyperplanes(self) -> int: ...

    def kth_other(self, target: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-query Eq. 6 thresholds: ``(kth_ids, theta)`` arrays."""
        ...

    def hits_mask(self, target: int) -> np.ndarray:
        """Boolean mask over queries currently hit by ``target``."""
        ...

    def hits(self, target: int) -> int:
        """``H(target)`` over the whole workload."""
        ...

    def affected_candidates(
        self, domain: Rect, predicate: "Callable[[Rect, int], bool]"
    ) -> list[int]:
        """Query ids in ``domain`` whose weights satisfy ``predicate``."""
        ...

    def signature_of(self, query_id: int) -> bytes:
        """Side-signature of the cell containing ``query_id``."""
        ...

    def cell_members(self, query_id: int) -> np.ndarray:
        """Query ids sharing ``query_id``'s cell (ascending)."""
        ...

    def shard(self, s: int) -> SubdomainIndex:
        """The ``s``-th monolithic shard (the index itself when K=1)."""
        ...

    def memory_estimate(self) -> int:
        """Approximate resident size of the index in bytes."""
        ...

    def validate(self) -> None:
        """Check structural invariants; raise on corruption."""
        ...

    def mark_boundaries_dirty(self) -> None:
        """Invalidate cached boundary registrations after a mutation."""
        ...

    def notify_mutation(self) -> None:
        """Bump the mutation epoch and fire subscribed callbacks."""
        ...

    def subscribe_mutations(self, callback: "Callable[[], None]") -> None:
        """Register a weakly-held post-mutation callback."""
        ...

    def hot_arrays(self) -> "list[tuple[str, str, object, str]]":
        """Shared-memory residency plan: ``(key, group, owner, attr)``."""
        ...

    def save(self, path: "str | Path", format: str = "npz") -> None:
        """Persist the index (.npz file / sharded or mmap directory)."""
        ...


def resolve_shards(
    shards: "int | str | None", m: int, workers: "int | str | None" = None
) -> int:
    """Resolve a shard-count request into a concrete ``K >= 1``.

    ``None`` means monolithic (``1``).  ``"auto"`` targets one shard per
    resolved construction worker (4 when construction is serial), capped
    so no shard drops below :data:`MIN_QUERIES_PER_SHARD` queries and by
    :data:`MAX_AUTO_SHARDS`; tiny workloads resolve to ``1``.  Explicit
    counts pass through validated but uncapped — the caller asked for
    that layout.
    """
    if shards is None:
        return 1
    if isinstance(shards, str):
        if shards == "auto":
            resolved = resolve_workers(workers)
            want = resolved if resolved >= 2 else 4
            cap = m // MIN_QUERIES_PER_SHARD
            if cap < 2:
                return 1
            return max(2, min(want, cap, MAX_AUTO_SHARDS))
        try:
            shards = int(shards)
        except ValueError:
            raise ValidationError(
                f'shards must be a positive integer or "auto", got {shards!r}'
            ) from None
    count = int(shards)
    if count < 1:
        raise ValidationError(f"shards must be positive, got {count}")
    return count


def build_index(
    dataset: Dataset,
    queries: QuerySet,
    mode: str = "exact",
    margin: int = 2,
    shards: "int | str | None" = None,
    router: "str | ShardRouter | None" = None,
    rtree_max_entries: int = 16,
    rtree_cls: type[RTree] = RTree,
    partition_method: str = "vectorized",
    workers: "int | str | None" = None,
) -> "SubdomainIndex | ShardedSubdomainIndex":
    """The index factory: monolithic or sharded by :func:`resolve_shards`.

    This is the sanctioned construction entry point outside ``core/``,
    ``check/``, and the tests (lint rule RPR012): routing stays a single
    decision instead of ad-hoc ``SubdomainIndex(...)`` calls scattered
    across layers.
    """
    count = resolve_shards(shards, queries.m, workers)
    if count <= 1:
        return SubdomainIndex(
            dataset,
            queries,
            mode=mode,
            margin=margin,
            rtree_max_entries=rtree_max_entries,
            rtree_cls=rtree_cls,
            partition_method=partition_method,
            workers=workers,
        )
    return ShardedSubdomainIndex(
        dataset,
        queries,
        shards=count,
        router=router,
        mode=mode,
        margin=margin,
        rtree_max_entries=rtree_max_entries,
        rtree_cls=rtree_cls,
        partition_method=partition_method,
        workers=workers,
    )


class ShardedSubdomainIndex:
    """``K`` monolithic shards behind the :class:`IndexProtocol` surface.

    Parameters mirror :class:`~repro.core.subdomain.SubdomainIndex`,
    plus:

    shards:
        Number of shards, at least 1 (``1`` is the monolithic-parity
        degenerate case the check harness exercises).
    router:
        A :class:`~repro.index.router.ShardRouter`, a registered policy
        name, or ``None`` for the default grid policy.  Routers are pure
        per-point functions of the weight vector, which is what makes
        the assignment recomputable at :meth:`load` time and stable
        under updates.
    workers:
        With 2+ resolved workers (and the vectorized partition method)
        the shards' hyperplane/signature passes run concurrently, one
        process task per shard, through
        :func:`repro.parallel.construction.parallel_shard_partition`
        with one shared-memory group per shard; otherwise shards build
        serially in routing order.  Either way each shard is
        bit-identical to ``SubdomainIndex(dataset, queries.subset(...))``.
    """

    def __init__(
        self,
        dataset: Dataset,
        queries: QuerySet,
        shards: int,
        router: "str | ShardRouter | None" = None,
        mode: str = "exact",
        margin: int = 2,
        rtree_max_entries: int = 16,
        rtree_cls: type[RTree] = RTree,
        partition_method: str = "vectorized",
        workers: "int | str | None" = None,
    ) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be positive, got {shards}")
        if dataset.dim != queries.dim:
            raise ValidationError(
                f"dataset dim {dataset.dim} != query dim {queries.dim}"
            )
        self.dataset = dataset
        self.queries = queries
        self.mode = mode
        self.margin = margin
        self.partition_method = partition_method
        self.shards = int(shards)
        self.router = get_router(router)
        self.routing = self.router.policy
        self.workers = resolve_workers(workers)
        if partition_method == "literal":
            self.workers = 0
        self._rtree_cls = rtree_cls
        self._rtree_max_entries = rtree_max_entries
        self._mutation_hooks: list = []
        self._epoch = 0
        self._assign_members()
        self._slots: "list[SubdomainIndex | None]" = [None] * self.shards
        self._slot_paths: "list[Path | None]" = [None] * self.shards
        self._slot_hints: "list[dict[str, int]]" = [{} for __ in range(self.shards)]
        if self.workers >= 2 and partition_method == "vectorized":
            self._build_parallel()
        else:
            for s in range(self.shards):
                self._slots[s] = SubdomainIndex(
                    dataset,
                    queries.subset(self._members[s]),
                    mode=mode,
                    margin=margin,
                    rtree_max_entries=rtree_max_entries,
                    rtree_cls=rtree_cls,
                    partition_method=partition_method,
                    workers=0,
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _assign_members(self) -> None:
        """Route every query and derive the per-shard member maps.

        ``_members[s]`` is the strictly ascending array of global query
        ids owned by shard ``s`` — shard-local id ``i`` is global id
        ``_members[s][i]``, the single translation every merge and
        mutation goes through.  Ascending order is an invariant:
        inserts append the new maximum id, removals shift down.
        """
        if self.queries.m:
            self._shard_of = self.router.assign(self.queries.weights, self.shards)
        else:
            self._shard_of = np.empty(0, dtype=np.intp)
        self._members = [
            np.flatnonzero(self._shard_of == s) for s in range(self.shards)
        ]

    def _build_parallel(self) -> None:
        """Concurrent per-shard hyperplane/signature passes."""
        from repro.parallel.construction import parallel_shard_partition

        matrix = self.dataset.matrix
        subsets = [self.queries.subset(members) for members in self._members]
        if self.mode == "exact":
            shared = [
                (a, b) for a in range(self.dataset.n) for b in range(a + 1, self.dataset.n)
            ]
            pair_lists = [shared for __ in range(self.shards)]
            shared_array = np.asarray(shared, dtype=np.intp).reshape(-1, 2)
            pair_arrays = [shared_array for __ in range(self.shards)]
        else:
            pair_lists = [
                relevant_pairs(self.dataset, subset, self.margin) for subset in subsets
            ]
            pair_arrays = [
                np.asarray(pairs, dtype=np.intp).reshape(-1, 2) for pairs in pair_lists
            ]
        results = parallel_shard_partition(
            matrix, pair_arrays, [subset.weights for subset in subsets], self.workers
        )
        for s, (keep_mask, normals, groups) in enumerate(results):
            kept = [pair_lists[s][i] for i in np.flatnonzero(keep_mask)]
            self._slots[s] = SubdomainIndex.from_partition(
                self.dataset,
                subsets[s],
                self.mode,
                self.margin,
                kept,
                normals,
                groups,
                rtree_max_entries=self._rtree_max_entries,
                rtree_cls=self._rtree_cls,
                partition_method=self.partition_method,
            )

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def shard(self, s: int) -> SubdomainIndex:
        """The ``s``-th shard, loading it from disk on first access."""
        if not 0 <= s < self.shards:
            raise ValidationError(f"shard id {s} out of range [0, {self.shards})")
        slot = self._slots[s]
        if slot is None:
            path = self._slot_paths[s]
            if path is None:
                raise IndexCorruptionError(
                    f"shard {s} is neither built nor backed by a file"
                )
            slot = SubdomainIndex.load(
                path, self.dataset, self.queries.subset(self._members[s])
            )
            self._slots[s] = slot
        return slot

    def shard_loaded(self, s: int) -> bool:
        """Whether shard ``s`` is resident (lazy loads stay on disk)."""
        return self._slots[s] is not None

    def shard_members(self, s: int) -> np.ndarray:
        """Global query ids owned by shard ``s`` (ascending)."""
        return self._members[s]

    def _local_id(self, query_id: int) -> tuple[int, int]:
        """``(shard, shard-local id)`` of a global query id."""
        if not 0 <= query_id < self.queries.m:
            raise ValidationError(
                f"query id {query_id} out of range [0, {self.queries.m})"
            )
        s = int(self._shard_of[query_id])
        local = int(np.searchsorted(self._members[s], query_id))
        return s, local

    def _hint(self, s: int, key: str) -> int:
        """Manifest statistic for an unloaded shard (0 when absent)."""
        return int(self._slot_hints[s].get(key, 0))

    # ------------------------------------------------------------------
    # IndexProtocol read surface
    # ------------------------------------------------------------------
    @property
    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(int(members.shape[0]) for members in self._members)

    @property
    def shard_epochs(self) -> tuple[int, ...]:
        """Per-shard mutation counters; unloaded shards are unmutated,
        so their persisted epoch is exact."""
        return tuple(
            slot.epoch if slot is not None else self._hint(s, "epoch")
            for s, slot in enumerate(self._slots)
        )

    @property
    def num_subdomains(self) -> int:
        return sum(
            slot.num_subdomains if slot is not None else self._hint(s, "subdomains")
            for s, slot in enumerate(self._slots)
        )

    @property
    def num_hyperplanes(self) -> int:
        return sum(
            slot.num_hyperplanes if slot is not None else self._hint(s, "hyperplanes")
            for s, slot in enumerate(self._slots)
        )

    @property
    def representative_evaluations(self) -> int:
        """Full rankings computed so far, summed over resident shards."""
        return sum(slot.representative_evaluations for slot in self._slots if slot is not None)

    def memory_estimate(self) -> int:
        """Approximate size in bytes without forcing lazy shards resident."""
        per_shard = sum(
            slot.memory_estimate() if slot is not None else self._hint(s, "memory")
            for s, slot in enumerate(self._slots)
        )
        return per_shard + self.queries.m * 8 + self.shards * 64

    @property
    def epoch(self) -> int:
        """Global mutation counter (see :class:`SubdomainIndex`); every
        routed or fanned-out mutation bumps it exactly once."""
        return self._epoch

    def subscribe_mutations(self, callback: "Callable[[], None]") -> None:
        """Register a post-mutation callback (weakly held; see
        :meth:`SubdomainIndex.subscribe_mutations`)."""
        import weakref

        try:
            ref = weakref.WeakMethod(callback)
        except TypeError:
            ref = weakref.ref(callback)
        self._mutation_hooks.append(ref)

    def notify_mutation(self) -> None:
        """Bump the global epoch and fire live callbacks."""
        self._epoch += 1
        live = []
        for ref in self._mutation_hooks:
            callback = ref()
            if callback is not None:
                callback()
                live.append(ref)
        self._mutation_hooks = live

    def mark_boundaries_dirty(self) -> None:
        """Invalidate boundary registrations on every resident shard."""
        for slot in self._slots:
            if slot is not None:
                slot.mark_boundaries_dirty()

    def kth_other(self, target: int) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 6 thresholds, merged by scattering per-shard results.

        Thresholds are per-query quantities over the shared object set,
        so each shard computes exactly the rows it owns and the merge is
        a pure scatter through the member maps — no cross-shard work.
        """
        self.dataset._check_id(target)
        m = self.queries.m
        kth_ids = np.full(m, -1, dtype=np.intp)
        theta = np.full(m, np.inf)
        for s in range(self.shards):
            members = self._members[s]
            if members.size == 0:
                continue
            ids_s, theta_s = self.shard(s).kth_other(target)
            kth_ids[members] = ids_s
            theta[members] = theta_s
        return kth_ids, theta

    def hits_mask(self, target: int) -> np.ndarray:
        """Boolean mask over (global) queries currently hit by ``target``."""
        from repro.core.subdomain import _beats

        kth_ids, theta = self.kth_other(target)
        scores = self.queries.weights @ self.dataset.matrix[target]
        return _beats(scores, theta, target, kth_ids)

    def hits(self, target: int) -> int:
        """``H(target)`` over the whole workload."""
        return int(self.hits_mask(target).sum())

    def affected_candidates(
        self, domain: Rect, predicate: "Callable[[Rect, int], bool]"
    ) -> list[int]:
        """Union of the per-shard R-tree scans, mapped to global ids.

        ``predicate`` must be a pure function of the weight vector (its
        ``query_id`` argument receives *shard-local* ids here), which
        the ESE slab test is; each shard scans only its own points, so
        the fan-out does exactly the monolithic scan's leaf work.
        """
        out: list[int] = []
        for s in range(self.shards):
            members = self._members[s]
            if members.size == 0:
                continue
            local_hits = self.shard(s).affected_candidates(domain, predicate)
            if local_hits:
                out.extend(int(g) for g in members[np.asarray(local_hits, dtype=np.intp)])
        out.sort()
        return out

    def signature_of(self, query_id: int) -> bytes:
        """Side-signature of the owning shard's cell for ``query_id``."""
        s, local = self._local_id(query_id)
        return self.shard(s).signature_of(local)

    def cell_members(self, query_id: int) -> np.ndarray:
        """Global ids sharing ``query_id``'s cell (cells never span shards)."""
        s, local = self._local_id(query_id)
        return self._members[s][self.shard(s).cell_members(local)]

    def hot_arrays(self) -> "list[tuple[str, str, object, str]]":
        """Shared-memory residency plan, one group per shard.

        The ``global`` group (object matrix + global weights) is touched
        by every mutation kind; a ``shard:<s>`` group (that shard's
        weight subset and normals) changes only when shard ``s``'s epoch
        moves, which is what lets the persistent pool re-share shard
        groups selectively.  Forces lazy shards resident — a pool worker
        must hold the whole index.
        """
        out: "list[tuple[str, str, object, str]]" = [
            ("external", "global", self.dataset, "_external"),
            ("weights", "global", self.queries, "_weights"),
        ]
        for s in range(self.shards):
            shard = self.shard(s)
            out.append((f"weights:{s}", f"shard:{s}", shard.queries, "_weights"))
            out.append((f"normals:{s}", f"shard:{s}", shard, "normals"))
        return out

    def validate(self) -> None:
        """Per-shard invariants plus the global routing invariants."""
        concat = (
            np.sort(np.concatenate(self._members))
            if self.queries.m
            else np.empty(0, dtype=np.intp)
        )
        if not np.array_equal(concat, np.arange(self.queries.m)):
            raise IndexCorruptionError("shard member maps do not partition the workload")
        if self.queries.m:
            expected = self.router.assign(self.queries.weights, self.shards)
            if not np.array_equal(expected, self._shard_of):
                raise IndexCorruptionError(
                    "shard assignment disagrees with the routing policy"
                )
        for s in range(self.shards):
            members = self._members[s]
            if members.size > 1 and not np.all(np.diff(members) > 0):
                raise IndexCorruptionError(f"shard {s} member map is not ascending")
            if not self.shard_loaded(s):
                continue  # lazy shards are validated by load on first access
            shard = self.shard(s)
            if shard.queries.m != members.shape[0]:
                raise IndexCorruptionError(
                    f"shard {s} holds {shard.queries.m} queries, expected {members.shape[0]}"
                )
            if not np.array_equal(shard.queries.weights, self.queries.weights[members]):
                raise IndexCorruptionError(
                    f"shard {s} weights diverged from the global workload"
                )
            if shard.dataset is not self.dataset:
                raise IndexCorruptionError(
                    f"shard {s} holds a different dataset object than the router"
                )
            shard.validate()

    # ------------------------------------------------------------------
    # Maintenance (§4.3): routed / fanned-out mutations
    # ------------------------------------------------------------------
    # These are the write-side counterparts the repro.core.updates
    # dispatcher calls; each delegates the real partition maintenance to
    # the owning monolithic shard(s) and keeps the global bookkeeping
    # (QuerySet, member maps, routing vector) in lock-step.
    def add_query(self, weights: np.ndarray, k: int) -> int:
        """Insert a query into its routed shard; returns its global id."""
        from repro.core import updates

        weights = np.asarray(weights, dtype=float)
        s = self.router.assign_one(weights, self.shards)
        shard = self.shard(s)
        updates.add_query(shard, weights, k)
        self.queries, query_id = self.queries.with_query(weights, k)
        self._members[s] = np.append(self._members[s], query_id)
        self._shard_of = np.append(self._shard_of, s)
        self.notify_mutation()
        return query_id

    def remove_query(self, query_id: int) -> None:
        """Delete a query from its owning shard; global ids shift down."""
        from repro.core import updates

        s, local = self._local_id(query_id)
        updates.remove_query(self.shard(s), local)
        self.queries = self.queries.without_query(query_id)
        keep = np.ones(self._shard_of.shape[0], dtype=bool)
        keep[query_id] = False
        self._shard_of = self._shard_of[keep]
        for t in range(self.shards):
            members = self._members[t]
            members = members[members != query_id]
            self._members[t] = np.where(members > query_id, members - 1, members)
        self.notify_mutation()

    def add_object(self, attributes: np.ndarray) -> int:
        """Fan the insert out to every shard; returns the object's id.

        Each shard's maintenance replaces its dataset with a
        content-equal copy; identity is re-unified afterwards so all
        shards (and the router) keep sharing one object, which
        :meth:`validate` and the pool's ``global`` group rely on.
        """
        from repro.core import updates

        object_id = -1
        for s in range(self.shards):
            object_id = updates.add_object(self.shard(s), attributes)
        self._unify_dataset()
        self.notify_mutation()
        return object_id

    def remove_object(self, object_id: int) -> None:
        """Fan the removal out to every shard; object ids shift down."""
        from repro.core import updates

        for s in range(self.shards):
            updates.remove_object(self.shard(s), object_id)
        self._unify_dataset()
        self.notify_mutation()

    def _unify_dataset(self) -> None:
        """Point every shard (and self) at one dataset object again.

        The fan-out applied the *same* deterministic operation per
        shard, so the per-shard datasets are content-equal; any one of
        them is the canonical post-mutation dataset.
        """
        unified = self.shard(0).dataset
        self.dataset = unified
        for s in range(1, self.shards):
            self.shard(s).dataset = unified

    # ------------------------------------------------------------------
    # Persistence: per-shard directory with a versioned manifest
    # ------------------------------------------------------------------
    def save(self, path: "str | Path", format: str = "npz") -> None:
        """Persist to a directory: ``manifest.json`` + one entry per shard.

        Shard entries use the unchanged monolithic formats — a ``.npz``
        file per shard by default, or one mmap subdirectory per shard
        with ``format="mmap"`` — so a single shard stays independently
        loadable with :meth:`SubdomainIndex.load` (which auto-detects
        either layout).  The manifest carries the router parameters
        (the assignment is *recomputed* at load, never stored per
        query), the shard layout, and per-shard statistics so a lazily
        loaded index can answer EXPLAIN without touching shard files.
        """
        if format not in INDEX_FORMATS:
            raise ValidationError(
                f"unknown index format {format!r}; choose from {INDEX_FORMATS}"
            )
        path = Path(path)
        if path.exists() and not path.is_dir():
            raise ValidationError(f"sharded index path {path} exists and is not a directory")
        path.mkdir(parents=True, exist_ok=True)
        entries = []
        for s in range(self.shards):
            shard = self.shard(s)
            filename = f"shard-{s:04d}.npz" if format == "npz" else f"shard-{s:04d}"
            shard.save(path / filename, format=format)
            entries.append(
                {
                    "file": filename,
                    "queries": int(self._members[s].shape[0]),
                    "epoch": int(shard.epoch),
                    "subdomains": int(shard.num_subdomains),
                    "hyperplanes": int(shard.num_hyperplanes),
                    "memory": int(shard.memory_estimate()),
                }
            )
        manifest = {
            "schema": SHARDED_SCHEMA,
            "layout": format,
            "shards": self.shards,
            "mode": self.mode,
            "margin": self.margin,
            "partition_method": self.partition_method,
            "rtree_max_entries": self._rtree_max_entries,
            "router": self.router.describe(),
            "epoch": self._epoch,
            "dataset_fingerprint": dataset_fingerprint(self.dataset),
            "queries_fingerprint": queryset_fingerprint(self.queries),
            "shard_files": entries,
        }
        (path / "manifest.json").write_text(json.dumps(manifest, indent=2))

    @classmethod
    def load(
        cls,
        path: "str | Path",
        dataset: Dataset,
        queries: QuerySet,
        lazy: bool = False,
    ) -> "ShardedSubdomainIndex":
        """Restore a sharded index against the same dataset and workload.

        The manifest's fingerprints must match (else
        :class:`~repro.errors.ValidationError`); a damaged manifest or
        a shard layout that disagrees with the recomputed routing raises
        :class:`~repro.errors.IndexCorruptionError`.  With
        ``lazy=True`` shard files stay on disk until first touched by a
        query or mutation; EXPLAIN statistics come from the manifest.
        """
        path = Path(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.exists():
            raise ValidationError(f"no sharded index manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            raise IndexCorruptionError(
                f"sharded index manifest {manifest_path} is corrupt: {exc}"
            ) from exc
        try:
            schema = manifest["schema"]
            if schema != SHARDED_SCHEMA:
                raise ValidationError(
                    f"unsupported sharded schema {schema!r} (expected {SHARDED_SCHEMA!r})"
                )
            if manifest["dataset_fingerprint"] != dataset_fingerprint(dataset):
                raise ValidationError(
                    "saved sharded index was built for a different dataset "
                    "(fingerprint mismatch)"
                )
            if manifest["queries_fingerprint"] != queryset_fingerprint(queries):
                raise ValidationError(
                    "saved sharded index was built for a different workload "
                    "(fingerprint mismatch)"
                )
            shards = int(manifest["shards"])
            mode = str(manifest["mode"])
            margin = int(manifest["margin"])
            partition_method = str(manifest["partition_method"])
            max_entries = int(manifest["rtree_max_entries"])
            router_params = dict(manifest["router"])
            epoch = int(manifest["epoch"])
            entries = list(manifest["shard_files"])
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ValidationError):
                raise
            raise IndexCorruptionError(
                f"sharded index manifest {manifest_path} is missing or mistypes "
                f"required fields: {exc!r}"
            ) from exc
        if shards < 1 or len(entries) != shards:
            raise IndexCorruptionError(
                f"manifest lists {len(entries)} shard files for shards={shards}"
            )

        index = cls.__new__(cls)
        index.dataset = dataset
        index.queries = queries
        index.mode = mode
        index.margin = margin
        index.partition_method = partition_method
        index.shards = shards
        index.router = get_router(**router_params)
        index.routing = index.router.policy
        index.workers = 0
        index._rtree_cls = RTree
        index._rtree_max_entries = max_entries
        index._mutation_hooks = []
        index._epoch = epoch
        index._assign_members()
        index._slots = [None] * shards
        index._slot_paths = [None] * shards
        index._slot_hints = [{} for __ in range(shards)]
        for s, entry in enumerate(entries):
            expected = int(index._members[s].shape[0])
            recorded = int(entry["queries"])
            if recorded != expected:
                raise IndexCorruptionError(
                    f"manifest says shard {s} holds {recorded} queries but the "
                    f"routing policy assigns it {expected}"
                )
            index._slot_paths[s] = path / str(entry["file"])
            index._slot_hints[s] = {
                key: int(entry[key])
                for key in ("epoch", "subdomains", "hyperplanes", "memory")
                if key in entry
            }
        if not lazy:
            for s in range(shards):
                index.shard(s)
        return index

    @classmethod
    def load_shard(
        cls, path: "str | Path", dataset: Dataset, queries: QuerySet, s: int
    ) -> SubdomainIndex:
        """Load shard ``s`` alone as a standalone monolithic index.

        The returned index covers only the shard's query subset
        (recomputed from the manifest's router), useful for
        inspecting or serving one weight-space region without paying
        for the rest.
        """
        index = cls.load(path, dataset, queries, lazy=True)
        return index.shard(s)
