"""Execution planning for improvement queries.

Every ``engine.min_cost`` / ``engine.max_hit`` call is processed in two
explicit steps: a *plan* step that resolves the solver through the
registry, internalizes the cost/space arguments at the boundary layer,
and snapshots the index statistics the solver will run against; and an
*execute* step that hands the plan's solver the chosen evaluator.
``engine.explain(...)`` (and SQL ``EXPLAIN IMPROVE ...``) returns the
plan of the first step without running the second, so a plan is also
the inspection surface: what would run, against which index, with which
candidate-generation scheme, and with which fallback caveats.

:class:`ExecutionPlan` is frozen — a plan describes one query at one
index epoch and is never mutated; re-planning after an index mutation
yields a plan with a newer ``epoch``.

:class:`ExecutedPlan` extends the plan with what ``EXPLAIN ANALYZE``
observed while actually running it — per-stage wall-clock and work
counters from the :mod:`repro.observe` recorder — plus the workload
fingerprint the stats store filed the run under.  It stays frozen for
the same reason: it describes one *completed* run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.core.boundary import describe_cost, describe_space
from repro.core.cost import CostFunction
from repro.core.sharding import IndexProtocol
from repro.core.solvers import QUERY_KINDS, Solver
from repro.core.strategy import StrategySpace
from repro.errors import ValidationError

__all__ = [
    "ANALYZE_FIELDS",
    "ExecutedPlan",
    "ExecutionPlan",
    "PLAN_FIELDS",
    "build_plan",
]

#: Ordered field names every plan rendering (CLI, SQL, bench JSON)
#: exposes; kept in lock-step with :meth:`ExecutionPlan.to_dict`.
PLAN_FIELDS = (
    "kind",
    "solver",
    "evaluator",
    "target",
    "goal",
    "sense",
    "index_mode",
    "partition_method",
    "num_subdomains",
    "num_hyperplanes",
    "epoch",
    "workers",
    "kernel",
    "kernel_backend",
    "shards",
    "routing",
    "shard_sizes",
    "index_memory",
    "candidate_method",
    "cost",
    "space",
    "notes",
)

#: Ordered observation field names an ``EXPLAIN ANALYZE`` rendering
#: appends after :data:`PLAN_FIELDS`; kept in lock-step with
#: :meth:`ExecutedPlan.to_dict`.
ANALYZE_FIELDS = (
    "fingerprint",
    "total_seconds",
    "plan_seconds",
    "candidates_seconds",
    "evaluate_seconds",
    "solve_seconds",
    "candidates_generated",
    "evaluations",
    "iterations",
)


@dataclass(frozen=True)
class ExecutionPlan:
    """How one improvement query will be (or was) processed.

    ``cost`` and ``space`` describe the *internalized* arguments — what
    the solver actually receives after the boundary layer's sense
    conversion — so an EXPLAIN under ``sense="max"`` shows e.g. the
    swapped asymmetric prices.  ``notes`` carries fallback caveats
    (relevant-mode prefix depth, RTA's membership fallback, ...).
    """

    kind: str  #: "min_cost" | "max_hit"
    solver: Solver = field(compare=False)  #: the registered solver (singleton)
    target: int = 0
    goal: float = 0.0  #: tau (min_cost) or budget (max_hit)
    sense: str = "min"
    index_mode: str = "exact"
    partition_method: str = "vectorized"
    num_subdomains: int = 0
    num_hyperplanes: int = 0
    epoch: int = 0  #: index epoch the plan was built against
    workers: int = 0  #: construction pool size (0/1 = serial reference path)
    kernel: str = "auto"  #: requested kernel backend (--kernel / REPRO_KERNEL)
    kernel_backend: str = "python"  #: resolved backend the kernels dispatch to
    shards: int = 1  #: index shard count (1 = monolithic)
    routing: str = "none"  #: shard routing policy ("none" when monolithic)
    shard_sizes: tuple[int, ...] = ()  #: workload queries per shard
    index_memory: int = 0  #: index memory_estimate() in bytes at plan time
    cost: str = ""  #: internalized cost, rendered
    space: str = "unconstrained"  #: internalized strategy box, rendered
    notes: tuple[str, ...] = ()

    @property
    def solver_name(self) -> str:
        return self.solver.name

    @property
    def evaluator(self) -> str:
        """Evaluation engine behind the solver ("ese" | "rta")."""
        return self.solver.evaluator

    @property
    def candidate_method(self) -> str:
        return self.solver.candidate_method

    def to_dict(self) -> dict[str, object]:
        """JSON-ready plan fields, in :data:`PLAN_FIELDS` order."""
        values: dict[str, object] = {
            "kind": self.kind,
            "solver": self.solver_name,
            "evaluator": self.evaluator,
            "target": self.target,
            "goal": self.goal,
            "sense": self.sense,
            "index_mode": self.index_mode,
            "partition_method": self.partition_method,
            "num_subdomains": self.num_subdomains,
            "num_hyperplanes": self.num_hyperplanes,
            "epoch": self.epoch,
            "workers": self.workers,
            "kernel": self.kernel,
            "kernel_backend": self.kernel_backend,
            "shards": self.shards,
            "routing": self.routing,
            "shard_sizes": list(self.shard_sizes),
            "index_memory": self.index_memory,
            "candidate_method": self.candidate_method,
            "cost": self.cost,
            "space": self.space,
            "notes": list(self.notes),
        }
        return values

    def rows(self) -> list[tuple[str, str]]:
        """``(field, rendered value)`` pairs for tabular display."""
        out: list[tuple[str, str]] = []
        for name, value in self.to_dict().items():
            if name == "goal":
                # A Min-Cost tau is a hit-count and reads as one; a
                # Max-Hit budget keeps its float-ness so ``goal=2.0``
                # cannot be mistaken for a tau of 2.
                if self.kind == "min_cost" and float(value).is_integer():  # type: ignore[arg-type]
                    rendered = str(int(value))  # type: ignore[arg-type]
                else:
                    rendered = str(float(value))  # type: ignore[arg-type]
            elif name.endswith("_seconds"):
                rendered = f"{float(value):.6f}"  # type: ignore[arg-type]
            elif isinstance(value, list):
                rendered = "; ".join(str(item) for item in value)
            elif isinstance(value, float) and float(value).is_integer():
                rendered = str(int(value))
            else:
                rendered = str(value)
            out.append((name, rendered))
        return out

    def render(self) -> str:
        """Multi-line ``field = value`` text block (the CLI's EXPLAIN)."""
        rows = self.rows()
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


@dataclass(frozen=True)
class ExecutedPlan(ExecutionPlan):
    """An :class:`ExecutionPlan` plus what actually happened when it ran.

    Produced by ``engine.analyze(...)`` / ``EXPLAIN ANALYZE``: the base
    plan fields are copied verbatim from the plan that ran (plus any
    feedback-advisory notes), and the observation fields carry the
    :mod:`repro.observe` recorder's per-stage wall-clock and counters.
    Stage seconds are honest per-region wall-clock, not an exclusive
    partition — ``evaluate`` time spent scoring a candidate batch is
    also inside ``candidates``.
    """

    fingerprint: str = ""  #: stats-store workload key the run was filed under
    total_seconds: float = 0.0  #: end-to-end wall-clock of the analyzed call
    plan_seconds: float = 0.0
    candidates_seconds: float = 0.0
    evaluate_seconds: float = 0.0
    solve_seconds: float = 0.0
    candidates_generated: int = 0
    evaluations: int = 0  #: full hit evaluations (ESE/RTA) performed
    iterations: int = 0  #: greedy iterations applied

    @classmethod
    def from_plan(
        cls,
        plan: ExecutionPlan,
        *,
        fingerprint: str,
        total_seconds: float,
        stage_seconds: dict[str, float],
        counts: dict[str, int],
        extra_notes: tuple[str, ...] = (),
    ) -> "ExecutedPlan":
        """Attach one run's observations to the plan that produced it."""
        base = {f.name: getattr(plan, f.name) for f in fields(ExecutionPlan)}
        base["notes"] = tuple(base["notes"]) + tuple(extra_notes)
        return cls(
            **base,
            fingerprint=fingerprint,
            total_seconds=float(total_seconds),
            plan_seconds=float(stage_seconds.get("plan", 0.0)),
            candidates_seconds=float(stage_seconds.get("candidates", 0.0)),
            evaluate_seconds=float(stage_seconds.get("evaluate", 0.0)),
            solve_seconds=float(stage_seconds.get("solve", 0.0)),
            candidates_generated=int(counts.get("candidates", 0)),
            evaluations=int(counts.get("evaluations", 0)),
            iterations=int(counts.get("iterations", 0)),
        )

    def to_dict(self) -> dict[str, object]:
        """Plan fields then observations: :data:`PLAN_FIELDS` +
        :data:`ANALYZE_FIELDS` order."""
        values = super().to_dict()
        values["fingerprint"] = self.fingerprint
        values["total_seconds"] = self.total_seconds
        values["plan_seconds"] = self.plan_seconds
        values["candidates_seconds"] = self.candidates_seconds
        values["evaluate_seconds"] = self.evaluate_seconds
        values["solve_seconds"] = self.solve_seconds
        values["candidates_generated"] = self.candidates_generated
        values["evaluations"] = self.evaluations
        values["iterations"] = self.iterations
        return values


def build_plan(
    index: IndexProtocol,
    solver: Solver,
    kind: str,
    target: int,
    goal: float,
    cost: CostFunction,
    space: StrategySpace | None,
    extra_notes: tuple[str, ...] = (),
    kernel: tuple[str, str] = ("auto", "python"),
) -> ExecutionPlan:
    """Assemble the frozen plan for one query against one index state.

    ``cost`` and ``space`` must already be internalized (the engine's
    boundary step does this); the index statistics and ``epoch`` are
    snapshotted here, so a stale plan is detectable by comparing its
    ``epoch`` against ``index.epoch``.  ``kernel`` is the engine's
    ``(requested, resolved)`` backend pair — EXPLAIN shows both so a
    ``native`` request that degraded to python (numba absent) is
    visible.
    """
    if kind not in QUERY_KINDS:
        raise ValidationError(f"kind must be one of {QUERY_KINDS}, got {kind!r}")
    index.dataset._check_id(target)
    notes = list(solver.notes) + list(extra_notes)
    if index.mode == "relevant":
        notes.append(
            f"relevant-mode index: rankings below depth k+{index.margin} fall "
            f"back to direct evaluation"
        )
    return ExecutionPlan(
        kind=kind,
        solver=solver,
        target=int(target),
        goal=float(goal),
        sense=index.dataset.sense,
        index_mode=index.mode,
        partition_method=index.partition_method,
        num_subdomains=index.num_subdomains,
        num_hyperplanes=index.num_hyperplanes,
        epoch=index.epoch,
        workers=index.workers,
        kernel=kernel[0],
        kernel_backend=kernel[1],
        shards=index.shards,
        routing=index.routing,
        shard_sizes=index.shard_sizes,
        index_memory=index.memory_estimate(),
        cost=describe_cost(cost),
        space=describe_space(space),
        notes=tuple(notes),
    )
