"""Shared machinery of the greedy improvement-strategy searches.

Both Algorithm 3 (Min-Cost) and Algorithm 4 (Max-Hit) repeat the same
inner step: for every not-yet-hit query, solve the single-constraint
subproblem "cheapest strategy that hits exactly this query" (Eq. 13-14),
score each candidate's total hit count with ESE, and pick the candidate
with the best cost-per-hit ratio.  This module implements that step once.

Everything here operates in the *internal* (min-convention) attribute
space; the engine converts costs, bounds, and result strategies at the
API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import CostFunction, L2Cost
from repro.core.ese import StrategyEvaluator
from repro.core.strategy import StrategySpace
from repro.errors import InfeasibleError
from repro.optimize.hit_cost import DEFAULT_MARGIN, min_cost_to_hit

__all__ = ["CandidateBatch", "generate_candidates", "SearchState"]


@dataclass
class CandidateBatch:
    """Candidate strategies of one greedy iteration.

    All arrays are aligned: candidate ``i`` targets ``query_ids[i]``,
    moves the target by ``vectors[i]``, costs ``costs[i]``, and yields
    ``hits[i]`` total hit queries.
    """

    query_ids: np.ndarray  #: (c,) workload ids
    vectors: np.ndarray  #: (c, d) internal strategy increments
    costs: np.ndarray  #: (c,) incremental costs
    hits: np.ndarray  #: (c,) H(p' + s) per candidate

    @property
    def size(self) -> int:
        return int(self.query_ids.shape[0])

    def best_ratio(self) -> int:
        """Index of the candidate minimizing cost per hit query.

        Candidates that hit nothing are ignored; ties prefer the
        cheaper candidate, then the lower query id (determinism).
        """
        ratios = np.where(self.hits > 0, self.costs / np.maximum(self.hits, 1), np.inf)
        order = np.lexsort((self.query_ids, self.costs, ratios))
        return int(order[0])


@dataclass
class SearchState:
    """Mutable state threaded through a greedy search."""

    target: int
    base: np.ndarray  #: original internal position of the target
    applied: np.ndarray  #: accumulated internal strategy
    spent: float  #: accumulated cost (greedy accounting)
    mask: np.ndarray  #: current hit mask

    @property
    def position(self) -> np.ndarray:
        return self.base + self.applied

    @property
    def hits(self) -> int:
        return int(self.mask.sum())


def generate_candidates(
    evaluator: StrategyEvaluator,
    state: SearchState,
    cost: CostFunction,
    space: StrategySpace,
    margin: float = DEFAULT_MARGIN,
    max_cost: float | None = None,
) -> CandidateBatch:
    """One candidate per unhit query, scored with ESE.

    ``space`` is the *remaining* strategy box (already shifted by the
    accumulated strategy).  ``max_cost`` drops candidates costlier than
    the remaining budget before the (comparatively expensive) batch hit
    evaluation — the filter of §5.1 step 2.
    """
    index = evaluator.index
    weights = index.queries.weights
    __, theta = evaluator.thresholds(state.target)
    unhit = np.flatnonzero(~state.mask)
    position = state.position

    picked_ids: list[int] = []
    vectors: list[np.ndarray] = []
    costs: list[float] = []

    unbounded = not (np.isfinite(space.lower).any() or np.isfinite(space.upper).any())
    plain_l2 = isinstance(cost, L2Cost) and np.all(cost.weights == 1.0)
    if unbounded and plain_l2 and unhit.size:
        # Vectorized closed form: s_j = b_j * q_j / ||q_j||^2 for every
        # unhit query at once (the common benchmark configuration).
        q = weights[unhit]
        gaps = theta[unhit] - q @ position
        bounds = gaps - margin
        norms = np.einsum("ij,ij->i", q, q)
        feasible = norms > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(feasible, bounds / np.maximum(norms, 1e-300), 0.0)
        vectors_all = scale[:, None] * q
        vectors_all[bounds >= 0] = 0.0  # already hitting: free candidate
        for row, j in enumerate(unhit):
            if not feasible[row]:
                continue
            picked_ids.append(int(j))
            vectors.append(vectors_all[row])
            costs.append(float(np.linalg.norm(vectors_all[row])))
    else:
        for j in unhit:
            gap = float(theta[j] - weights[j] @ position)
            try:
                candidate = min_cost_to_hit(cost, weights[j], gap, space=space, margin=margin)
            except InfeasibleError:
                continue
            picked_ids.append(int(j))
            vectors.append(candidate.vector)
            costs.append(candidate.cost)

    if not picked_ids:
        empty = np.empty((0, index.dataset.dim))
        return CandidateBatch(
            query_ids=np.empty(0, dtype=np.intp),
            vectors=empty,
            costs=np.empty(0),
            hits=np.empty(0, dtype=np.intp),
        )

    query_ids = np.asarray(picked_ids, dtype=np.intp)
    matrix = np.vstack(vectors)
    cost_arr = np.asarray(costs)
    if max_cost is not None:
        keep = cost_arr <= max_cost + 1e-12
        query_ids, matrix, cost_arr = query_ids[keep], matrix[keep], cost_arr[keep]
        if query_ids.size == 0:
            return CandidateBatch(
                query_ids=query_ids,
                vectors=matrix,
                costs=cost_arr,
                hits=np.empty(0, dtype=np.intp),
            )
    hits = evaluator.evaluate_many(state.target, position + matrix)
    return CandidateBatch(query_ids=query_ids, vectors=matrix, costs=cost_arr, hits=hits)
