"""Shared machinery of the greedy improvement-strategy searches.

Both Algorithm 3 (Min-Cost) and Algorithm 4 (Max-Hit) repeat the same
inner step: for every not-yet-hit query, solve the single-constraint
subproblem "cheapest strategy that hits exactly this query" (Eq. 13-14),
score each candidate's total hit count with ESE, and pick the candidate
with the best cost-per-hit ratio.  This module implements that step once.

Everything here operates in the *internal* (min-convention) attribute
space; the engine converts costs, bounds, and result strategies at the
API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import CostFunction, L2Cost
from repro.core.ese import StrategyEvaluator
from repro.core.strategy import StrategySpace
from repro.errors import InfeasibleError, ValidationError
from repro.observe import stage, tally
from repro.optimize.hit_cost import (
    DEFAULT_MARGIN,
    min_cost_to_hit,
    min_cost_to_hit_l2_batch,
)

__all__ = ["CandidateBatch", "generate_candidates", "SearchState"]

_CANDIDATE_METHODS = ("auto", "loop")


@dataclass
class CandidateBatch:
    """Candidate strategies of one greedy iteration.

    All arrays are aligned: candidate ``i`` targets ``query_ids[i]``,
    moves the target by ``vectors[i]``, costs ``costs[i]``, and yields
    ``hits[i]`` total hit queries.
    """

    query_ids: np.ndarray  #: (c,) workload ids
    vectors: np.ndarray  #: (c, d) internal strategy increments
    costs: np.ndarray  #: (c,) incremental costs
    hits: np.ndarray  #: (c,) H(p' + s) per candidate

    @property
    def size(self) -> int:
        return int(self.query_ids.shape[0])

    def best_ratio(self) -> int:
        """Index of the candidate minimizing cost per hit query.

        Candidates that hit nothing are ignored; ties prefer the
        cheaper candidate, then the lower query id (determinism).
        """
        ratios = np.where(self.hits > 0, self.costs / np.maximum(self.hits, 1), np.inf)
        order = np.lexsort((self.query_ids, self.costs, ratios))
        return int(order[0])


@dataclass
class SearchState:
    """Mutable state threaded through a greedy search."""

    target: int
    base: np.ndarray  #: original internal position of the target
    applied: np.ndarray  #: accumulated internal strategy
    spent: float  #: accumulated cost (greedy accounting)
    mask: np.ndarray  #: current hit mask

    @property
    def position(self) -> np.ndarray:
        return self.base + self.applied

    @property
    def hits(self) -> int:
        return int(self.mask.sum())


def generate_candidates(
    evaluator: StrategyEvaluator,
    state: SearchState,
    cost: CostFunction,
    space: StrategySpace,
    margin: float = DEFAULT_MARGIN,
    max_cost: float | None = None,
    method: str = "auto",
) -> CandidateBatch:
    """One candidate per unhit query, scored with ESE.

    ``space`` is the *remaining* strategy box (already shifted by the
    accumulated strategy).  ``max_cost`` drops candidates costlier than
    the remaining budget before the (comparatively expensive) batch hit
    evaluation — the filter of §5.1 step 2.  The comparison is exact
    (``cost <= max_cost``): any numeric slack is the caller's to grant,
    *once*, against the original budget — adding a per-iteration epsilon
    here would let accumulated spend drift past the budget over many
    iterations (the budget-accounting bug the correctness harness
    guards).

    ``method="auto"`` (default) solves every weighted-L2 subproblem in
    one vectorized closed-form batch — bounded strategy boxes included,
    as long as the row's optimum is not clipped by an active bound —
    and falls back to :func:`min_cost_to_hit` only for box-active rows
    and genuinely custom costs.  ``method="loop"`` forces the per-query
    solver for every row (the benchmark-regression baseline).
    """
    if method not in _CANDIDATE_METHODS:
        raise ValidationError(
            f"method must be one of {_CANDIDATE_METHODS}, got {method!r}"
        )
    with stage("candidates"):
        return _generate_candidates(evaluator, state, cost, space, margin, max_cost, method)


def _generate_candidates(
    evaluator: StrategyEvaluator,
    state: SearchState,
    cost: CostFunction,
    space: StrategySpace,
    margin: float,
    max_cost: float | None,
    method: str,
) -> CandidateBatch:
    index = evaluator.index
    weights = index.queries.weights
    __, theta = evaluator.thresholds(state.target)
    unhit = np.flatnonzero(~state.mask)
    position = state.position
    dim = index.dataset.dim

    rows = unhit.size
    vectors_all = np.zeros((rows, dim))
    costs_all = np.zeros(rows)
    keep = np.zeros(rows, dtype=bool)
    loop_rows = np.arange(rows)

    if method == "auto" and isinstance(cost, L2Cost) and rows:
        q = weights[unhit]
        gaps = theta[unhit] - q @ position
        batch_vecs, batch_costs, solved, infeasible = min_cost_to_hit_l2_batch(
            cost, q, gaps, space=space, margin=margin
        )
        vectors_all[solved] = batch_vecs[solved]
        costs_all[solved] = batch_costs[solved]
        keep |= solved
        loop_rows = np.flatnonzero(~solved & ~infeasible)

    for row in loop_rows:
        j = unhit[row]
        gap = float(theta[j] - weights[j] @ position)
        try:
            candidate = min_cost_to_hit(cost, weights[j], gap, space=space, margin=margin)
        except InfeasibleError:
            continue
        vectors_all[row] = candidate.vector
        costs_all[row] = candidate.cost
        keep[row] = True

    if not keep.any():
        return CandidateBatch(
            query_ids=np.empty(0, dtype=np.intp),
            vectors=np.empty((0, dim)),
            costs=np.empty(0),
            hits=np.empty(0, dtype=np.intp),
        )

    query_ids = unhit[keep].astype(np.intp)
    matrix = vectors_all[keep]
    cost_arr = costs_all[keep]
    if max_cost is not None:
        keep = cost_arr <= max_cost
        query_ids, matrix, cost_arr = query_ids[keep], matrix[keep], cost_arr[keep]
        if query_ids.size == 0:
            return CandidateBatch(
                query_ids=query_ids,
                vectors=matrix,
                costs=cost_arr,
                hits=np.empty(0, dtype=np.intp),
            )
    tally("candidates", int(query_ids.size))
    tally("evaluations", int(query_ids.size))
    with stage("evaluate"):
        hits = evaluator.evaluate_many(state.target, position + matrix)
    return CandidateBatch(query_ids=query_ids, vectors=matrix, costs=cost_arr, hits=hits)
