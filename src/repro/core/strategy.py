"""Improvement strategies and the space of valid adjustments.

An improvement strategy (paper Def. 1) is a vector ``s`` added to the
target object's attributes.  The paper additionally requires strategies
to be *valid*: adjusted values must stay in their allowed ranges, and
the issuer may forbid adjusting some attributes at all (§4.2.1, the
``s_i = 0`` constraint).  :class:`StrategySpace` captures those
per-attribute constraints as a box on ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Iterable

import numpy as np

from repro.constants import EPS_FEASIBILITY
from repro.errors import ValidationError

__all__ = ["Strategy", "StrategySpace"]


@dataclass(frozen=True)
class Strategy:
    """An immutable improvement strategy vector with its incurred cost."""

    vector: np.ndarray
    cost: float = 0.0

    def __post_init__(self) -> None:
        vector = np.asarray(self.vector, dtype=float)
        if vector.ndim != 1:
            raise ValidationError(f"strategy must be 1-D, got shape {vector.shape}")
        if not np.isfinite(vector).all():
            raise ValidationError("strategy contains non-finite values")
        vector.setflags(write=False)
        object.__setattr__(self, "vector", vector)
        object.__setattr__(self, "cost", float(self.cost))

    @classmethod
    def zero(cls, dim: int) -> "Strategy":
        return cls(np.zeros(dim))

    @property
    def dim(self) -> int:
        return self.vector.shape[0]

    def is_zero(self, tol: float = 0.0) -> bool:
        """True when the strategy changes nothing (within ``tol``)."""
        return bool(np.abs(self.vector).max(initial=0.0) <= tol)

    def apply_to(self, point: np.ndarray) -> np.ndarray:
        """The improved object ``p' = p + s``."""
        point = np.asarray(point, dtype=float)
        if point.shape != self.vector.shape:
            raise ValidationError(f"object shape {point.shape} != strategy {self.vector.shape}")
        return point + self.vector

    def compose(self, other: "Strategy") -> "Strategy":
        """Sequential application; costs add (the greedy search accounting)."""
        if other.dim != self.dim:
            raise ValidationError(f"dim mismatch: {self.dim} vs {other.dim}")
        return Strategy(self.vector + other.vector, self.cost + other.cost)


@dataclass
class StrategySpace:
    """Box constraints on valid strategies for one target object.

    ``lower[i] <= s_i <= upper[i]``.  A frozen attribute has
    ``lower[i] == upper[i] == 0``.  Bounds default to unconstrained
    (the paper's ``p_i + s in R^d`` case); use
    :meth:`from_value_range` to derive strategy bounds from allowed
    attribute-value ranges, which is how the analytic tool's
    "adjust attribute X within [a, b]" option is expressed.
    """

    dim: int
    lower: np.ndarray = field(default=None)
    upper: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValidationError(f"dim must be positive, got {self.dim}")
        self.lower = (
            np.full(self.dim, -np.inf) if self.lower is None else np.asarray(self.lower, float)
        )
        self.upper = (
            np.full(self.dim, np.inf) if self.upper is None else np.asarray(self.upper, float)
        )
        if self.lower.shape != (self.dim,) or self.upper.shape != (self.dim,):
            raise ValidationError("bounds must match the dimension")
        if np.any(self.lower > self.upper):
            raise ValidationError("lower bound exceeds upper bound")
        if np.any(self.lower > 0) or np.any(self.upper < 0):
            raise ValidationError("the zero strategy must always be valid")

    @classmethod
    def unconstrained(cls, dim: int) -> "StrategySpace":
        return cls(dim)

    @classmethod
    def from_value_range(
        cls,
        point: np.ndarray,
        value_lower: "np.typing.ArrayLike",
        value_upper: "np.typing.ArrayLike",
    ) -> "StrategySpace":
        """Strategy bounds keeping ``point + s`` within attribute ranges."""
        point = np.asarray(point, dtype=float)
        value_lower = np.asarray(value_lower, dtype=float)
        value_upper = np.asarray(value_upper, dtype=float)
        if np.any(point < value_lower) or np.any(point > value_upper):
            raise ValidationError("object already outside its allowed value range")
        return cls(point.shape[0], lower=value_lower - point, upper=value_upper - point)

    def freeze(self, attributes: "Iterable[int]") -> "StrategySpace":
        """A copy with the given attribute indices made unadjustable."""
        lower, upper = self.lower.copy(), self.upper.copy()
        for i in attributes:
            if not 0 <= i < self.dim:
                raise ValidationError(f"attribute index {i} out of range")
            lower[i] = upper[i] = 0.0
        return StrategySpace(self.dim, lower=lower, upper=upper)

    def contains(self, s: np.ndarray, tol: float = EPS_FEASIBILITY) -> bool:
        """Is ``s`` a valid strategy within the box (with slack ``tol``)?"""
        s = np.asarray(s, dtype=float)
        if s.shape != (self.dim,):
            raise ValidationError(f"strategy shape {s.shape} != ({self.dim},)")
        return bool(np.all(s >= self.lower - tol) and np.all(s <= self.upper + tol))

    def clip(self, s: np.ndarray) -> np.ndarray:
        """Project ``s`` onto the box."""
        return np.clip(np.asarray(s, dtype=float), self.lower, self.upper)

    def shifted(self, applied: np.ndarray) -> "StrategySpace":
        """Remaining room after a partial strategy ``applied`` was used.

        The iterative searches apply strategies incrementally; the box
        for the next increment shrinks by what was already consumed so
        the *total* strategy stays valid.
        """
        applied = np.asarray(applied, dtype=float)
        if applied.shape != (self.dim,):
            raise ValidationError(f"applied shape {applied.shape} != ({self.dim},)")
        lower = self.lower - applied
        upper = self.upper - applied
        # Numerical slack: the accumulated strategy may sit a hair past a
        # bound; snap the remaining box so zero stays valid.
        return StrategySpace(self.dim, lower=np.minimum(lower, 0.0), upper=np.maximum(upper, 0.0))
