"""Min-Cost improvement queries (paper §4.2.1, Algorithm 3).

Greedy search for the cheapest strategy making the target hit at least
``tau`` queries: each iteration generates one candidate per unhit query
(Eq. 13-14), scores them with ESE, applies the candidate with the best
cost-per-hit ratio, and stops when the goal is reached — with the
paper's anti-overshoot rule (line 10-13): if the best-ratio candidate
would exceed ``tau``, apply instead the *cheapest* candidate that
reaches ``tau``.
"""

from __future__ import annotations

import numpy as np

from repro.core._search import CandidateBatch, SearchState, generate_candidates
from repro.core.cost import CostFunction
from repro.core.ese import StrategyEvaluator
from repro.core.results import IQResult, IterationRecord
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import ValidationError
from repro.observe import stage, tally
from repro.optimize.hit_cost import DEFAULT_MARGIN

__all__ = ["min_cost_iq"]

#: A stall is an applied candidate that fails to raise ``H``; two in a
#: row means the greedy is cycling and the search aborts unsatisfied.
_MAX_STALLS = 2


def min_cost_iq(
    evaluator: StrategyEvaluator,
    target: int,
    tau: int,
    cost: CostFunction,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
    max_iterations: int | None = None,
) -> IQResult:
    """Algorithm 3 in internal (min-convention) coordinates.

    Returns an :class:`~repro.core.results.IQResult`; ``satisfied`` is
    False when the goal is unreachable within the strategy bounds (the
    partial best-effort strategy is still returned).
    """
    index = evaluator.index
    if tau < 1:
        raise ValidationError(f"tau must be >= 1, got {tau}")
    if tau > index.queries.m:
        raise ValidationError(
            f"tau={tau} exceeds the workload size m={index.queries.m}; unreachable by definition"
        )
    if cost.dim != index.dataset.dim:
        raise ValidationError(f"cost dim {cost.dim} != dataset dim {index.dataset.dim}")
    space = space or StrategySpace.unconstrained(index.dataset.dim)
    if max_iterations is None:
        max_iterations = 2 * tau + 16

    state = SearchState(
        target=target,
        base=index.dataset.matrix[target].copy(),
        applied=np.zeros(index.dataset.dim),
        spent=0.0,
        mask=evaluator.hits_mask(target),
    )
    hits_before = state.hits
    records: list[IterationRecord] = []
    evaluations_start = evaluator.full_evaluations
    stalls = 0

    while state.hits < tau and len(records) < max_iterations:
        batch = generate_candidates(
            evaluator, state, cost, space.shifted(state.applied), margin=margin
        )
        if batch.size == 0:
            break  # every remaining query is unreachable within bounds
        pick = batch.best_ratio()
        if not np.isfinite(batch.costs[pick]) or batch.hits[pick] == 0:
            break
        if batch.hits[pick] > tau:
            # Anti-overshoot (lines 10-13): the best-ratio candidate
            # overachieves; take the cheapest candidate reaching tau.
            pick = _cheapest_reaching(batch, tau)
        hits_before_apply = state.hits
        _apply(evaluator, state, batch, pick, records)
        stalls = stalls + 1 if state.hits <= hits_before_apply else 0
        if stalls >= _MAX_STALLS:
            break

    return IQResult(
        target=target,
        strategy=Strategy(state.applied.copy(), cost=state.spent),
        hits_before=hits_before,
        hits_after=state.hits,
        total_cost=state.spent,
        satisfied=state.hits >= tau,
        iterations=records,
        evaluations=evaluator.full_evaluations - evaluations_start,
    )


def _cheapest_reaching(batch: CandidateBatch, tau: int) -> int:
    """Cheapest candidate with ``H >= tau`` (ties by query id)."""
    reaching = np.flatnonzero(batch.hits >= tau)
    order = np.lexsort((batch.query_ids[reaching], batch.costs[reaching]))
    return int(reaching[order[0]])


def _apply(
    evaluator: StrategyEvaluator,
    state: SearchState,
    batch: CandidateBatch,
    pick: int,
    records: list[IterationRecord],
) -> None:
    state.applied = state.applied + batch.vectors[pick]
    state.spent += float(batch.costs[pick])
    tally("iterations")
    tally("evaluations")
    with stage("evaluate"):
        state.mask = evaluator.hits_mask(state.target, state.position)
    records.append(
        IterationRecord(
            query_id=int(batch.query_ids[pick]),
            cost=float(batch.costs[pick]),
            hits_after=state.hits,
            candidates=batch.size,
        )
    )
